"""Benchmark regression gate for CI.

Re-measures the headline throughput numbers at smoke scale and
compares them against the checked-in baseline
(``BENCH_throughput.json``).  The tolerance is deliberately generous —
CI runners are slower and noisier than the baseline host — so the gate
only fails on a real regression (default: >2.5x slower than baseline),
not on scheduler jitter.

Usage::

    PYTHONPATH=src BUGNET_BENCH_SCALE=0.2 \
        python benchmarks/check_regression.py [--tolerance 2.5] [--json]

Exit status 0 when every measured metric clears ``baseline /
tolerance``; 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
ROUNDS = 2


def _best(fn, *args) -> "tuple[float, object]":
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def measure_trace_engine() -> float:
    from benchmarks.test_throughput import TRACE_INSTRUCTIONS, _record_gzip

    elapsed, _stats = _best(_record_gzip, True)
    return TRACE_INSTRUCTIONS / elapsed


def measure_fleet_ingest() -> float:
    from benchmarks.test_ingest_throughput import (
        INGEST_REPORTS,
        _fleet_traffic,
        _ingest_all,
    )

    _fleet_traffic()  # synthesize outside the timed region
    elapsed, (results, _buckets) = _best(_ingest_all)
    assert all(result.accepted for result in results)
    return INGEST_REPORTS / elapsed


def measure_mt_validation() -> float:
    """Multithreaded whole-report validation rate (reports/s).  The
    per-report work (every-thread replay + MRL cross-check + race
    inference) does not shrink with BUGNET_BENCH_SCALE, so the rate is
    scale-stable like the other per-item metrics."""
    from benchmarks.test_mt_validation import (
        MT_REPORTS,
        _mt_traffic,
        _validate_all,
    )

    _mt_traffic()  # synthesize outside the timed region
    elapsed, (results, _buckets) = _best(_validate_all)
    assert all(result.accepted for result in results)
    return MT_REPORTS / elapsed


def measure_mt_dedup() -> float:
    """Duplicate-dominant admission rate (reports/s): 80 % repeats
    served by the admission cache, 20 % full MT validation.  Per-item
    work, so scale-stable like measure_mt_validation."""
    from benchmarks.test_mt_dedup import (
        DEDUP_UPLOADS,
        _dedup_traffic,
        _ingest_dedup,
    )

    _dedup_traffic()  # synthesize outside the timed region
    elapsed, (results, _buckets, _pipeline) = _best(_ingest_dedup)
    assert all(result.accepted for result in results)
    return DEDUP_UPLOADS / elapsed


def measure_fleet_service() -> float:
    from benchmarks.test_service_throughput import (
        SERVICE_UPLOADS,
        _run_service_load,
        _service_traffic,
    )

    _service_traffic()
    best = 0.0
    for _ in range(ROUNDS):
        report = _run_service_load()
        assert len(report.accepted) == SERVICE_UPLOADS
        best = max(best, report.reports_per_sec)
    return best


def measure_fleet_cluster() -> float:
    from benchmarks.test_cluster_throughput import (
        CLUSTER_UPLOADS,
        _cluster_traffic,
        _run_cluster_load,
    )

    _cluster_traffic()
    best = 0.0
    for _ in range(ROUNDS):
        report = _run_cluster_load()
        assert len(report.accepted) == CLUSTER_UPLOADS
        best = max(best, report.reports_per_sec)
    return best


def measure_fleet_cluster_elastic() -> float:
    from benchmarks.test_cluster_throughput import (
        CLUSTER_UPLOADS,
        _cluster_traffic,
        _run_elastic_load,
    )

    _cluster_traffic()
    best = 0.0
    for _ in range(ROUNDS):
        report, added = _run_elastic_load()
        assert len(report.accepted) == CLUSTER_UPLOADS
        assert added["epochs"]["final"] == added["epochs"]["before"] + 2
        best = max(best, report.reports_per_sec)
    return best


def measure_forensics() -> float:
    """DDG build rate (instructions/s).  Unlike slices/s, this is a
    per-instruction rate and therefore stable under
    BUGNET_BENCH_SCALE — slice cost does not shrink with the window,
    so comparing smoke-scale slices/s against the full-scale baseline
    would flag a phantom regression."""
    from benchmarks.test_forensics import _build_ddg, _forensics_setup

    _forensics_setup()
    ddg_time, ddg = _best(_build_ddg)
    return len(ddg) / ddg_time


#: metric key -> (baseline path in BENCH_throughput.json, measure fn)
METRICS = {
    "trace_engine_fast_ips": (("trace_engine_gzip", "fast_ips"),
                              measure_trace_engine),
    "fleet_ingest_reports_per_sec": (("fleet_ingest", "reports_per_sec"),
                                     measure_fleet_ingest),
    "fleet_mt_validate_reports_per_sec": (
        ("fleet_mt_validate", "reports_per_sec"), measure_mt_validation),
    "fleet_mt_dedup_reports_per_sec": (
        ("fleet_mt_dedup", "reports_per_sec"), measure_mt_dedup),
    "fleet_service_reports_per_sec": (("fleet_service", "reports_per_sec"),
                                      measure_fleet_service),
    "fleet_cluster_reports_per_sec": (("fleet_cluster", "reports_per_sec"),
                                      measure_fleet_cluster),
    "fleet_cluster_elastic_reports_per_sec": (
        ("fleet_cluster_elastic", "reports_per_sec"),
        measure_fleet_cluster_elastic),
    "forensics_ddg_build_ips": (("forensics_slice", "ddg_build_ips"),
                                measure_forensics),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=2.5,
                        help="fail only when baseline/measured exceeds "
                             "this factor (default: 2.5)")
    parser.add_argument("--only", default=None,
                        help="comma-separated metric keys to check")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    baseline = json.loads(BASELINE_PATH.read_text())
    selected = (args.only.split(",") if args.only else list(METRICS))
    unknown = [key for key in selected if key not in METRICS]
    if unknown:
        print(f"error: unknown metric(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    rows = []
    failed = False
    for key in selected:
        (section, field), measure = METRICS[key]
        expected = baseline[section][field]
        floor = expected / args.tolerance
        measured = measure()
        ok = measured >= floor
        failed = failed or not ok
        rows.append({
            "metric": key,
            "baseline": expected,
            "floor": round(floor, 1),
            "measured": round(measured, 1),
            "ratio_vs_baseline": round(measured / expected, 3),
            "ok": ok,
        })

    if args.json:
        print(json.dumps({"tolerance": args.tolerance, "results": rows,
                          "ok": not failed}, indent=2))
    else:
        width = max(len(row["metric"]) for row in rows)
        print(f"benchmark regression gate (tolerance {args.tolerance}x)")
        for row in rows:
            verdict = "ok  " if row["ok"] else "FAIL"
            print(f"  {verdict} {row['metric']:<{width}}  "
                  f"measured {row['measured']:>10.1f}  "
                  f"floor {row['floor']:>10.1f}  "
                  f"baseline {row['baseline']:>10.1f}  "
                  f"({row['ratio_vs_baseline']:.2f}x baseline)")
        if failed:
            print("regression gate FAILED: at least one metric is more "
                  f"than {args.tolerance}x below its baseline",
                  file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
