"""Shared benchmark configuration.

Every benchmark regenerates one paper table or figure and prints it in
the paper's row/series layout (run with ``-s`` to see the output live;
it is also attached to the pytest-benchmark ``extra_info``).

Scaling: windows and intervals are 1:100 against the paper (see
DESIGN.md).  Set ``BUGNET_BENCH_SCALE`` (e.g. ``0.2``) to shrink the
sweeps further for smoke runs.
"""

import os

import pytest

SCALE = float(os.environ.get("BUGNET_BENCH_SCALE", "1.0"))


def scaled(value: int, minimum: int = 10_000) -> int:
    """Apply the smoke-run scale factor to an instruction budget."""
    return max(int(value * SCALE), minimum)


@pytest.fixture
def emit():
    """Print a rendered report between benchmark output blocks."""
    def _emit(text: str) -> None:
        print()
        print(text)
    return _emit
