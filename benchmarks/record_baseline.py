"""Regenerate BENCH_throughput.json (the checked-in throughput baseline).

Measures the trace engine and the full-system machine in both drive
modes — the batched fast path and the per-event/per-instruction
reference path — and writes instructions-per-second numbers plus the
fast/reference speedups to ``BENCH_throughput.json`` at the repo root.

Run with ``PYTHONPATH=src python benchmarks/record_baseline.py``.
Numbers are host-dependent; the JSON records the host's Python version
so a stale baseline is recognizable.  The CI smoke job only checks the
file parses and the speedups stay above the floors asserted here.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from benchmarks.test_forensics import (  # noqa: E402
    SLICE_QUERIES,
    _build_ddg,
    _forensics_setup,
    _run_slices,
)
from benchmarks.test_ingest_throughput import (  # noqa: E402
    INGEST_REPORTS,
    _fleet_traffic,
    _ingest_all,
)
from benchmarks.test_mt_validation import (  # noqa: E402
    MT_REPORTS,
    _mt_traffic,
    _validate_all,
)
from benchmarks.test_mt_dedup import (  # noqa: E402
    DEDUP_UPLOADS,
    DUPLICATE_FRACTION,
    _dedup_traffic,
    _ingest_dedup,
)
from benchmarks.test_cluster_throughput import (  # noqa: E402
    CLUSTER_NODES,
    CLUSTER_REPLICATION,
    CLUSTER_UPLOADS,
    _cluster_traffic,
    _run_cluster_load,
    _run_elastic_load,
)
from benchmarks.test_obs_overhead import (  # noqa: E402
    measure_obs_overhead,
)
from benchmarks.test_service_throughput import (  # noqa: E402
    SERVICE_UPLOADS,
    _run_service_load,
    _service_traffic,
)
from benchmarks.test_throughput import (  # noqa: E402
    TRACE_INSTRUCTIONS,
    _record_gzip,
    _run_gnuplot,
)

ROUNDS = 5

#: The batch fleet-ingest rate recorded at PR 3 (pre compiled-dispatch
#: replay) — the number the live service's ">= 4x the batch pipeline"
#: acceptance target was set against.  Kept as an explicit constant so
#: regenerating the baseline on a faster code base does not silently
#: move the goalposts.
PR3_FLEET_INGEST_RPS = 137.3


def _best(fn, *args) -> "tuple[float, object]":
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> None:
    trace_fast, stats = _best(_record_gzip, True)
    trace_ref, _ = _best(_record_gzip, False)
    system_fast, run = _best(_run_gnuplot, True)
    system_ref, _ = _best(_run_gnuplot, False)
    assert run.crashed
    system_instructions = run.global_steps
    _fleet_traffic()  # synthesize fleet traffic outside the timed region
    ingest_time, (ingest_results, ingest_buckets) = _best(_ingest_all)
    assert all(result.accepted for result in ingest_results)
    replayed = sum(r.instructions_replayed for r in ingest_results)
    _mt_traffic()  # synthesize the multithreaded corpus outside timing
    mt_time, (mt_results, mt_buckets) = _best(_validate_all)
    assert all(result.accepted for result in mt_results)
    _dedup_traffic()  # synthesize the duplicate-heavy corpus outside timing
    dedup_time, (dedup_results, dedup_buckets, dedup_pipeline) = _best(
        _ingest_dedup)
    assert all(result.accepted for result in dedup_results)
    _service_traffic()  # synthesize service traffic outside timing
    service_report = None
    for _ in range(ROUNDS):
        candidate = _run_service_load()
        assert len(candidate.accepted) == SERVICE_UPLOADS
        if (service_report is None
                or candidate.reports_per_sec
                > service_report.reports_per_sec):
            service_report = candidate
    _cluster_traffic()  # synthesize cluster traffic outside timing
    cluster_report = None
    for _ in range(ROUNDS):
        candidate = _run_cluster_load()
        assert len(candidate.accepted) == CLUSTER_UPLOADS
        if (cluster_report is None
                or candidate.reports_per_sec
                > cluster_report.reports_per_sec):
            cluster_report = candidate
    elastic_report = elastic_added = None
    for _ in range(ROUNDS):
        candidate, added = _run_elastic_load()
        assert len(candidate.accepted) == CLUSTER_UPLOADS
        if (elastic_report is None
                or candidate.reports_per_sec
                > elastic_report.reports_per_sec):
            elastic_report, elastic_added = candidate, added
    obs_ratio, obs_enabled, obs_disabled = measure_obs_overhead()
    _forensics_setup()  # record the forensics window outside timing
    ddg_time, ddg = _best(_build_ddg)
    slice_time, (fault_slice, slices) = _best(_run_slices, ddg)
    assert ddg.replay_intervals == len(_forensics_setup()[2])
    baseline = {
        "note": (
            "Throughput baseline for benchmarks/test_throughput.py; "
            "best of %d rounds. 'reference' drives the recorder "
            "per event/instruction, 'fast' uses the batched path "
            "(bit-identical logs, see tests/test_fastpath_equivalence.py)."
            % ROUNDS
        ),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "trace_engine_gzip": {
            "instructions": TRACE_INSTRUCTIONS,
            "reference_ips": round(TRACE_INSTRUCTIONS / trace_ref),
            "fast_ips": round(TRACE_INSTRUCTIONS / trace_fast),
            "speedup": round(trace_ref / trace_fast, 2),
        },
        "full_system_gnuplot": {
            "instructions": system_instructions,
            "reference_ips": round(system_instructions / system_ref),
            "fast_ips": round(system_instructions / system_fast),
            "speedup": round(system_ref / system_fast, 2),
        },
        # Fleet ingestion (benchmarks/test_ingest_throughput.py): decode
        # + full faulting-thread replay validation + fault probe +
        # sharded-store commit, per report.
        "fleet_ingest": {
            "reports": INGEST_REPORTS,
            "buckets": len(ingest_buckets),
            "replayed_instructions": replayed,
            "reports_per_sec": round(INGEST_REPORTS / ingest_time, 1),
            "replay_ips": round(replayed / ingest_time),
        },
        # Multi-thread validation (benchmarks/test_mt_validation.py):
        # whole-report admission for multithreaded/racy crash reports —
        # every thread chain-replayed on the compiled traced path, MRL
        # constraints cross-checked, schedule merged, races inferred
        # for the signature's race evidence, store commit included.
        # pr5_same_host_reports_per_sec is PR5 code (no lockset
        # pruning, eager schedule merge) re-measured on the recording
        # host — keep it when regenerating: speedup_vs_pr5 is the
        # same-host acceptance number the CI baseline sanity gates on.
        # pr8_same_host_reports_per_sec is the PR-8 rate (interpreted
        # traced replay, full non-faulting-thread traces, per-report
        # MRL decode) the block-compiled slim path was measured
        # against; this benchmark keeps the admission cache OFF so the
        # number stays an honest validation rate.
        "fleet_mt_validate": {
            "reports": MT_REPORTS,
            "buckets": len(mt_buckets),
            "racy_buckets": sum(1 for bucket in mt_buckets if bucket.racy),
            "reports_per_sec": round(MT_REPORTS / mt_time, 1),
            "pr5_same_host_reports_per_sec": 4.3,
            "speedup_vs_pr5": round(MT_REPORTS / mt_time / 4.3, 1),
            "pr8_same_host_reports_per_sec": 26.8,
            "speedup_vs_pr8": round(MT_REPORTS / mt_time / 26.8, 2),
        },
        # Duplicate-dominant admission (benchmarks/test_mt_dedup.py):
        # the MT corpus at 80 % byte-identical re-uploads, ingested
        # through the admission cache from cold — misses replay in
        # full, repeats commit off the signature-prefix probe.
        # vs_mt_validate is the "racy-traffic chasm" ratio: the same
        # MT reports admitted without the cache run at the
        # fleet_mt_validate rate, so the cache must multiply it.  The
        # ceiling at 80 % duplicates is 5x (the 20 % unique tail still
        # replays in full, and one MT validation costs ~15x a
        # single-thread fleet_ingest report — which also bounds
        # vs_singlethread_ingest, recorded for context).
        "fleet_mt_dedup": {
            "uploads": DEDUP_UPLOADS,
            "duplicate_fraction": DUPLICATE_FRACTION,
            "buckets": len(dedup_buckets),
            "cache_hits": dedup_pipeline.cache_hits,
            "reverified": dedup_pipeline.reverified,
            "reports_per_sec": round(DEDUP_UPLOADS / dedup_time, 1),
            "vs_mt_validate": round(
                (DEDUP_UPLOADS / dedup_time)
                / (MT_REPORTS / mt_time), 2),
            "vs_singlethread_ingest": round(
                (DEDUP_UPLOADS / dedup_time)
                / (INGEST_REPORTS / ingest_time), 2),
        },
        # Live ingestion service (benchmarks/test_service_throughput.py):
        # `bugnet load-sim` against an in-process `bugnet serve` — the
        # full upload -> chunked validation -> ordered batched commit ->
        # ack path over real sockets.  speedup_vs_pr3_batch compares
        # against the PR-3 batch pipeline rate the service target was
        # set against (the contemporary batch rate is `fleet_ingest`
        # above, which shares the compiled-dispatch replay).
        "fleet_service": {
            "uploads": SERVICE_UPLOADS,
            "reports_per_sec": round(service_report.reports_per_sec, 1),
            "latency_p50_ms": round(
                service_report.latency_percentile(0.50) * 1e3, 2),
            "latency_p99_ms": round(
                service_report.latency_percentile(0.99) * 1e3, 2),
            "pr3_batch_reports_per_sec": PR3_FLEET_INGEST_RPS,
            "speedup_vs_pr3_batch": round(
                service_report.reports_per_sec / PR3_FLEET_INGEST_RPS, 2),
        },
        # Multi-node cluster (benchmarks/test_cluster_throughput.py):
        # ring-routed load-sim against N in-process ClusterNodeServices
        # — upload -> owner validation -> commit -> synchronous
        # replication to the ring successor -> ack, over real sockets.
        # replication_cost_vs_service compares against fleet_service
        # (same validation, no replication round-trip).
        "fleet_cluster": {
            "uploads": CLUSTER_UPLOADS,
            "nodes": CLUSTER_NODES,
            "replication": CLUSTER_REPLICATION,
            "reports_per_sec": round(cluster_report.reports_per_sec, 1),
            "latency_p50_ms": round(
                cluster_report.latency_percentile(0.50) * 1e3, 2),
            "latency_p99_ms": round(
                cluster_report.latency_percentile(0.99) * 1e3, 2),
            "replication_cost_vs_service": round(
                service_report.reports_per_sec
                / cluster_report.reports_per_sec, 2),
        },
        # Elastic membership (same module): the identical load while
        # `admin.add_node` grows the ring mid-run — joining epoch
        # pushed, ~1/N of the keyspace streamed to the new node via
        # range-filtered anti-entropy, activation flip — with the
        # load client pinned to the initial epoch (server-side
        # forwarding across every intermediate ring).
        # elasticity_cost_vs_cluster is what the topology change
        # costs the write path relative to the steady-state ring.
        "fleet_cluster_elastic": {
            "uploads": CLUSTER_UPLOADS,
            "nodes_before": CLUSTER_NODES,
            "nodes_after": CLUSTER_NODES + 1,
            "replication": CLUSTER_REPLICATION,
            "streamed": elastic_added["streamed"],
            "reports_per_sec": round(elastic_report.reports_per_sec, 1),
            "latency_p50_ms": round(
                elastic_report.latency_percentile(0.50) * 1e3, 2),
            "latency_p99_ms": round(
                elastic_report.latency_percentile(0.99) * 1e3, 2),
            "elasticity_cost_vs_cluster": round(
                cluster_report.reports_per_sec
                / elastic_report.reports_per_sec, 2),
        },
        # Observability overhead (benchmarks/test_obs_overhead.py):
        # fleet ingest with the metrics registry live vs disabled
        # (BUGNET_OBS_DISABLED); overhead_pct is the median of paired
        # runs (see that module's docstring for why).  The
        # instrumentation budget is < 5 %; CI re-measures at smoke
        # scale and this recorded number is what the baseline-sanity
        # step gates on.
        "obs_overhead": {
            "ingest_reports": INGEST_REPORTS,
            "enabled_reports_per_sec": round(
                INGEST_REPORTS / obs_enabled, 1),
            "disabled_reports_per_sec": round(
                INGEST_REPORTS / obs_disabled, 1),
            "overhead_pct": round((obs_ratio - 1.0) * 100.0, 2),
        },
        # Forensics (benchmarks/test_forensics.py): one replay pass
        # builds the DDG for the gzip crash window; slices are then
        # graph traversal — no per-query re-replay (replay_passes is
        # the number of intervals in the chain, counted, not assumed).
        "forensics_slice": {
            "window_instructions": len(ddg),
            "replay_passes": ddg.replay_intervals,
            "ddg_build_ips": round(len(ddg) / ddg_time),
            "slice_queries": len(slices),
            "slices_per_sec": round(len(slices) / slice_time, 1),
            "fault_slice_nodes": len(fault_slice),
        },
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
    if out.exists():
        # The "seed" block records the pre-fast-path numbers measured at
        # the seed commit; carry it across regenerations.
        previous = json.loads(out.read_text())
        seed = previous.get("seed")
        if seed is not None:
            baseline["seed"] = seed
            baseline["trace_engine_gzip"]["speedup_vs_seed"] = round(
                baseline["trace_engine_gzip"]["fast_ips"]
                / seed["trace_engine_gzip_ips"], 2,
            )
            baseline["full_system_gnuplot"]["speedup_vs_seed"] = round(
                baseline["full_system_gnuplot"]["fast_ips"]
                / seed["full_system_gnuplot_ips"], 2,
            )
    out.write_text(json.dumps(baseline, indent=2) + "\n")
    print(json.dumps(baseline, indent=2))
    assert stats.instructions >= TRACE_INSTRUCTIONS


if __name__ == "__main__":
    main()
