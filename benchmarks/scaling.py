"""Benchmark scale control.

Sweeps default to the 1:100-of-paper sizes described in DESIGN.md.  Set
``BUGNET_BENCH_SCALE`` (e.g. ``0.2``) to shrink instruction budgets for
smoke runs.
"""

import os

SCALE = float(os.environ.get("BUGNET_BENCH_SCALE", "1.0"))


def scaled(value: int, minimum: int = 10_000) -> int:
    """Apply the smoke-run scale factor to an instruction budget."""
    return max(int(value * SCALE), minimum)
