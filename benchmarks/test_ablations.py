"""Ablations of BugNet's design choices.

Each ablation isolates one mechanism the paper motivates:

* **first-load filtering** (§4.3): log only first accesses vs. every
  load — the optimization that makes continuous recording affordable;
* **dictionary compression** (§4.3.1): 64-entry table vs. none;
* **Netzer reduction** (§4.6.3): pairwise hardware filter vs. the ideal
  vector-clock reducer vs. no reduction, measured in MRL entries;
* **store-first suppression** (§4.3): treating a first *store* as
  setting the bit (values regenerate in replay) vs. logging loads until
  one occurs.
"""

from benchmarks.scaling import scaled

from repro.analysis.report import Table, format_bytes
from repro.arch import assemble
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine
from repro.tracing.netzer import PairwiseReducer, VectorClockReducer
from repro.workloads.spec import SPEC_WORKLOADS
from repro.workloads.trace import record_personality

RACY = """
.data
shared: .word 0, 0, 0, 0
.text
main:
    li   s0, 0
    li   s1, 400
loop:
    andi t2, s0, 3
    sll  t2, t2, 2
    la   t3, shared
    add  t3, t3, t2
    lw   t0, 0(t3)
    addi t0, t0, 1
    sw   t0, 0(t3)
    addi s0, s0, 1
    blt  s0, s1, loop
    li   v0, 1
    syscall
"""


def test_ablation_first_load_filter(benchmark, emit):
    """Without the first-load bits, every load is logged."""

    def run():
        window = scaled(500_000)
        interval = 100_000
        table = Table(
            "Ablation — first-load filtering (window "
            f"{window}, interval {interval})",
            ["workload", "loads", "logged (first-load)", "logged (all)",
             "reduction"],
        )
        reductions = {}
        for name in ("art", "gzip", "mcf"):
            stats = record_personality(SPEC_WORKLOADS[name], window, interval)
            reduction = stats.loads / max(stats.logged_loads, 1)
            reductions[name] = reduction
            table.add(name, stats.loads, stats.logged_loads, stats.loads,
                      f"{reduction:.1f}x")
        return table, reductions

    table, reductions = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table.render())
    for name, reduction in reductions.items():
        assert reduction > 1.5, f"{name}: first-load filter ineffective"


def test_ablation_dictionary_compression(benchmark, emit):
    """FLL bytes with the 64-entry dictionary vs. raw 32-bit values."""

    def run():
        window = scaled(500_000)
        table = Table(
            "Ablation — dictionary compression",
            ["workload", "compressed FLL", "uncompressed FLL", "ratio"],
        )
        ratios = {}
        for name in ("art", "crafty", "mcf"):
            stats = record_personality(SPEC_WORKLOADS[name], window, 100_000)
            compressed = stats.fll_payload_bits
            raw = stats.fll_raw_payload_bits
            ratios[name] = raw / max(compressed, 1)
            table.add(name, format_bytes(compressed / 8),
                      format_bytes(raw / 8), f"{ratios[name]:.2f}x")
        return table, ratios

    table, ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table.render())
    assert ratios["art"] > ratios["crafty"]  # value locality ordering
    assert all(ratio > 1.2 for ratio in ratios.values())


def test_ablation_netzer_reduction(benchmark, emit):
    """MRL entries: none vs. pairwise (hardware) vs. vector clock (ideal)."""

    def run():
        program = assemble(RACY, name="racy")
        machine = Machine(program, MachineConfig(num_cores=2),
                          BugNetConfig(checkpoint_interval=100_000))
        machine.spawn()
        machine.spawn()
        result = machine.run()
        store = result.log_store
        logged = sum(cp.mrl.num_entries for tid in store.threads()
                     for cp in store.checkpoints(tid))

        # Replay the reply stream through alternative reducers: collect
        # raw replies by rerunning with a pass-through reducer.
        class PassThrough:
            def reset(self):
                pass

            def should_log(self, *_):
                return True

        machine2 = Machine(program, MachineConfig(num_cores=2),
                           BugNetConfig(checkpoint_interval=100_000))
        machine2.spawn()
        machine2.spawn()
        for recorder in machine2.recorders.values():
            recorder.reducer = PassThrough()
        result2 = machine2.run()
        store2 = result2.log_store
        raw = sum(cp.mrl.num_entries for tid in store2.threads()
                  for cp in store2.checkpoints(tid))

        # Ideal: feed the raw reply stream through the vector-clock
        # reducer (per local thread, as the hardware would).
        machine3 = Machine(program, MachineConfig(num_cores=2),
                           BugNetConfig(checkpoint_interval=100_000))
        machine3.spawn()
        machine3.spawn()
        ideal = VectorClockReducer()
        counts = {"kept": 0}

        class IdealAdapter:
            def __init__(self, tid):
                self.tid = tid

            def reset(self):
                ideal.reset_thread(self.tid)

            def should_log(self, remote_tid, remote_cid, remote_ic):
                keep = ideal.should_log(self.tid, remote_tid, remote_cid,
                                        remote_ic)
                if keep:
                    counts["kept"] += 1
                return keep

        for tid, recorder in machine3.recorders.items():
            recorder.reducer = IdealAdapter(tid)
        machine3.run()
        return raw, logged, counts["kept"]

    raw, pairwise, ideal = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Ablation — Netzer race-log reduction",
        ["reducer", "MRL entries", "vs. none"],
    )
    table.add("none", raw, "1.00x")
    table.add("pairwise (FDR/BugNet hw)", pairwise, f"{raw / max(pairwise, 1):.2f}x")
    table.add("vector clock (ideal)", ideal, f"{raw / max(ideal, 1):.2f}x")
    emit(table.render())
    assert pairwise <= raw
    assert ideal <= pairwise


def test_ablation_store_first_suppression(benchmark, emit):
    """Producer-style code: first-store suppression avoids logging loads
    of data the program itself wrote."""

    source = """
.data
buf: .space 4096
.text
main:
    li   s0, 0
    la   s1, buf
    li   s2, 512
produce:
    sll  t0, s0, 2
    add  t0, s1, t0
    sw   s0, 0(t0)
    addi s0, s0, 1
    blt  s0, s2, produce
    li   s0, 0
consume:
    sll  t0, s0, 2
    add  t0, s1, t0
    lw   t1, 0(t0)
    addi s0, s0, 1
    blt  s0, s2, consume
    li   v0, 1
    syscall
"""

    def run():
        program = assemble(source, name="producer")
        machine = Machine(program, MachineConfig(),
                          BugNetConfig(checkpoint_interval=1_000_000))
        machine.spawn()
        machine.run()
        recorder = machine.recorders[0]
        return recorder.loads_seen, recorder.loads_logged

    loads, logged = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Ablation — store-first suppression (produce-then-consume)",
        ["loads executed", "loads logged", "suppressed by stores"],
    )
    table.add(loads, logged, loads - logged)
    emit(table.render())
    # All 512 consumed words were produced in-interval: nothing to log.
    assert logged == 0
    assert loads >= 512


def test_ablation_aggressive_bit_preservation(benchmark, emit):
    """§4.4 future work: preserve first-load bits across syscalls.

    A syscall-heavy loop re-walks the same table between traps.  The
    basic scheme re-logs the table after every trap; the aggressive
    scheme (bit_clear_period > 1) logs it once per major checkpoint.
    """
    source = """
.data
table: .space 2048
.text
main:
    li   s0, 0
    li   s1, 64
pass:
    li   s2, 0
    la   s3, table
walk:
    sll  t0, s2, 2
    add  t0, s3, t0
    lw   t1, 0(t0)
    add  t1, t1, s0
    sw   t1, 0(t0)
    addi s2, s2, 1
    blt  s2, 64, walk
    li   v0, 5              # YIELD: terminates the interval
    syscall
    addi s0, s0, 1
    blt  s0, s1, pass
    li   v0, 1
    syscall
"""

    def run():
        results = {}
        for period in (1, 4, 16, 1_000_000):
            program = assemble(source, name="syscall-heavy")
            machine = Machine(
                program, MachineConfig(),
                BugNetConfig(checkpoint_interval=100_000,
                             bit_clear_period=period),
            )
            machine.spawn()
            result = machine.run()
            recorder = machine.recorders[0]
            results[period] = (
                recorder.loads_logged,
                result.log_store.fll_bytes(0),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Ablation — §4.4 aggressive bit preservation (syscall-heavy loop)",
        ["bit_clear_period", "loads logged", "FLL bytes"],
    )
    for period, (logged, fll_bytes) in sorted(results.items()):
        label = "basic (paper)" if period == 1 else str(period)
        table.add(label, logged, format_bytes(fll_bytes))
    emit(table.render())
    basic_logged = results[1][0]
    aggressive_logged = results[1_000_000][0]
    assert aggressive_logged < basic_logged / 10
    # Monotone: longer preservation never logs more.
    logged_series = [results[p][0] for p in (1, 4, 16, 1_000_000)]
    assert logged_series == sorted(logged_series, reverse=True)
