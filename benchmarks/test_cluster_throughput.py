"""Throughput benchmark for the multi-node fleet cluster.

Ring-routed ``load-sim`` against three in-process
``ClusterNodeService`` members over real sockets: every upload is
routed to its route-digest owner, validated there, committed, then
synchronously replicated to its ring successor before the ack — so
the headline reports/s includes the full replication round-trip the
single-service ``fleet_service`` number does not pay.  Lands in
``BENCH_throughput.json`` as ``fleet_cluster`` (regenerate with
``PYTHONPATH=src python benchmarks/record_baseline.py``).

The *elastic* variant drives the same load while ``admin.add_node``
grows the ring mid-run (joining epoch, range streaming, activation
flip), so its reports/s prices a topology change happening under the
writes — ``fleet_cluster_elastic`` in the baseline, gated in CI like
every other headline number.
"""

import asyncio
import shutil
import tempfile
from pathlib import Path

from benchmarks.scaling import scaled

from repro.fleet.cluster.harness import free_ports
from repro.fleet.cluster.node import ClusterNodeService
from repro.fleet.cluster.router import run_cluster_load_sim
from repro.fleet.cluster.topology import ClusterSpec, NodeSpec
from repro.fleet.loadsim import synthesize_corpus
from repro.fleet.service import ServiceConfig
from repro.fleet.validate import ResolverSpec

CLUSTER_UPLOADS = scaled(96, minimum=24)
CLUSTER_NODES = 3
CLUSTER_REPLICATION = 2
_FLEET_BUGS = ("bc-1.06", "tar-1.13.25", "gnuplot-3.7.1-1", "tidy-34132-3")
_INTERVALS = (2_000, 5_000, 25_000)
_WARMUP = 4

_cache = None


def _cluster_traffic():
    """A deterministic corpus of CLUSTER_UPLOADS + warmup uploads."""
    global _cache
    if _cache is None:
        _programs, items, failures = synthesize_corpus(
            CLUSTER_UPLOADS + _WARMUP, _FLEET_BUGS, seed=2,
            intervals=_INTERVALS, id_prefix="cbench",
        )
        assert failures == 0
        _cache = items
    return _cache


def _run_cluster_load(concurrency: int = 8):
    """One full cluster round: start N nodes, drive ring-routed load,
    return the LoadSimReport for the measured (post-warmup) uploads."""
    items = _cluster_traffic()
    root = Path(tempfile.mkdtemp(prefix="bugnet-bench-cluster-"))
    ports = free_ports(CLUSTER_NODES)
    spec = ClusterSpec(
        nodes=tuple(
            NodeSpec(node_id=f"n{index}", host="127.0.0.1",
                     port=ports[index])
            for index in range(CLUSTER_NODES)
        ),
        replication=CLUSTER_REPLICATION,
    )

    async def main():
        services = []
        try:
            for member in spec.nodes:
                service = ClusterNodeService(
                    root / f"store-{member.node_id}", ResolverSpec(),
                    spec, member.node_id,
                    config=ServiceConfig(host=member.host,
                                         port=member.port, workers=0,
                                         queue_limit=64),
                    anti_entropy_interval=60.0,
                )
                await service.start()
                services.append(service)
            await run_cluster_load_sim(spec, items[:_WARMUP],
                                       concurrency=2)
            return await run_cluster_load_sim(
                spec, items[_WARMUP:], concurrency=concurrency,
            )
        finally:
            for service in services:
                await service.stop()

    try:
        return asyncio.run(main())
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_cluster_throughput(benchmark, emit):
    report = benchmark.pedantic(_run_cluster_load, rounds=3, iterations=1)
    assert len(report.accepted) == CLUSTER_UPLOADS
    assert not report.rejected
    assert not report.failed
    stats = report.to_dict()
    benchmark.extra_info.update(stats)
    emit(
        "fleet cluster: %d uploads over %d nodes (replication %d), "
        "%.1f reports/s steady-state, ack p50 %.2fms p99 %.2fms" % (
            stats["uploads"], CLUSTER_NODES, CLUSTER_REPLICATION,
            stats["reports_per_sec"],
            stats["latency_p50_ms"], stats["latency_p99_ms"],
        )
    )
    # Generous sanity floor — replication costs an extra round-trip
    # per upload, but the rate must stay the same order of magnitude
    # as the single service.
    assert report.reports_per_sec > 10


def _run_elastic_load(concurrency: int = 8):
    """One elastic round: start the 3-node cluster, begin ring-routed
    load pinned to the initial epoch, and grow the ring to four nodes
    mid-load (``admin.add_node``: joining epoch -> range streaming ->
    activation flip).  Returns ``(LoadSimReport, add_node summary)``
    for the measured uploads."""
    from repro.fleet.cluster import admin

    items = _cluster_traffic()
    root = Path(tempfile.mkdtemp(prefix="bugnet-bench-elastic-"))
    ports = free_ports(CLUSTER_NODES + 1)
    spec = ClusterSpec(
        nodes=tuple(
            NodeSpec(node_id=f"n{index}", host="127.0.0.1",
                     port=ports[index])
            for index in range(CLUSTER_NODES)
        ),
        replication=CLUSTER_REPLICATION,
    )
    spec_path = root / "cluster.json"
    spec.dump(spec_path)

    def make_service(member_spec, node_id, interval):
        member = member_spec.node(node_id)
        return ClusterNodeService(
            root / f"store-{node_id}", ResolverSpec(),
            member_spec, node_id,
            config=ServiceConfig(host=member.host, port=member.port,
                                 workers=0, queue_limit=64),
            anti_entropy_interval=interval,
        )

    async def main():
        services = []
        try:
            for member in spec.nodes:
                service = make_service(spec, member.node_id, 60.0)
                await service.start()
                services.append(service)
            await run_cluster_load_sim(spec, items[:_WARMUP],
                                       concurrency=2)
            # The load client stays pinned to the initial epoch — the
            # cluster forwards across every intermediate ring.
            load = asyncio.ensure_future(run_cluster_load_sim(
                spec, items[_WARMUP:], concurrency=concurrency,
            ))

            async def start_new(joining_spec):
                # The joining node anti-entropies aggressively: the
                # stream is the thing being priced.
                service = make_service(joining_spec, "n3", 0.1)
                await service.start()
                services.append(service)

            added = await admin.add_node(
                spec_path, "n3", "127.0.0.1", ports[CLUSTER_NODES],
                start_callback=start_new,
                poll_interval=0.05, timeout=60.0,
            )
            return await load, added
        finally:
            for service in services:
                await service.stop()

    try:
        return asyncio.run(main())
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_cluster_elastic_throughput(benchmark, emit):
    report, added = benchmark.pedantic(_run_elastic_load, rounds=3,
                                       iterations=1)
    assert len(report.accepted) == CLUSTER_UPLOADS
    assert not report.rejected
    assert not report.failed
    assert added["epochs"]["final"] == added["epochs"]["before"] + 2
    stats = report.to_dict()
    benchmark.extra_info.update(stats)
    emit(
        "fleet cluster elastic: %d uploads while n3 joined "
        "(epoch %d -> %d, %d report(s) streamed), %.1f reports/s, "
        "ack p50 %.2fms p99 %.2fms" % (
            stats["uploads"], added["epochs"]["before"],
            added["epochs"]["final"], added["streamed"],
            stats["reports_per_sec"],
            stats["latency_p50_ms"], stats["latency_p99_ms"],
        )
    )
    # Same order-of-magnitude floor as the steady-state benchmark:
    # a topology change must not stall the write path.
    assert report.reports_per_sec > 10
