"""Figure 2 — FLL size needed to replay each bug's window.

Paper claims (10 M interval): several programs need < 1 KB, all but
three need < 100 KB, and the worst case is ~1 MB.  At 1:100 scale the
absolute sizes shrink roughly with the windows; we assert the *ordering*
claims: tiny windows → sub-KB logs, and the scaled-down worst cases stay
the largest.
"""

from repro.analysis.experiments import experiment_fig2
from repro.workloads.bugs import BUG_SUITE


def test_fig2_bug_fll_sizes(benchmark, emit):
    table, sizes = benchmark.pedantic(
        experiment_fig2, rounds=1, iterations=1,
    )
    emit(table.render())
    assert set(sizes) == {bug.name for bug in BUG_SUITE}
    # Sub-thousand-instruction windows need well under 1 KB of FLL.
    for name in ("tidy-34132-2", "tidy-34132-3", "python-2.1.1-1"):
        assert sizes[name] < 1024, (name, sizes[name])
    # The big-window programs dominate the small-window ones.
    small = max(sizes["tidy-34132-2"], sizes["bc-1.06"])
    for name in ("ghostscript-8.12", "gnuplot-3.7.1-2", "napster-1.5.2"):
        assert sizes[name] > small
    # Everything fits the paper's "less than ~1MB" envelope even before
    # rescaling.
    assert max(sizes.values()) < 1024 * 1024
    benchmark.extra_info["fll_bytes"] = sizes
