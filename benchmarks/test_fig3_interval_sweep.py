"""Figure 3 — FLL size for a fixed window vs. checkpoint interval length.

Paper shape: FLL size decreases monotonically as the interval grows
(the first-load optimization compounds), with roughly an order of
magnitude between the shortest and longest intervals.  Sweep is the
paper's five decades, scaled 1:100 (10 K…100 M → 100…1 M) over a 1 M
window (paper: 100 M).
"""

from benchmarks.scaling import scaled

from repro.analysis.experiments import experiment_fig3
from repro.workloads.spec import SPEC_WORKLOADS

INTERVALS = (100, 1_000, 10_000, 100_000, 1_000_000)


def test_fig3_interval_sweep(benchmark, emit):
    series = benchmark.pedantic(
        experiment_fig3,
        kwargs={"window": scaled(1_000_000), "intervals": INTERVALS},
        rounds=1, iterations=1,
    )
    emit(series.render(fmt=lambda v: f"{v:,.0f}"))
    for name in SPEC_WORKLOADS:
        line = series.lines[name]
        # Monotone decrease across the sweep (allowing tiny plateaus).
        assert line[0] > line[-1] * 1.5, f"{name}: {line}"
        for previous, current in zip(line, line[1:]):
            assert current <= previous * 1.10, f"{name} not decreasing: {line}"
    average = series.lines["Avg"]
    assert average[0] / average[-1] > 5  # the paper's order-of-magnitude drop
    benchmark.extra_info["avg_kb"] = dict(zip(series.x_values, average))
