"""Figure 4 — FLL size vs. replay window length (fixed 10 M interval).

Paper: "On an average, FLLs of size 225 KB are required to replay 10
million instructions and about 18.86 MB for replaying 1 billion" — i.e.
near-linear growth across two decades of window length.  Scaled 1:100:
windows 100 K / 1 M / 10 M at a 100 K interval.
"""

from benchmarks.scaling import scaled

from repro.analysis.experiments import experiment_fig4
from repro.workloads.spec import SPEC_WORKLOADS

WINDOWS = (100_000, 1_000_000, 10_000_000)


def test_fig4_window_sweep(benchmark, emit):
    windows = tuple(scaled(w) for w in WINDOWS)
    series = benchmark.pedantic(
        experiment_fig4,
        kwargs={"windows": windows},
        rounds=1, iterations=1,
    )
    emit(series.render(fmt=lambda v: f"{v:,.0f}"))
    for name in SPEC_WORKLOADS:
        line = series.lines[name]
        # Strictly growing with the window...
        assert line[0] < line[1] < line[2], f"{name}: {line}"
    average = series.lines["Avg"]
    # ...and near-linear across the two decades: 100x window -> between
    # 20x and 120x the log (the paper's 225KB -> 18.86MB is 86x).
    growth = average[2] / average[0]
    assert 20 <= growth <= 120, f"Avg growth {growth}"
    benchmark.extra_info["avg_kb"] = dict(zip(series.x_values, average))
    benchmark.extra_info["growth_100x_window"] = growth
