"""Figure 5 — % of load values found in the dictionary vs. table size.

Paper: hit rate grows with table size; "a dictionary of size 64 is
capable of compressing 50% of the values on average", with a wide
per-benchmark spread (art best, crafty worst).
"""

from benchmarks.scaling import scaled

from repro.analysis.experiments import DICT_SIZES, experiment_fig5_fig6
from repro.workloads.spec import SPEC_WORKLOADS


def test_fig5_dictionary_hits(benchmark, emit):
    hit, _ratio = benchmark.pedantic(
        experiment_fig5_fig6,
        kwargs={"window": scaled(1_000_000), "sizes": DICT_SIZES},
        rounds=1, iterations=1,
    )
    emit(hit.render(fmt=lambda v: f"{v:.1f}"))
    for name in SPEC_WORKLOADS:
        line = hit.lines[name]
        for previous, current in zip(line, line[1:]):
            assert current >= previous - 1.0, f"{name} not monotone: {line}"
    sixty_four = hit.x_values.index(64)
    avg64 = hit.lines["Avg"][sixty_four]
    assert 35.0 <= avg64 <= 65.0, f"avg hit rate at 64 entries: {avg64}"
    # art is the paper's most compressible benchmark; crafty the least.
    assert hit.lines["art"][sixty_four] > hit.lines["crafty"][sixty_four]
    benchmark.extra_info["avg_hit_pct"] = dict(
        zip(hit.x_values, hit.lines["Avg"])
    )
