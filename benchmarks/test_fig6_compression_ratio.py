"""Figure 6 — FLL compression ratio vs. dictionary size.

Paper: "On average, we achieve about a 50% compression using a 64-entry
dictionary" (ratio ≈ 2x), improving with larger tables but with
diminishing silicon-worthiness beyond 64 (the chosen design point).
"""

from benchmarks.scaling import scaled

from repro.analysis.experiments import DICT_SIZES, experiment_fig5_fig6
from repro.workloads.spec import SPEC_WORKLOADS


def test_fig6_compression_ratio(benchmark, emit):
    _hit, ratio = benchmark.pedantic(
        experiment_fig5_fig6,
        kwargs={"window": scaled(1_000_000), "sizes": DICT_SIZES},
        rounds=1, iterations=1,
    )
    emit(ratio.render(fmt=lambda v: f"{v:.2f}"))
    for name in SPEC_WORKLOADS:
        line = ratio.lines[name]
        assert all(value >= 0.95 for value in line), f"{name}: {line}"
        # Ratio improves with table size up to the 64-entry design point;
        # past 256 the wider indices can eat the marginal hits (the
        # diminishing returns that justify stopping at 64).
        up_to_64 = line[: ratio.x_values.index(64) + 1]
        for previous, current in zip(up_to_64, up_to_64[1:]):
            assert current >= previous - 0.05, f"{name} not monotone: {line}"
    sixty_four = ratio.x_values.index(64)
    avg64 = ratio.lines["Avg"][sixty_four]
    assert 1.5 <= avg64 <= 3.0, f"avg compression at 64 entries: {avg64}"
    benchmark.extra_info["avg_ratio"] = dict(
        zip(ratio.x_values, ratio.lines["Avg"])
    )
