"""Forensics throughput: single-pass DDG construction + slice queries.

The acceptance property the numbers demonstrate: the dynamic dependence
graph for a window is built in **one replay pass** (cost amortized over
every later query), after which backward slices — from the fault and
from arbitrary criteria — are pure graph traversal.  Contrast with the
naive approach the debugger used to embody, where every "who wrote
this" question re-scanned (or worse, re-replayed) the window.

``BENCH_throughput.json`` records the checked-in ``forensics_slice``
baseline (regenerate with ``PYTHONPATH=src python
benchmarks/record_baseline.py``).
"""

from benchmarks.scaling import scaled

from repro.common.config import BugNetConfig
from repro.forensics.ddg import DDG
from repro.forensics.slicing import (
    SliceCriterion,
    backward_slice,
    slice_from_fault,
)
from repro.workloads.bugs import BUGS_BY_NAME, run_bug

#: gzip's 32 K-instruction root-cause window (Table 1) is the
#: forensics workload: big enough to make O(window)-per-query painful,
#: small enough to benchmark.
WINDOW_BUG = "gzip-1.2.4"
INTERVAL = 10_000
SLICE_QUERIES = scaled(200, minimum=20)

_cache = None


def _forensics_setup():
    """(program, config, flls, crash) for the benchmark window."""
    global _cache
    if _cache is None:
        bug = BUGS_BY_NAME[WINDOW_BUG]
        config = BugNetConfig(checkpoint_interval=INTERVAL)
        run = run_bug(bug, bugnet=config, record=True)
        assert run.crashed
        crash = run.result.crash
        flls = crash.replay_chain(crash.faulting_tid)
        _cache = (run.program, config, flls, crash)
    return _cache


def _build_ddg():
    program, config, flls, _crash = _forensics_setup()
    return DDG.build(program, config, flls)


def _run_slices(ddg, queries=SLICE_QUERIES):
    """The fault slice plus a spread of load-criterion slices."""
    program, _config, _flls, crash = _forensics_setup()
    fault = slice_from_fault(ddg, program, crash.fault_pc, crash.fault_kind)
    loads = [index for index, event in enumerate(ddg.events)
             if event.load is not None]
    step = max(len(loads) // max(queries - 1, 1), 1)
    slices = [fault]
    for node in loads[::step][: queries - 1]:
        addr = ddg.events[node].load[0]
        slices.append(backward_slice(
            ddg, SliceCriterion(index=node + 1, addr=addr), control=False))
    return fault, slices


def test_ddg_build_single_pass(benchmark):
    _forensics_setup()   # record outside the timed region
    ddg = benchmark.pedantic(_build_ddg, rounds=3, iterations=1)
    assert ddg.replay_intervals == len(_forensics_setup()[2])
    assert len(ddg) > 0
    benchmark.extra_info["window_instructions"] = len(ddg)


def test_slice_queries(benchmark):
    _forensics_setup()
    ddg = _build_ddg()
    fault, slices = benchmark.pedantic(
        _run_slices, args=(ddg,), rounds=3, iterations=1)
    assert len(slices) >= SLICE_QUERIES
    # The fault slice reaches the injected defect.
    program = _forensics_setup()[0]
    root_line = program.source_line_of(program.pc_of("root_cause"))
    assert root_line in fault.source_lines(ddg)
    benchmark.extra_info["queries"] = len(slices)
