"""Ingestion-throughput benchmark for the fleet subsystem.

The developer-site bottleneck the fleet subsystem exists for: how many
crash reports per second can the pipeline validate (decode + full
faulting-thread replay + fault probe) and commit into the sharded
store?  Reports are synthesized once from the Table-1 bug suite at
varied checkpoint intervals — realistic traffic in that duplicates of
the same bug arrive with different replay windows.

``BENCH_throughput.json`` records the checked-in baseline (regenerate
with ``PYTHONPATH=src python benchmarks/record_baseline.py``).
"""

import shutil
import tempfile
from pathlib import Path

from benchmarks.scaling import scaled

from repro.common.config import BugNetConfig
from repro.fleet.ingest import IngestPipeline, resolver_from_programs
from repro.fleet.store import ReportStore
from repro.fleet.triage import build_buckets
from repro.tracing.serialize import dump_crash_report
from repro.workloads.bugs import BUGS_BY_NAME, run_bug

INGEST_REPORTS = scaled(24, minimum=8)
_FLEET_BUGS = ("bc-1.06", "tar-1.13.25", "gnuplot-3.7.1-1", "tidy-34132-3")
_INTERVALS = (2_000, 5_000, 25_000)

_cache = None


def _fleet_traffic():
    """(programs, items) for INGEST_REPORTS synthesized crash reports."""
    global _cache
    if _cache is None:
        programs = {}
        items = []
        for index in range(INGEST_REPORTS):
            bug = BUGS_BY_NAME[_FLEET_BUGS[index % len(_FLEET_BUGS)]]
            config = BugNetConfig(
                checkpoint_interval=_INTERVALS[index % len(_INTERVALS)]
            )
            run = run_bug(bug, bugnet=config, record=True)
            assert run.crashed
            programs.setdefault(bug.name, run.program)
            items.append((
                f"run-{index:03d}",
                dump_crash_report(run.result.crash, config),
                index,
            ))
        _cache = (programs, items)
    return _cache


def _ingest_all(workers: int = 1):
    programs, items = _fleet_traffic()
    root = Path(tempfile.mkdtemp(prefix="bugnet-bench-ingest-"))
    try:
        store = ReportStore(root, num_shards=8)
        pipeline = IngestPipeline(
            store, resolver_from_programs(programs), workers=workers
        )
        results = pipeline.ingest_many(items)
        buckets = build_buckets(store)
        return results, buckets
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_ingest_throughput(benchmark):
    _fleet_traffic()  # synthesize outside the timed region
    results, buckets = benchmark.pedantic(_ingest_all, rounds=3, iterations=1)
    assert all(result.accepted for result in results)
    assert len(buckets) == len(_FLEET_BUGS)


def test_ingest_throughput_worker_pool(benchmark):
    _fleet_traffic()
    results, buckets = benchmark.pedantic(
        _ingest_all, args=(4,), rounds=3, iterations=1
    )
    assert all(result.accepted for result in results)
    assert len(buckets) == len(_FLEET_BUGS)
