"""Duplicate-dominant MT admission throughput: the dedup fast path.

The racy-traffic chasm this tier closes: multithreaded validation
(``fleet_mt_validate``) replays every thread and infers races, so it
runs an order of magnitude slower than single-thread ingest — yet
BugNet's fleet premise is that most uploads are *duplicates* of a few
bugs.  With the admission cache attached, repeat blobs commit on the
signature-prefix probe without replay (minus the deterministic
trust-but-verify sample), so an 80 %-repeat racy workload should land
within ~2x of single-thread ``fleet_ingest`` instead of ~18x below it.

The corpus is the ``test_mt_validation`` MT suite (gaim-0.82.1 racy +
python-2.1.1-2) with 80 % byte-identical re-uploads under fresh
labels — the same shape ``bugnet load-sim --duplicate-fraction 0.8``
drives against a live service.  The cache starts cold each round:
duplicates are served by the intra-batch leader dedup plus the cache,
exactly like a fresh collector seeing a burst of one crash.

``BENCH_throughput.json`` records the checked-in baseline
(``fleet_mt_dedup``; regenerate with ``PYTHONPATH=src python
benchmarks/record_baseline.py``); ``benchmarks/check_regression.py``
gates CI on it.
"""

import random
import shutil
import tempfile
from pathlib import Path

from benchmarks.scaling import scaled
from benchmarks.test_mt_validation import _mt_traffic

from repro.fleet.admitcache import AdmitCache
from repro.fleet.ingest import IngestPipeline
from repro.fleet.store import ReportStore
from repro.fleet.triage import build_buckets
from repro.forensics.autopsy import bug_suite_resolver

DEDUP_UPLOADS = scaled(40, minimum=10)
DUPLICATE_FRACTION = 0.8
REVERIFY_FRACTION = 0.05

_cache = None


def _dedup_traffic():
    """DEDUP_UPLOADS items, DUPLICATE_FRACTION of them byte-identical
    re-uploads of earlier items under fresh labels (dedup-keyed order is
    deterministic: fixed rng, duplicates interleaved after their
    originals the way a crash burst arrives)."""
    global _cache
    if _cache is None:
        base = _mt_traffic()
        duplicates = int(round(DEDUP_UPLOADS * DUPLICATE_FRACTION))
        uniques = max(DEDUP_UPLOADS - duplicates, 1)
        originals = [base[index % len(base)] for index in range(uniques)]
        items = [
            (f"orig-{index:03d}:{label.split(':', 1)[-1]}", blob, index)
            for index, (label, blob, _observed) in enumerate(originals)
        ]
        rng = random.Random(7)
        for position in range(duplicates):
            label, blob, _observed = rng.choice(originals)
            items.append((
                f"dup-{position:03d}:{label.split(':', 1)[-1]}",
                blob,
                uniques + position,
            ))
        _cache = items
    return _cache


def _ingest_dedup():
    items = _dedup_traffic()
    root = Path(tempfile.mkdtemp(prefix="bugnet-bench-dedup-"))
    try:
        store = ReportStore(root, num_shards=4)
        pipeline = IngestPipeline(
            store, bug_suite_resolver(),
            admit_cache=AdmitCache(
                root / "admit-cache.json",
                reverify_fraction=REVERIFY_FRACTION,
            ),
        )
        results = pipeline.ingest_many(items)
        buckets = build_buckets(store)
        return results, buckets, pipeline
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_mt_dedup_throughput(benchmark):
    _dedup_traffic()  # synthesize outside the timed region
    results, buckets, pipeline = benchmark.pedantic(
        _ingest_dedup, rounds=3, iterations=1
    )
    assert all(result.accepted for result in results)
    # Dedup does not change triage: same two buckets as the pure MT
    # benchmark, gaim's racy bucket counting every duplicate upload.
    assert len(buckets) == 2
    racy = [bucket for bucket in buckets if bucket.racy]
    assert len(racy) == 1
    assert racy[0].program_name == "gaim-0.82.1"
    assert racy[0].count == sum(
        1 for label, _b, _o in _dedup_traffic() if "gaim" in label
    )
    duplicates = int(round(DEDUP_UPLOADS * DUPLICATE_FRACTION))
    # Most duplicates commit off the cache; only the deterministic
    # reverify sample replays in full (trust-but-verify).
    assert pipeline.cache_hits >= duplicates * 0.8
    assert pipeline.cache_hits + pipeline.reverified <= duplicates
    benchmark.extra_info["uploads"] = len(results)
    benchmark.extra_info["cache_hits"] = pipeline.cache_hits
    benchmark.extra_info["reverified"] = pipeline.reverified
