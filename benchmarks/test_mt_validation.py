"""Multi-thread validation throughput: the race-aware fleet hot path.

Multithreaded crash reports cost more to admit than single-thread ones:
validation chain-replays *every* thread with logs on the compiled
traced path, decodes and cross-checks the MRL ordering constraints,
merges a constraint-respecting schedule, and infers the data races
feeding the crash (the signature's race evidence).  This benchmark
measures that whole pipeline in reports/second over a corpus of
schedule-different recordings of the Table-1 multithreaded bugs —
python-2.1.1-2 (small window, race-free) and gaim-0.82.1 (the racy
buddy-removal bug whose manifestations must dedup into one bucket).

``BENCH_throughput.json`` records the checked-in baseline
(``fleet_mt_validate``; regenerate with ``PYTHONPATH=src python
benchmarks/record_baseline.py``); ``benchmarks/check_regression.py``
gates CI on it.
"""

import shutil
import tempfile
from pathlib import Path

from benchmarks.scaling import scaled

from repro.common.config import BugNetConfig
from repro.fleet.ingest import IngestPipeline
from repro.fleet.store import ReportStore
from repro.fleet.triage import build_buckets
from repro.forensics.autopsy import bug_suite_resolver
from repro.tracing.serialize import dump_crash_report
from repro.workloads.bugs import BUGS_BY_NAME, run_bug

MT_REPORTS = scaled(8, minimum=4)
_INTERVALS = (5_000, 20_000)

_cache = None


def _mt_traffic():
    """MT_REPORTS schedule-different multithreaded crash reports.

    Interleave seeds vary per run (the realistic racy-fleet shape:
    duplicates of one race arrive from different schedules); gaim's
    seeds are offset so at least two manifestations land on different
    fault PCs, proving the race-keyed bucketing inside the benchmark's
    own assertions.
    """
    global _cache
    if _cache is None:
        items = []
        for index in range(MT_REPORTS):
            racy = index % 2 == 0
            bug = BUGS_BY_NAME["gaim-0.82.1" if racy else "python-2.1.1-2"]
            config = BugNetConfig(
                checkpoint_interval=_INTERVALS[index % len(_INTERVALS)]
            )
            run = run_bug(bug, bugnet=config, record=True,
                          interleave_seed=(index * 2) if racy else 0)
            assert run.crashed
            items.append((
                f"mt-{index:03d}:{bug.name}",
                dump_crash_report(run.result.crash, config),
                index,
            ))
        _cache = items
    return _cache


def _validate_all():
    items = _mt_traffic()
    root = Path(tempfile.mkdtemp(prefix="bugnet-bench-mt-"))
    try:
        store = ReportStore(root, num_shards=4)
        pipeline = IngestPipeline(store, bug_suite_resolver())
        results = pipeline.ingest_many(items)
        buckets = build_buckets(store)
        return results, buckets
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_mt_validation_throughput(benchmark):
    _mt_traffic()  # synthesize outside the timed region
    results, buckets = benchmark.pedantic(_validate_all, rounds=3,
                                          iterations=1)
    assert all(result.accepted for result in results)
    # All schedule-different gaim recordings are one race-keyed bucket;
    # python-2 is one fault-site bucket.
    assert len(buckets) == 2
    racy = [bucket for bucket in buckets if bucket.racy]
    assert len(racy) == 1
    assert racy[0].program_name == "gaim-0.82.1"
    assert racy[0].count == sum(1 for label, _b, _o in _mt_traffic()
                                if "gaim" in label)
    replayed = sum(result.instructions_replayed for result in results)
    benchmark.extra_info["reports"] = len(results)
    benchmark.extra_info["replayed_instructions"] = replayed
