"""Section 6.3 — run-time overhead of BugNet logging.

Paper: "we used SimpleScalar x86 to examine the performance overhead of
BugNet and found it to be less than 0.01%" because compressed log
entries drain to memory on idle bus cycles.  Our bus-occupancy model
reproduces the claim on every SPEC personality.
"""

from benchmarks.scaling import scaled

from repro.analysis.experiments import experiment_overhead


def test_overhead_below_paper_bound(benchmark, emit):
    table, results = benchmark.pedantic(
        experiment_overhead,
        kwargs={"window": scaled(1_000_000)},
        rounds=1, iterations=1,
    )
    emit(table.render())
    for name, overhead in results.items():
        assert overhead < 0.0001, f"{name}: {overhead:.6f}"  # < 0.01%
    benchmark.extra_info["overhead"] = results
