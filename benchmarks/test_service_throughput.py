"""Throughput benchmark for the live ingestion service.

`bugnet load-sim` against an in-process `bugnet serve` over real
sockets: N concurrent uploaders, chunked validation, deterministic
batched commits.  The headline number — reports/s sustained through
the full upload → validate → commit → ack path — lands in
``BENCH_throughput.json`` as ``fleet_service`` (regenerate with
``PYTHONPATH=src python benchmarks/record_baseline.py``).

The service cannot beat the in-process batch pipeline on a single
core (it adds framing, sockets and scheduling on top of the same
validation), so the floor asserted here is correctness plus a sanity
rate; the recorded baseline captures the real numbers, including the
multiple over the pre-fast-replay batch rate the service architecture
was sized against.
"""

import asyncio
import shutil
import tempfile
from pathlib import Path

from benchmarks.scaling import scaled

from repro.fleet.loadsim import run_load_sim, synthesize_corpus
from repro.fleet.service import FleetService, ServiceConfig
from repro.fleet.validate import ResolverSpec

SERVICE_UPLOADS = scaled(96, minimum=24)
_FLEET_BUGS = ("bc-1.06", "tar-1.13.25", "gnuplot-3.7.1-1", "tidy-34132-3")
_INTERVALS = (2_000, 5_000, 25_000)
_WARMUP = 4

_cache = None


def _service_traffic():
    """A deterministic corpus of SERVICE_UPLOADS + warmup uploads."""
    global _cache
    if _cache is None:
        _programs, items, failures = synthesize_corpus(
            SERVICE_UPLOADS + _WARMUP, _FLEET_BUGS, seed=2,
            intervals=_INTERVALS, id_prefix="bench",
        )
        assert failures == 0
        _cache = items
    return _cache


def _run_service_load(workers: int = 0, concurrency: int = 8):
    """One full serve + load-sim round; returns the LoadSimReport for
    the measured (post-warmup) uploads."""
    items = _service_traffic()
    root = Path(tempfile.mkdtemp(prefix="bugnet-bench-service-"))

    async def main():
        service = FleetService(
            root / "store", ResolverSpec(),
            ServiceConfig(workers=workers, queue_limit=64),
        )
        host, port = await service.start()
        try:
            # Warmup assembles and replay-compiles the programs.
            await run_load_sim(host, port, items[:_WARMUP], concurrency=2)
            return await run_load_sim(
                host, port, items[_WARMUP:], concurrency=concurrency,
            )
        finally:
            await service.stop()

    try:
        return asyncio.run(main())
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_service_throughput(benchmark, emit):
    report = benchmark.pedantic(_run_service_load, rounds=3, iterations=1)
    assert len(report.accepted) == SERVICE_UPLOADS
    assert not report.rejected
    assert not report.failed
    stats = report.to_dict()
    benchmark.extra_info.update(stats)
    emit(
        "fleet service: %d uploads, %.1f reports/s steady-state, "
        "ack p50 %.2fms p99 %.2fms" % (
            stats["uploads"], stats["reports_per_sec"],
            stats["latency_p50_ms"], stats["latency_p99_ms"],
        )
    )
    # Generous sanity floor — the recorded baseline carries the real
    # number; this only catches order-of-magnitude regressions.
    assert report.reports_per_sec > 20
