"""Table 1 — replay windows between root cause and crash, all 18 bugs.

Paper claim: the window between the source of a bug and the crash "is
less than a million instructions on an average", and a 10 M-instruction
replay window captures the majority of the bugs.
"""

from repro.analysis.experiments import experiment_table1


def test_table1_bug_windows(benchmark, emit):
    table, rows = benchmark.pedantic(
        experiment_table1, rounds=1, iterations=1,
    )
    emit(table.render())
    assert len(rows) == 18
    for row in rows:
        assert row.run.crashed, f"{row.bug.name} did not crash"
        # Measured window within 2x of the (scaled) paper target.
        target = row.bug.target_window
        assert 0.4 * target <= row.run.window <= 2.5 * target + 64, row.bug.name
    # The paper's average: scaled windows average below one million
    # paper-unit instructions... their Table 1 average is ~1.5M including
    # ghostscript; the median is well under 100K.  Assert the majority
    # fit a 10M-instruction replay window (the paper's central claim).
    within_10m = sum(1 for row in rows if row.run.scaled_window <= 10_000_000)
    assert within_10m >= 16
    benchmark.extra_info["windows"] = {
        row.bug.name: row.run.scaled_window for row in rows
    }
