"""Table 2 — log sizes: BugNet (10 M / 1 B) vs FDR (1 B), 1:100 scaled.

Paper claims reproduced in shape:

* BugNet's FLL for the small window is hundreds of KB; for the 100x
  window it grows roughly linearly;
* FDR's SafetyNet checkpoint logs for the same execution are of the
  same order as BugNet's large-window FLLs — *but* FDR additionally
  ships interrupt/input/DMA logs and a core dump orders of magnitude
  larger, which BugNet does not need at all.
"""

from benchmarks.scaling import scaled

from repro.analysis.experiments import (
    experiment_table2,
    experiment_table2_full_system,
)


def test_table2_log_sizes(benchmark, emit):
    table, data = benchmark.pedantic(
        experiment_table2,
        kwargs={
            "small_window": scaled(100_000),
            "large_window": scaled(10_000_000),
            "workloads": ("art", "gzip", "mcf"),
        },
        rounds=1, iterations=1,
    )
    emit(table.render())
    assert data.bugnet_small_window > 0
    # Near-linear growth between the two windows (paper: 225KB -> 18.86MB).
    growth = data.bugnet_large_window / data.bugnet_small_window
    assert 15 <= growth <= 130, growth
    # FDR continuously generates checkpoint-log data of a comparable
    # order.  The exact FLL-to-undo-log ratio is scale-sensitive (our
    # 1:100 intervals log-heavier FLLs while shrunken store working
    # sets log-lighter undo entries — see EXPERIMENTS.md), so assert
    # the order-of-magnitude band rather than the paper's near-parity.
    assert data.fdr_checkpoint_logs > data.bugnet_large_window / 20
    assert data.fdr_checkpoint_logs < data.bugnet_large_window * 20
    benchmark.extra_info["bugnet_small"] = data.bugnet_small_window
    benchmark.extra_info["bugnet_large"] = data.bugnet_large_window
    benchmark.extra_info["fdr_checkpoint_logs"] = data.fdr_checkpoint_logs


def test_table2_full_system_shipment(benchmark, emit):
    table, data = benchmark.pedantic(
        experiment_table2_full_system, rounds=1, iterations=1,
    )
    emit(table.render())
    fdr = data["fdr"]
    # The paper's headline: no core dump for BugNet, and the total FDR
    # shipment dwarfs BugNet's logs for application-level debugging.
    assert fdr.core_dump > 0
    assert fdr.shipped_total > 10 * data["bugnet"]
    benchmark.extra_info["bugnet_bytes"] = data["bugnet"]
    benchmark.extra_info["fdr_shipped_bytes"] = fdr.shipped_total
