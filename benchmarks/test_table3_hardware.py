"""Table 3 — on-chip hardware complexity: BugNet ~48 KB vs FDR ~1416 KB."""

from repro.analysis.experiments import experiment_table3


def test_table3_hardware(benchmark, emit):
    table, data = benchmark.pedantic(
        experiment_table3, rounds=1, iterations=1,
    )
    emit(table.render())
    bugnet = data["bugnet"]
    fdr = data["fdr"]
    assert 48.0 <= bugnet.total_kb <= 49.0          # paper: 48 KB
    assert fdr.total_kb == 1416.0                   # paper: 1416 KB
    assert bugnet.components["Checkpoint Buffer (CB)"] == 16 * 1024
    assert bugnet.components["Memory Race Buffer (MRB)"] == 32 * 1024
    assert fdr.total_kb / bugnet.total_kb > 25
    benchmark.extra_info["bugnet_kb"] = bugnet.total_kb
    benchmark.extra_info["fdr_kb"] = fdr.total_kb
