"""Micro-benchmarks of the simulator itself (not a paper figure).

These keep the reproduction honest about its own cost: the recorder
path (cache + dictionary + FLL encode) per memory event, and the
full-system machine in instructions per second.
"""

from repro.common.config import BugNetConfig
from repro.workloads.bugs import BUGS_BY_NAME, run_bug
from repro.workloads.spec import SPEC_WORKLOADS
from repro.workloads.trace import record_personality


def test_trace_engine_throughput(benchmark):
    stats = benchmark.pedantic(
        record_personality,
        args=(SPEC_WORKLOADS["gzip"], 200_000, 100_000),
        rounds=3, iterations=1,
    )
    assert stats.instructions >= 200_000


def test_full_system_recording_throughput(benchmark):
    bug = BUGS_BY_NAME["gnuplot-3.7.1-2"]

    def run():
        return run_bug(bug, bugnet=BugNetConfig(checkpoint_interval=100_000),
                       record=True)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.crashed
