"""Micro-benchmarks of the simulator itself (not a paper figure).

These keep the reproduction honest about its own cost: the recorder
path (cache + dictionary + FLL encode) per memory event, and the
full-system machine in instructions per second.

Both engines are benchmarked in two drive modes: the batched fast path
(the default) and the per-event/per-instruction reference path.  The
differential tests (tests/test_fastpath_equivalence.py) prove the two
emit bit-identical logs; these benchmarks measure what the batching
buys.  ``BENCH_throughput.json`` at the repo root records the checked-in
baseline numbers (regenerate with
``PYTHONPATH=src python benchmarks/record_baseline.py``).
"""

from benchmarks.scaling import scaled

from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine
from repro.workloads.bugs import BUGS_BY_NAME, run_bug
from repro.workloads.spec import SPEC_WORKLOADS
from repro.workloads.trace import TraceEngine

TRACE_INSTRUCTIONS = scaled(200_000)


def _record_gzip(fast_path: bool):
    personality = SPEC_WORKLOADS["gzip"]
    engine = TraceEngine(
        personality.name,
        BugNetConfig(checkpoint_interval=100_000),
        fast_path=fast_path,
    )
    return engine.run(
        personality.events(TRACE_INSTRUCTIONS), TRACE_INSTRUCTIONS
    )


def test_trace_engine_throughput(benchmark):
    stats = benchmark.pedantic(
        _record_gzip, args=(True,), rounds=3, iterations=1,
    )
    assert stats.instructions >= TRACE_INSTRUCTIONS


def test_trace_engine_reference_throughput(benchmark):
    stats = benchmark.pedantic(
        _record_gzip, args=(False,), rounds=3, iterations=1,
    )
    assert stats.instructions >= TRACE_INSTRUCTIONS


def _run_gnuplot(fast_path: bool):
    bug = BUGS_BY_NAME["gnuplot-3.7.1-2"]
    program = bug.program()
    machine = Machine(
        program,
        MachineConfig(),
        BugNetConfig(checkpoint_interval=100_000),
        record=True,
        fast_path=fast_path,
    )
    machine.input.push_string(bug.input_text)
    machine.spawn()
    return machine.run()


def test_full_system_recording_throughput(benchmark):
    result = benchmark.pedantic(_run_gnuplot, args=(True,),
                                rounds=3, iterations=1)
    assert result.crashed


def test_full_system_reference_throughput(benchmark):
    result = benchmark.pedantic(_run_gnuplot, args=(False,),
                                rounds=3, iterations=1)
    assert result.crashed


def test_full_system_via_run_bug(benchmark):
    """The original seed benchmark shape (records the replay window too)."""
    bug = BUGS_BY_NAME["gnuplot-3.7.1-2"]

    def run():
        return run_bug(bug, bugnet=BugNetConfig(checkpoint_interval=100_000),
                       record=True)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.crashed
