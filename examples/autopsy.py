"""Automated fleet autopsies: from crash floods to root causes, unattended.

The paper's architecture ends with logs shipped "to the developer"; the
fleet subsystem (PR 2) turns floods of shipments into ranked buckets;
this walkthrough shows the forensics layer closing the loop:

1. synthesize fleet traffic from the Table-1 bug suite (duplicates of
   each bug at different checkpoint intervals — byte-different reports
   of the same defect) and ingest it into a sharded store,
2. run the autopsy pipeline over every triage bucket: replay the
   representative report once, build the dynamic dependence graph,
   slice backward from the faulting access, classify a verdict,
3. show the interactive counterpart: the debugger's ``why`` command
   walking the same def-use chain a human would chase by hand.

Run with::

    python examples/autopsy.py
"""

import tempfile

from repro.common.config import BugNetConfig
from repro.fleet.ingest import IngestPipeline
from repro.fleet.store import ReportStore
from repro.fleet.triage import build_buckets, render_triage
from repro.forensics.autopsy import autopsy_store, bug_suite_resolver
from repro.replay.debugger import ReplayDebugger
from repro.tracing.serialize import dump_crash_report
from repro.workloads.bugs import BUGS_BY_NAME, run_bug

FLEET = ("bc-1.06", "tar-1.13.25", "gnuplot-3.7.1-1", "tidy-34132-3")


def main() -> None:
    # -- 1. fleet traffic in -------------------------------------------
    print("== synthesizing fleet traffic from the Table-1 suite")
    store = ReportStore(tempfile.mkdtemp(prefix="bugnet-autopsy-"),
                        num_shards=4)
    programs = {}
    items = []
    for name in FLEET:
        for interval in (5_000, 25_000):
            bug = BUGS_BY_NAME[name]
            config = BugNetConfig(checkpoint_interval=interval)
            run = run_bug(bug, bugnet=config, record=True)
            programs.setdefault(name, run.program)
            items.append((f"{name}@{interval}",
                          dump_crash_report(run.result.crash, config), None))
    pipeline = IngestPipeline(store, programs.get)
    results = pipeline.ingest_many(items)
    print(f"   ingested {pipeline.accepted}/{len(results)} report(s) into "
          f"{store.num_shards} shard(s)")

    # -- 2. root causes out --------------------------------------------
    print("\n== unattended autopsies over every triage bucket")
    outcomes = autopsy_store(store, bug_suite_resolver(), workers=2)
    autopsies = {outcome.digest: outcome for outcome in outcomes}
    print(render_triage(build_buckets(store), autopsies=autopsies))
    for outcome in outcomes:
        print()
        print(f"-- bucket {outcome.digest[:12]}")
        print(outcome.autopsy.render())
        bug = BUGS_BY_NAME[outcome.program_name]
        program = programs[outcome.program_name]
        root_line = program.source_line_of(program.pc_of("root_cause"))
        verdict = ("MATCH" if outcome.autopsy.culprit_line == root_line
                   else "in slice" if root_line in outcome.autopsy.slice_lines
                   else "MISS")
        print(f"   annotated root cause: line {root_line} "
              f"({bug.bug_location}) -> {verdict}")

    # -- 3. the same chain, interactively ------------------------------
    print("\n== the debugger's `why` answers the same question by hand")
    bug = BUGS_BY_NAME["bc-1.06"]
    config = BugNetConfig(checkpoint_interval=5_000)
    run = run_bug(bug, bugnet=config, record=True)
    crash = run.result.crash
    debugger = ReplayDebugger(run.program, config,
                              crash.replay_chain(crash.faulting_tid))
    debugger.run()                    # to the window end (the crash)
    print("why t5 (the dereferenced null pointer):")
    print(debugger.why("t5"))


if __name__ == "__main__":
    main()
