"""Crash forensics: the paper's end-to-end debugging story.

A gzip-like program copies an attacker-length filename over a global
buffer, silently corrupting the neighbouring ``window_ptr``; tens of
thousands of instructions later it crashes dereferencing it.  The OS
ships the BugNet logs (no core dump!), and the developer:

1. replays the final checkpoints up to the faulting instruction,
2. confirms the fault reproduces (probe),
3. walks the replay *backwards* to find the store that corrupted the
   pointer — root-causing the bug from a few hundred KB of logs.

Run with::

    python examples/crash_forensics.py
"""

from repro import BugNetConfig, Replayer
from repro.analysis.report import format_bytes
from repro.arch.memory import Memory
from repro.workloads.bugs import BUGS_BY_NAME, run_bug


def main() -> None:
    bug = BUGS_BY_NAME["gzip-1.2.4"]
    config = BugNetConfig(checkpoint_interval=10_000)

    print(f"== running {bug.name}: {bug.description}")
    run = run_bug(bug, bugnet=config, record=True)
    crash = run.result.crash
    print(crash.summary())
    print(f"   root-cause -> crash window: {run.window} instructions")
    print(f"   logs shipped to developer : "
          f"{format_bytes(crash.total_bytes(config))} (core dump: none)")

    # --- developer side ----------------------------------------------
    tid = crash.faulting_tid
    flls = crash.flls_for(tid)
    print(f"\n== developer replays {len(flls)} checkpoint(s) "
          f"for thread {tid}")
    replayer = Replayer(run.program, config)
    memory = Memory(fault_checks=False)
    replays = [replayer.replay_interval(fll, memory=memory) for fll in flls]
    events = [event for replay in replays for event in replay.events]
    final = replays[-1]
    print(f"   replayed {len(events)} instructions; "
          f"stopped at pc={final.end_pc:#010x} "
          f"(recorded fault pc={crash.fault_pc:#010x})")

    fault = replayer.probe_fault(
        flls[-1], memory, final.end_pc, final.end_regs,
        mapped_pages=crash.mapped_pages,
    )
    print(f"   probing the faulting instruction reproduces: "
          f"{fault.kind} fault — {fault}")

    # The faulting dereference never committed, so the last committed
    # event is the load that fetched the corrupted pointer from
    # `window_ptr` — its address is the corrupted word.
    fault_event = events[-1]
    corrupted_word, bad_pointer = fault_event.load
    print(f"\n== forensic walk: the crash dereferenced {bad_pointer:#x}, "
          f"loaded from {corrupted_word:#010x}")
    culprit = next(
        event for event in reversed(events)
        if event.store is not None and event.store[0] == corrupted_word
    )
    line = run.program.source_line_of(culprit.pc)
    print(f"   window_ptr ({corrupted_word:#010x}) was last written at "
          f"pc={culprit.pc:#010x} (source line {line}) "
          f"with value {culprit.store[1]:#x} — the unbounded filename copy.")
    root_line = run.program.source_line_of(run.program.pc_of("root_cause"))
    print(f"   annotated root cause lives at source line {root_line}: "
          f"{'MATCH' if line == root_line else 'near miss'}")


if __name__ == "__main__":
    main()
