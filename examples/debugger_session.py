"""A replay-debugging session: breakpoints, watchpoints, time travel.

The ghostscript entry from Table 1 — a dangling-pointer write corrupts
an offsets table; ~180 K instructions later (1:100 scale of the paper's
18 M) the corrupted entry is dereferenced and the program dies.  The
developer receives the crash file and, without the bug ever being
reproducible locally, interrogates the one execution that failed:

* run to the crash, inspect where it died,
* set a watchpoint on the corrupted word and travel *backwards* to the
  exact store that planted the bad pointer,
* pull the access history of that word for the whole window.

Run with::

    python examples/debugger_session.py
"""

from repro.common.config import BugNetConfig
from repro.replay.debugger import ReplayDebugger
from repro.tracing.serialize import dump_crash_report, load_crash_report
from repro.workloads.bugs import BUGS_BY_NAME, run_bug


def main() -> None:
    bug = BUGS_BY_NAME["ghostscript-8.12"]
    config = BugNetConfig(checkpoint_interval=50_000)
    print(f"== user site: running {bug.name} ({bug.description})")
    run = run_bug(bug, bugnet=config, record=True)
    shipment = dump_crash_report(run.result.crash, config)
    print(f"   crashed; shipment = {len(shipment)} bytes on the wire")

    # --- developer site: only the binary and the shipment ---------------
    report, loaded_config = load_crash_report(shipment)
    print(f"\n== developer site: {report.fault_kind} fault at "
          f"pc={report.fault_pc:#010x}, source line {report.fault_source_line}")
    debugger = ReplayDebugger(
        run.program, loaded_config, report.flls_for(report.faulting_tid),
    )
    print(f"   replay window: {debugger.length} instructions")

    stop = debugger.run()                    # run to the end of the window
    print(f"   {stop}")
    print(f"   {debugger.where()}")

    # The crash dereferenced a wild pointer; find where it was loaded from.
    last = debugger.last_event()
    table_slot, wild_pointer = last.load
    print(f"\n== the wild pointer {wild_pointer:#x} was loaded from "
          f"{table_slot:#010x}; watch that word and run backwards")
    debugger.add_watchpoint(table_slot)
    stop = debugger.run_back()               # skips the load we came from
    print(f"   {stop}")
    culprit = debugger.last_event()
    line = run.program.source_line_of(culprit.pc)
    print(f"   culprit: pc={culprit.pc:#010x} (source line {line}) "
          f"stored {culprit.store[1]:#x}")
    root_line = run.program.source_line_of(run.program.pc_of("root_cause"))
    print(f"   annotated root cause is line {root_line}: "
          f"{'MATCH' if line == root_line else 'near miss'}")

    print(f"\n== full access history of {table_slot:#010x}:")
    for index, kind, value in debugger.access_history(table_slot):
        print(f"   @{index:>8} {kind:5s} {value:#010x}")

    # Registers can be reconstructed anywhere; sample at the culprit.
    debugger.seek(debugger.position)
    regs = debugger.registers()
    print(f"\n   register file at the culprit store: "
          f"s0={regs[16]:#x} s1={regs[17]:#x} t0={regs[8]:#x}")
    print("\ntime travel over one recorded execution — no rerun, no core "
          "dump, no luck required.")


if __name__ == "__main__":
    main()
