"""Fleet triage: the developer site at production scale.

The paper ends with one crash report shipped to the developer.  This
example plays the other side at fleet scale: forty users hit bugs from
the Table-1 suite under different recorder settings (different
checkpoint intervals and log budgets, so the shipments are
byte-for-byte different), two shipments arrive corrupted, and the
developer-site pipeline

1. validates every shipment by *replaying* its faulting-thread tail
   (the corrupted ones are rejected, not triaged),
2. dedups them into signature buckets in a sharded on-disk store,
3. ranks the buckets and picks the representative report — the one
   with the largest replay window — for a developer to open first.

Run with::

    python examples/fleet_triage.py
"""

import tempfile
import time

from repro.analysis.report import format_bytes, format_rate
from repro.common.config import BugNetConfig
from repro.fleet import IngestPipeline, ReportStore, build_buckets, render_triage
from repro.tracing.serialize import dump_crash_report
from repro.workloads.bugs import BUGS_BY_NAME, run_bug

FLEET_BUGS = ("bc-1.06", "tar-1.13.25", "gnuplot-3.7.1-1", "tidy-34132-3")
INTERVALS = (2_000, 10_000, 50_000)
BUDGETS = (None, None, 4_096)
RUNS = 40


def main() -> None:
    print(f"== {RUNS} users crash across {len(FLEET_BUGS)} distinct bugs")
    programs = {}
    items = []
    shipped = 0
    for index in range(RUNS):
        bug = BUGS_BY_NAME[FLEET_BUGS[index % len(FLEET_BUGS)]]
        config = BugNetConfig(
            checkpoint_interval=INTERVALS[index % len(INTERVALS)],
            log_memory_budget=BUDGETS[index % len(BUDGETS)],
        )
        run = run_bug(bug, bugnet=config, record=True)
        blob = dump_crash_report(run.result.crash, config)
        shipped += len(blob)
        programs.setdefault(bug.name, run.program)
        items.append((f"user-{index:02d}:{bug.name}", blob, index))
    print(f"   {len(items)} shipments, {format_bytes(shipped)} total "
          f"(no core dumps)")

    # Two shipments arrive corrupted in transit.
    for position in (3, 17):
        blob = bytearray(items[position][1])
        blob[len(blob) // 2] ^= 0xFF
        items[position] = (items[position][0] + ":corrupted", bytes(blob),
                           position)

    with tempfile.TemporaryDirectory(prefix="bugnet-fleet-") as root:
        store = ReportStore(root, num_shards=8)
        pipeline = IngestPipeline(store, programs.get, workers=4)
        start = time.perf_counter()
        results = pipeline.ingest_many(items)
        elapsed = time.perf_counter() - start

        print(f"\n== ingest: {pipeline.accepted} accepted, "
              f"{pipeline.rejected} rejected "
              f"({format_rate(len(results), elapsed, 'reports')})")
        for result in results:
            if not result.accepted:
                print(f"   rejected {result.label}: {result.reason}")

        buckets = build_buckets(store)
        print(f"\n{render_triage(buckets)}")

        top = buckets[0]
        report, _config = store.load(top.representative)
        print(f"\n== open the top bucket's representative "
              f"(window {top.representative.replay_window} instructions)")
        print(report.summary())


if __name__ == "__main__":
    main()
