"""Replaying across interrupts, system calls and DMA (paper §4.4, §4.5).

A program reads a record stream from a device.  Each READ_INPUT syscall
traps into the kernel, which DMAs the data into the user buffer while
the application blocks; the DMA completion invalidates cached blocks so
the delivered bytes re-log on first use.  BugNet terminates a checkpoint
interval at every trap — yet the developer replays *across* all of them
without ever simulating the OS: each new interval's header carries the
post-syscall register state, and the FLL carries the DMA-delivered
values.

Run with::

    python examples/interrupt_io.py
"""

from repro import BugNetConfig, Machine, MachineConfig, Replayer, assemble
from repro.replay import assert_traces_equal

SOURCE = """
.data
buf:    .space 128
total:  .word 0
.text
main:
    li   s2, 0                  # records processed
next_record:
    la   a0, buf
    li   a1, 8
    li   v0, 4                  # READ_INPUT: traps, blocks, DMA delivers
    syscall
    beqz v0, done               # device exhausted
    move s0, v0                 # words delivered
    li   s1, 0
    la   t9, buf
sum_record:
    sll  t0, s1, 2
    add  t0, t9, t0
    lw   t1, 0(t0)              # first use of DMA data: gets logged
    lw   t2, total
    add  t2, t2, t1
    sw   t2, total
    addi s1, s1, 1
    blt  s1, s0, sum_record
    addi s2, s2, 1
    b    next_record
done:
    lw   a0, total
    li   v0, 2
    syscall
    li   v0, 1
    syscall
"""


def main() -> None:
    program = assemble(SOURCE, name="io-demo")
    payload = list(range(1, 25))  # three 8-word records
    machine = Machine(
        program,
        MachineConfig(),
        BugNetConfig(checkpoint_interval=1_000_000),  # only traps cut intervals
        collect_traces=True,
        input_words=payload,
        dma_delay=40,             # DMA completes 40 instructions later
    )
    machine.spawn()
    result = machine.run()
    print(f"program summed the stream to: {result.console_values[0]} "
          f"(expected {sum(payload)})")
    print(f"DMA transfers: {machine.dma.transfers_completed}, "
          f"words: {machine.dma.words_transferred}")

    checkpoints = result.log_store.checkpoints(0)
    reasons = [cp.reason for cp in checkpoints]
    print(f"checkpoint intervals: {len(checkpoints)} "
          f"(terminated by: {', '.join(sorted(set(reasons)))})")
    print("  -> every syscall ended an interval; none were lost to the OS")

    replays = Replayer(program, machine.bugnet).replay(
        [cp.fll for cp in checkpoints]
    )
    events = [event for replay in replays for event in replay.events]
    assert_traces_equal(machine.collectors[0], events)
    dma_loads = [
        event for event in events
        if event.from_log and event.load and event.load[1] in payload
    ]
    print(f"replayed {len(events)} instructions bit-exact across "
          f"{len(checkpoints)} intervals")
    print(f"DMA-delivered values consumed from the FLL during replay: "
          f"{len(dma_loads)} loads (e.g. {dma_loads[0].load if dma_loads else None})")
    print("no interrupt handler, syscall routine, or DMA engine was "
          "simulated during replay — only the application.")


if __name__ == "__main__":
    main()
