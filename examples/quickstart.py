"""Quickstart: record a program, replay it deterministically.

This is the 60-second tour of the whole system:

1. assemble a BN32 program,
2. run it on the simulated machine with the BugNet recorder attached,
3. take the First-Load Logs the hardware would have written to memory,
4. replay them — and watch the replay reproduce the exact committed
   instruction stream, loads, and stores.

Run with::

    python examples/quickstart.py
"""

from repro import BugNetConfig, Machine, MachineConfig, Replayer, assemble
from repro.replay import assert_traces_equal

SOURCE = """
.data
fib:     .space 80              # fib[0..19]
.text
main:
    li   t0, 1
    sw   zero, fib              # fib[0] = 0
    la   t1, fib
    sw   t0, 4(t1)              # fib[1] = 1
    li   s0, 2                  # i
compute:
    sll  t2, s0, 2
    add  t2, t1, t2
    lw   t3, -4(t2)
    lw   t4, -8(t2)
    add  t5, t3, t4
    sw   t5, 0(t2)
    addi s0, s0, 1
    blt  s0, 20, compute
    lw   a0, fib+76             # fib[19]
    li   v0, 2                  # PRINT_INT
    syscall
    li   v0, 1                  # EXIT
    syscall
"""


def main() -> None:
    program = assemble(SOURCE, name="fib")

    # A small checkpoint interval so the run spans several intervals;
    # production BugNet uses 10M instructions (paper Section 6).
    machine = Machine(
        program,
        MachineConfig(),
        BugNetConfig(checkpoint_interval=64),
        collect_traces=True,   # reference trace, for the equality check
    )
    machine.spawn()
    result = machine.run()

    print(f"program printed : {result.console_text}  (fib(19) = 4181)")
    print(f"instructions     : {result.instructions[0]}")

    store = result.log_store
    checkpoints = store.checkpoints(0)
    print(f"checkpoints      : {len(checkpoints)}")
    print(f"FLL bytes        : {store.fll_bytes(0)}")
    print(f"loads logged     : {machine.recorders[0].loads_logged} "
          f"of {machine.recorders[0].loads_seen} executed "
          f"({100 * machine.recorders[0].first_load_rate:.1f}% first-loads)")

    # --- the other machine: the developer's replayer -----------------
    replayer = Replayer(program, machine.bugnet)
    replays = replayer.replay([cp.fll for cp in checkpoints])
    events = [event for replay in replays for event in replay.events]

    assert_traces_equal(machine.collectors[0], events)
    print(f"replayed         : {len(events)} instructions, bit-exact")

    # Every load in the replay either came from the log (a first access)
    # or was regenerated from replayed memory state.
    from_log = sum(1 for event in events if event.from_log)
    print(f"loads from log   : {from_log}; regenerated: "
          f"{sum(1 for e in events if e.load) - from_log}")


if __name__ == "__main__":
    main()
