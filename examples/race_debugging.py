"""Debugging a data race with Memory Race Logs (paper Sections 4.6, 5.2).

Two threads increment a shared counter — one pair of accessors without a
lock (a real data race, updates get lost), another pair correctly
locked.  BugNet records per-thread FLLs plus MRLs from the coherence
replies; the developer then:

1. replays each thread independently (FLLs are self-contained),
2. stitches a valid sequentially-consistent interleaving from the MRLs,
3. infers data races: conflicting accesses unordered by any lock
   handoff — and sees exactly how the racy interleaving lost updates.

Run with::

    python examples/race_debugging.py
"""

from repro import BugNetConfig, MachineConfig, Machine, assemble
from repro.replay.races import infer_races, replay_all_threads, sync_constraints

SOURCE = """
.data
racy_counter:   .word 0
locked_counter: .word 0
.text
main:
    li   s0, 0
    li   s1, 60
loop:
    # -- unsynchronized increment: the bug -------------------------
    lw   t0, racy_counter
    addi t0, t0, 1
    sw   t0, racy_counter
    # -- locked increment: the fix ---------------------------------
    li   v0, 8                  # LOCK(1)
    li   a0, 1
    syscall
    lw   t0, locked_counter
    addi t0, t0, 1
    sw   t0, locked_counter
    li   v0, 9                  # UNLOCK(1)
    li   a0, 1
    syscall
    addi s0, s0, 1
    blt  s0, s1, loop
    li   v0, 1
    syscall
"""


def main() -> None:
    program = assemble(SOURCE, name="race-demo")
    machine = Machine(
        program,
        MachineConfig(num_cores=2),
        BugNetConfig(checkpoint_interval=2_000),
    )
    machine.spawn()
    machine.spawn()
    result = machine.run()

    racy = machine.memory.peek(program.symbols["racy_counter"])
    locked = machine.memory.peek(program.symbols["locked_counter"])
    print(f"racy counter   : {racy}  (120 increments executed -> "
          f"{120 - racy} lost updates)")
    print(f"locked counter : {locked}  (correct)")

    store = result.log_store
    mrl_entries = sum(
        cp.mrl.num_entries for tid in store.threads()
        for cp in store.checkpoints(tid)
    )
    print(f"\nMRL entries recorded from coherence replies: {mrl_entries}")

    # --- developer side ------------------------------------------------
    replay = replay_all_threads(store, {0: program, 1: program},
                                machine.bugnet)
    print(f"per-thread replays: "
          f"{ {tid: replay.thread_length(tid) for tid in (0, 1)} } "
          f"instructions, stitched into a {len(replay.schedule)}-step "
          f"sequentially-consistent schedule")

    sync = sync_constraints(replay, machine.kernel.sync_edges)
    races = infer_races(replay, sync)
    print(f"\ninferred data races ({len(races)}):")
    for race in races:
        symbol = "racy_counter" if race.addr == program.symbols["racy_counter"] \
            else f"{race.addr:#x}"
        print(f"  {race}   [{symbol}]")

    racy_addr = program.symbols["racy_counter"]
    locked_addr = program.symbols["locked_counter"]
    assert any(race.addr == racy_addr for race in races)
    assert all(race.addr != locked_addr for race in races)
    print("\nthe unlocked counter races; the locked one does not — "
          "exactly what the lock handoff edges prove.")


if __name__ == "__main__":
    main()
