"""Design-space mini-study: interval length vs. log size vs. hardware.

A scriptable version of the paper's sensitivity analysis (Figures 3-6
and Table 3) on one workload, for readers who want to turn the knobs:

* sweep the checkpoint interval and watch the first-load optimization
  compound (Figure 3's shape),
* sweep the dictionary size and watch hit rate / compression saturate
  (Figures 5-6), and
* see what the on-chip budget would be (Table 3's model).

Run with::

    python examples/tradeoff_study.py [workload] [window]
"""

import sys

from repro import BugNetConfig, DictionaryConfig
from repro.analysis.report import Table, format_bytes
from repro.tracing.hardware import bugnet_hardware
from repro.workloads.spec import SPEC_WORKLOADS
from repro.workloads.trace import record_personality


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    window = int(sys.argv[2]) if len(sys.argv) > 2 else 300_000
    personality = SPEC_WORKLOADS[name]

    interval_table = Table(
        f"{name}: checkpoint interval vs FLL size ({window}-instruction window)",
        ["interval", "FLL size", "first-load rate", "intervals"],
    )
    for interval in (200, 2_000, 20_000, 200_000):
        stats = record_personality(personality, window, interval)
        interval_table.add(
            interval, format_bytes(stats.fll_bytes),
            f"{100 * stats.first_load_rate:.1f}%", stats.intervals,
        )
    print(interval_table.render())

    sizes = (8, 32, 64, 256, 1024)
    stats = record_personality(
        personality, window, 100_000, satellite_sizes=sizes,
    )
    config = BugNetConfig(checkpoint_interval=100_000)
    dict_table = Table(
        f"\n{name}: dictionary size vs hit rate and compression",
        ["entries", "hit rate", "compression ratio", "CAM bytes"],
    )
    for size in sizes:
        cam = BugNetConfig(dictionary=DictionaryConfig(entries=size))
        from repro.tracing.hardware import dictionary_cam_bytes

        dict_table.add(
            size,
            f"{100 * stats.dict_stats[size].hit_rate:.1f}%",
            f"{stats.compression_ratio_for(size, config):.2f}x",
            dictionary_cam_bytes(cam),
        )
    print(dict_table.render())

    budget = bugnet_hardware(config)
    hw_table = Table("\nOn-chip budget at this design point", ["component", "bytes"])
    for component, size in budget.components.items():
        hw_table.add(component, format_bytes(size))
    hw_table.add("TOTAL", format_bytes(budget.total_bytes))
    print(hw_table.render())


if __name__ == "__main__":
    main()
