"""BugNet reproduction: continuous first-load recording for deterministic
replay debugging (Narayanasamy, Pokam & Calder, ISCA 2005).

Quick tour (see README.md for the full story)::

    from repro import (
        assemble, Machine, MachineConfig, BugNetConfig, Replayer,
    )

    program = assemble(SOURCE)
    machine = Machine(program, MachineConfig(), BugNetConfig())
    machine.spawn()
    result = machine.run()
    if result.crashed:
        flls = result.crash.flls_for(result.crash.faulting_tid)
        replays = Replayer(program, machine.bugnet).replay(flls)

Package layout:

* :mod:`repro.arch` — the BN32 CPU/ISA substrate,
* :mod:`repro.cache` — first-load-bit cache hierarchy + coherence,
* :mod:`repro.tracing` — the BugNet recorder (FLL, MRL, dictionary),
* :mod:`repro.replay` — deterministic replay and race inference,
* :mod:`repro.system` — kernel, interrupts, DMA, crash reports,
* :mod:`repro.mp` — the full-system machine,
* :mod:`repro.baselines` — the FDR/SafetyNet comparison,
* :mod:`repro.workloads` — SPEC personalities and the Table-1 bug suite,
* :mod:`repro.analysis` — experiment drivers for every table/figure,
* :mod:`repro.fleet` — developer-site fleet store: validated ingestion,
  signature dedup, and triage over floods of crash reports,
* :mod:`repro.forensics` — dynamic dependence graphs, backward slicing,
  value provenance, and unattended fleet autopsies.
"""

from repro.arch import assemble
from repro.common.config import BugNetConfig, CacheConfig, DictionaryConfig, MachineConfig
from repro.fleet import IngestPipeline, ReportStore, compute_signature
from repro.forensics import build_ddg, perform_autopsy, slice_from_fault
from repro.mp.machine import Machine, MachineResult, run_program
from repro.replay import Replayer, assert_traces_equal
from repro.system.fault import CrashReport

__version__ = "1.0.0"

__all__ = [
    "assemble",
    "BugNetConfig",
    "CacheConfig",
    "DictionaryConfig",
    "MachineConfig",
    "Machine",
    "MachineResult",
    "run_program",
    "Replayer",
    "assert_traces_equal",
    "CrashReport",
    "IngestPipeline",
    "ReportStore",
    "compute_signature",
    "build_ddg",
    "slice_from_fault",
    "perform_autopsy",
    "__version__",
]
