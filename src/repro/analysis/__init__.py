"""Analysis: log-size accounting, table/series rendering, experiment drivers.

One driver per paper table/figure lives in
:mod:`repro.analysis.experiments`; the benchmarks call them and print
the same rows/series the paper reports.
"""

from repro.analysis.report import Series, Table, format_bytes
from repro.analysis.sizes import fll_bytes_for_window, report_bytes_for_window

__all__ = [
    "Table",
    "Series",
    "format_bytes",
    "fll_bytes_for_window",
    "report_bytes_for_window",
]
