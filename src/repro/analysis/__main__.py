"""Regenerate every paper table and figure as one text report.

Usage::

    python -m repro.analysis [--fast]

``--fast`` shrinks the sweeps ~5x for a quick look.  The full run takes
several minutes (it executes every bug program and sweeps all seven
SPEC personalities); its output is the basis of EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time

from repro.analysis import experiments as exp


def main(argv: list[str]) -> int:
    fast = "--fast" in argv
    shrink = 5 if fast else 1
    window = 1_000_000 // shrink
    big_window = 10_000_000 // shrink
    started = time.time()

    def section(title: str) -> None:
        print()
        print("#" * 72)
        print(f"# {title}   [t+{time.time() - started:.0f}s]")
        print("#" * 72)

    section("Table 1 — bug replay windows")
    table, _rows = exp.experiment_table1()
    print(table.render())

    section("Figure 2 — FLL sizes per bug")
    table, _sizes = exp.experiment_fig2()
    print(table.render())

    section("Figure 3 — FLL size vs checkpoint interval")
    series = exp.experiment_fig3(window=window)
    print(series.render(fmt=lambda v: f"{v:,.0f}"))

    section("Figure 4 — FLL size vs replay window")
    series = exp.experiment_fig4(
        windows=(100_000 // shrink, window, big_window),
    )
    print(series.render(fmt=lambda v: f"{v:,.0f}"))

    section("Figures 5 and 6 — dictionary hit rate and compression ratio")
    hit, ratio = exp.experiment_fig5_fig6(window=window)
    print(hit.render(fmt=lambda v: f"{v:.1f}"))
    print()
    print(ratio.render(fmt=lambda v: f"{v:.2f}"))

    section("Table 2 — log sizes vs FDR")
    table, _data = exp.experiment_table2(
        small_window=100_000 // shrink, large_window=big_window,
        workloads=("art", "gzip", "mcf"),
    )
    print(table.render())
    table, _full = exp.experiment_table2_full_system()
    print()
    print(table.render())

    section("Table 3 — hardware complexity")
    table, _hw = exp.experiment_table3()
    print(table.render())

    section("Section 6.3 — logging overhead")
    table, _overhead = exp.experiment_overhead(window=window)
    print(table.render())

    print(f"\ntotal: {time.time() - started:.0f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
