"""One driver per paper table/figure.

Every function returns a rendered report plus the raw data, so the
benchmarks can both print the paper-shaped output and assert on the
shape (who wins, monotonicity, crossovers).  Scaled experiments (see
DESIGN.md) report raw measurements alongside 1:100 rescaled values.

Scaling map (paper → here): checkpoint interval 10 M → 100 K; replay
windows 10 M/100 M/1 B → 100 K/1 M/10 M; FDR interval (1/3 s ≈ 333 M) →
3.33 M.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import Series, Table, format_bytes
from repro.analysis.sizes import fll_bytes_for_window, report_bytes_for_window
from repro.baselines.fdr import FDRConfig, FDRTraceRecorder, fdr_sizes_from_run
from repro.common.config import BugNetConfig
from repro.tracing.hardware import bugnet_hardware, fdr_hardware
from repro.workloads.bugs import BUG_SUITE, BugProgram, BugRunResult, run_bug
from repro.workloads.spec import SPEC_WORKLOADS
from repro.workloads.trace import TraceEngine, record_personality

SCALE = 100
SCALED_INTERVAL = 100_000          # paper: 10 M
SCALED_WINDOWS = (100_000, 1_000_000, 10_000_000)   # paper: 10 M, 100 M, 1 B
DICT_SIZES = (8, 16, 32, 64, 128, 256, 1024)

PAPER_FIG4_AVG = {100_000: 225 * 1024, 10_000_000: int(18.86 * 1024 * 1024)}


# -- Table 1 ---------------------------------------------------------------

@dataclass
class Table1Row:
    """Measured window for one bug."""

    bug: BugProgram
    run: BugRunResult


def experiment_table1(bugs: list[BugProgram] | None = None) -> tuple[Table, list[Table1Row]]:
    """Reproduce Table 1: bug windows between root cause and crash."""
    rows = []
    table = Table(
        "Table 1 — open source programs with known bugs",
        ["program", "bug location", "bug class", "measured window",
         "scaled (paper units)", "paper window"],
    )
    for bug in bugs or BUG_SUITE:
        run = run_bug(bug, record=False)
        rows.append(Table1Row(bug, run))
        table.add(
            bug.name, bug.bug_location, bug.description,
            run.window, run.scaled_window, bug.paper_window,
        )
    return table, rows


# -- Figure 2 ----------------------------------------------------------------

def experiment_fig2(
    bugs: list[BugProgram] | None = None,
    checkpoint_interval: int = SCALED_INTERVAL,
) -> tuple[Table, dict[str, int]]:
    """Reproduce Figure 2: FLL bytes needed to replay each bug window."""
    config = BugNetConfig(checkpoint_interval=checkpoint_interval)
    sizes: dict[str, int] = {}
    table = Table(
        "Figure 2 — FLL size to replay each bug window "
        f"(checkpoint interval {checkpoint_interval})",
        ["program", "window", "FLL size", "with races/other threads"],
    )
    for bug in bugs or BUG_SUITE:
        run = run_bug(bug, bugnet=config, record=True)
        if not run.crashed:
            raise RuntimeError(f"{bug.name} did not crash")
        window = run.window if run.root_thread == run.result.crash.faulting_tid \
            else run.result.crash.replay_window(run.result.crash.faulting_tid)
        fll = fll_bytes_for_window(run.result.crash, config, window)
        full = report_bytes_for_window(run.result.crash, config, window)
        sizes[bug.name] = fll
        table.add(bug.name, run.window, format_bytes(fll), format_bytes(full))
    return table, sizes


# -- Figures 3 and 4 ----------------------------------------------------------

def experiment_fig3(
    window: int = 1_000_000,
    intervals: tuple[int, ...] = (100, 1_000, 10_000, 100_000, 1_000_000),
    workloads: tuple[str, ...] | None = None,
) -> Series:
    """Figure 3: FLL size for a fixed window vs. checkpoint interval length.

    Paper shape: monotonically decreasing (the first-load optimization
    pays off with longer intervals).  Scaled 1:100.
    """
    series = Series(
        "Figure 3 — total FLL size to replay "
        f"{window} instructions (scaled 1:100)",
        x_label="checkpoint interval", y_label="FLL KB",
    )
    for name in workloads or tuple(SPEC_WORKLOADS):
        personality = SPEC_WORKLOADS[name]
        for interval in intervals:
            stats = record_personality(personality, window, interval)
            series.set_point(name, interval, stats.fll_bytes / 1024)
    for index, x in enumerate(series.x_values):
        series.set_point("Avg", x, series.average()[index])
    return series


def experiment_fig4(
    windows: tuple[int, ...] = SCALED_WINDOWS,
    interval: int = SCALED_INTERVAL,
    workloads: tuple[str, ...] | None = None,
) -> Series:
    """Figure 4: FLL size vs. replay window length (10 M interval scaled)."""
    series = Series(
        f"Figure 4 — total FLL size vs replay window (interval {interval}, "
        "scaled 1:100)",
        x_label="replay window", y_label="FLL KB",
    )
    for name in workloads or tuple(SPEC_WORKLOADS):
        personality = SPEC_WORKLOADS[name]
        for window in windows:
            stats = record_personality(personality, window, interval)
            series.set_point(name, window, stats.fll_bytes / 1024)
    for index, x in enumerate(series.x_values):
        series.set_point("Avg", x, series.average()[index])
    return series


# -- Figures 5 and 6 ----------------------------------------------------------

def experiment_fig5_fig6(
    window: int = 1_000_000,
    interval: int = SCALED_INTERVAL,
    sizes: tuple[int, ...] = DICT_SIZES,
    workloads: tuple[str, ...] | None = None,
) -> tuple[Series, Series]:
    """Figures 5 and 6: dictionary hit rate and compression ratio vs. size."""
    hit = Series(
        "Figure 5 — % of load values found in the dictionary",
        x_label="dictionary size", y_label="% hits",
    )
    ratio = Series(
        "Figure 6 — FLL compression ratio",
        x_label="dictionary size", y_label="ratio",
    )
    for name in workloads or tuple(SPEC_WORKLOADS):
        personality = SPEC_WORKLOADS[name]
        stats = record_personality(
            personality, window, interval, satellite_sizes=sizes,
        )
        config = BugNetConfig(checkpoint_interval=interval)
        for size in sizes:
            hit.set_point(name, size, 100.0 * stats.dict_stats[size].hit_rate)
            ratio.set_point(name, size, stats.compression_ratio_for(size, config))
    for series in (hit, ratio):
        averages = series.average()
        for index, x in enumerate(series.x_values):
            series.set_point("Avg", x, averages[index])
    return hit, ratio


# -- Table 2 -------------------------------------------------------------------

@dataclass
class Table2Data:
    """Measured log sizes for the BugNet-vs-FDR comparison."""

    bugnet_small_window: int = 0      # scaled 10 M
    bugnet_large_window: int = 0      # scaled 1 B
    mrl_small: int = 0
    fdr_checkpoint_logs: int = 0      # scaled 1 B, SafetyNet undo logs
    fdr_compressed_checkpoint: int = 0
    fdr_full_system: dict = field(default_factory=dict)


def experiment_table2(
    small_window: int = SCALED_WINDOWS[0],
    large_window: int = SCALED_WINDOWS[2],
    interval: int = SCALED_INTERVAL,
    workloads: tuple[str, ...] | None = None,
) -> tuple[Table, Table2Data]:
    """Table 2: log sizes, BugNet (10 M and 1 B) vs FDR (1 B), scaled 1:100.

    BugNet's FLLs are measured on the SPEC personalities; FDR's
    checkpoint logs are measured by running SafetyNet undo logging over
    the *same* event streams; FDR's interrupt/input/DMA logs and core
    dump are measured on a full-system bug-program run
    (:func:`repro.baselines.fdr.fdr_sizes_from_run`).
    """
    names = workloads or tuple(SPEC_WORKLOADS)
    data = Table2Data()
    small_sizes = []
    large_sizes = []
    fdr_raw = []
    fdr_compressed = []
    for name in names:
        personality = SPEC_WORKLOADS[name]
        small_sizes.append(
            record_personality(personality, small_window, interval).fll_bytes
        )
        large_stats = record_personality(personality, large_window, interval)
        large_sizes.append(large_stats.fll_bytes)
        # FDR undo logging over the same stream (stores only matter).
        fdr = FDRTraceRecorder(FDRConfig(checkpoint_interval=3_330_000))
        for gaps, stores, addrs, _values in personality.events(large_window):
            for gap, is_store, addr in zip(
                gaps.tolist(), stores.tolist(), addrs.tolist()
            ):
                fdr.on_commit(gap)
                if is_store:
                    fdr.on_store(addr)
        stats = fdr.close()
        fdr_raw.append(stats.total_bytes)
        fdr_compressed.append(fdr.compressed_undo_bytes)

    data.bugnet_small_window = sum(small_sizes) // len(small_sizes)
    data.bugnet_large_window = sum(large_sizes) // len(large_sizes)
    data.fdr_checkpoint_logs = sum(fdr_raw) // len(fdr_raw)
    data.fdr_compressed_checkpoint = sum(fdr_compressed) // len(fdr_compressed)

    table = Table(
        "Table 2 — log sizes, BugNet vs FDR (1:100 scale: windows "
        f"{small_window} and {large_window})",
        ["log", f"BugNet:{small_window}", f"BugNet:{large_window}",
         f"FDR:{large_window}"],
    )
    table.add("First-Load Log (avg)",
              format_bytes(data.bugnet_small_window),
              format_bytes(data.bugnet_large_window), "NIL")
    table.add("Memory race log", "=FDR", "=FDR", "=FDR (same mechanism)")
    table.add("Checkpoint logs (SafetyNet undo)", "NIL", "NIL",
              f"{format_bytes(data.fdr_checkpoint_logs)} "
              f"({format_bytes(data.fdr_compressed_checkpoint)} LZ)")
    table.add("Core dump", "NIL", "NIL", "memory footprint (see below)")
    table.add("Interrupt/Input/DMA logs", "NIL", "NIL", "depends on program")
    return table, data


def experiment_table2_full_system(bug_name: str = "gzip-1.2.4") -> tuple[Table, dict]:
    """Table 2's per-program tail: full-system FDR logs vs BugNet shipment."""
    bug = next(b for b in BUG_SUITE if b.name == bug_name)
    config = BugNetConfig(checkpoint_interval=SCALED_INTERVAL)
    run = run_bug(bug, bugnet=config, record=True, collect_traces=True)
    fdr = fdr_sizes_from_run(run.machine, run.result,
                             FDRConfig(checkpoint_interval=3_330_000))
    bugnet_bytes = run.result.crash.total_bytes(config)
    table = Table(
        f"Table 2 (full system, {bug_name}) — developer shipment",
        ["system", "logs", "core dump", "total"],
    )
    table.add("BugNet", format_bytes(bugnet_bytes), "NIL",
              format_bytes(bugnet_bytes))
    table.add("FDR", format_bytes(fdr.logs_total), format_bytes(fdr.core_dump),
              format_bytes(fdr.shipped_total))
    return table, {"bugnet": bugnet_bytes, "fdr": fdr}


# -- Table 3 -------------------------------------------------------------------

def experiment_table3() -> tuple[Table, dict]:
    """Table 3: on-chip hardware, BugNet vs FDR."""
    config = BugNetConfig()
    bugnet = bugnet_hardware(config)
    fdr = fdr_hardware()
    table = Table(
        "Table 3 — hardware complexity, BugNet vs FDR",
        ["component", "BugNet", "FDR"],
    )
    names = sorted(set(bugnet.components) | set(fdr.components))
    for name in names:
        ours = bugnet.components.get(name)
        theirs = fdr.components.get(name)
        table.add(name,
                  format_bytes(ours) if ours else "NIL",
                  format_bytes(theirs) if theirs else "NIL")
    table.add("Compression", f"{config.dictionary.entries}-entry CAM "
              f"({format_bytes(bugnet.components['Dictionary CAM'])})", "LZ HW")
    table.add("TOTAL", format_bytes(bugnet.total_bytes),
              format_bytes(fdr.total_bytes))
    return table, {"bugnet": bugnet, "fdr": fdr}


# -- §6.3 overhead ---------------------------------------------------------------

def experiment_overhead(window: int = 1_000_000,
                        interval: int = SCALED_INTERVAL) -> tuple[Table, dict]:
    """The <0.01 % logging-overhead claim, via the bus-occupancy model."""
    from repro.tracing.backing import BusModel

    table = Table(
        "Section 6.3 — BugNet run-time overhead (bus model)",
        ["workload", "log bytes", "peak CB occupancy", "stall cycles",
         "overhead %"],
    )
    results = {}
    for name, personality in SPEC_WORKLOADS.items():
        stats = record_personality(personality, window, interval)
        bus = BusModel()
        per_interval = max(stats.intervals, 1)
        for _ in range(per_interval):
            bus.account_window(
                instructions=window // per_interval,
                fills=stats.memory_fills // per_interval,
                writebacks=stats.writebacks // per_interval,
                log_bytes=stats.fll_bytes // per_interval,
            )
        results[name] = bus.overhead
        table.add(name, format_bytes(stats.fll_bytes), bus.peak_cb_occupancy,
                  f"{bus.stall_cycles:.0f}", f"{100 * bus.overhead:.4f}")
    return table, results
