"""ASCII rendering for the regenerated tables and figure series."""

from __future__ import annotations

from dataclasses import dataclass, field


def format_bytes(count: float) -> str:
    """Human units matching the paper's KB/MB convention."""
    if count >= 1024 * 1024:
        return f"{count / (1024 * 1024):.2f} MB"
    if count >= 1024:
        return f"{count / 1024:.1f} KB"
    return f"{int(count)} B"


def format_rate(count: float, seconds: float, unit: str = "") -> str:
    """A throughput figure (``1234 reports/s``); safe for zero durations."""
    suffix = f" {unit}/s" if unit else "/s"
    if seconds <= 0:
        return f"inf{suffix}"
    rate = count / seconds
    if rate >= 100:
        return f"{rate:,.0f}{suffix}"
    return f"{rate:.2f}{suffix}"


@dataclass
class Table:
    """A simple aligned-text table."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add(self, *cells) -> None:
        """Append a row (cells are str()-ed)."""
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """Aligned text rendering."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)


@dataclass
class Series:
    """A figure reproduced as (x, per-name y) series."""

    title: str
    x_label: str
    y_label: str
    x_values: list = field(default_factory=list)
    lines: dict[str, list] = field(default_factory=dict)

    def set_point(self, name: str, x, y) -> None:
        """Record one (x, y) point for one line."""
        if x not in self.x_values:
            self.x_values.append(x)
        self.lines.setdefault(name, [None] * len(self.x_values))
        line = self.lines[name]
        while len(line) < len(self.x_values):
            line.append(None)
        line[self.x_values.index(x)] = y
        for other in self.lines.values():
            while len(other) < len(self.x_values):
                other.append(None)

    def render(self, fmt=lambda v: f"{v:.3g}") -> str:
        """Render the series as an aligned table, one row per line."""
        table = Table(
            f"{self.title}  [{self.y_label} vs {self.x_label}]",
            ["series"] + [str(x) for x in self.x_values],
        )
        for name in sorted(self.lines):
            cells = [
                fmt(v) if v is not None else "-" for v in self.lines[name]
            ]
            table.add(name, *cells)
        return table.render()

    def average(self) -> list:
        """Point-wise average across lines (the paper's Avg series)."""
        out = []
        for index in range(len(self.x_values)):
            values = [
                line[index] for line in self.lines.values()
                if line[index] is not None
            ]
            out.append(sum(values) / len(values) if values else None)
        return out
