"""Log-size accounting helpers (Figure 2's metric).

Figure 2 reports, per bug, the size of the FLLs "that can replay the
window of execution required to capture the bug": the newest checkpoints
of the faulting thread whose cumulative interval lengths cover the
root-cause→crash distance.  For the multithreaded bugs we additionally
include other threads' logs that overlap the window in time (identified
by FLL header timestamps), since replaying the interaction needs them.
"""

from __future__ import annotations

from repro.common.config import BugNetConfig
from repro.system.fault import CrashReport


def fll_bytes_for_window(
    report: CrashReport,
    config: BugNetConfig,
    window: int,
    tid: int | None = None,
) -> int:
    """Bytes of the faulting thread's FLLs covering *window* instructions."""
    tid = report.faulting_tid if tid is None else tid
    covered = 0
    total = 0
    for checkpoint in reversed(report.checkpoints.get(tid, [])):
        total += checkpoint.fll.byte_size(config)
        covered += checkpoint.fll.interval_length
        if covered >= window:
            break
    return total


def report_bytes_for_window(
    report: CrashReport,
    config: BugNetConfig,
    window: int,
    include_races: bool = True,
) -> int:
    """Total shipment bytes covering the bug window across all threads.

    The faulting thread contributes the FLLs covering *window* of its own
    instructions; other threads contribute the checkpoints whose
    recording overlaps that span in time (timestamps are global steps),
    plus — when *include_races* — the matching MRLs.
    """
    fault_tid = report.faulting_tid
    fault_checkpoints = report.checkpoints.get(fault_tid, [])
    covered = 0
    window_start_ts = None
    total = 0
    for checkpoint in reversed(fault_checkpoints):
        total += checkpoint.fll.byte_size(config)
        if include_races:
            total += checkpoint.mrl.byte_size(config)
        covered += checkpoint.fll.interval_length
        window_start_ts = checkpoint.fll.header.timestamp
        if covered >= window:
            break
    for tid in report.thread_ids:
        if tid == fault_tid:
            continue
        for checkpoint in report.checkpoints.get(tid, []):
            if window_start_ts is None or (
                checkpoint.fll.header.timestamp >= window_start_ts
            ):
                total += checkpoint.fll.byte_size(config)
                if include_races:
                    total += checkpoint.mrl.byte_size(config)
    return total
