"""Static analysis over assembled BN32 binaries.

The replayer already holds the exact binaries that ran at record time;
this package analyzes them without running them: CFG construction and
dominators (:mod:`cfg`), a generic dataflow solver with reaching
definitions, liveness and two-mode constant propagation
(:mod:`dataflow`), lockset-based race candidates that prune dynamic
race inference (:mod:`lockset`), a static backward slicer
(:mod:`slice`), and the ``bugnet lint`` checkers (:mod:`lint`).
"""

from repro.analysis.static.cfg import (
    CFG,
    BasicBlock,
    analysis_roots,
    instruction_defs,
    instruction_uses,
    taken_code_symbols,
)
from repro.analysis.static.dataflow import (
    PRECISE,
    SOUND,
    ConstState,
    Dataflow,
    ReachingDefinitions,
    constant_states,
    join_value,
    liveness,
    region_of,
)
from repro.analysis.static.lint import ALL_CHECKS, Finding, lint_program
from repro.analysis.static.lockset import (
    LocksetResult,
    MemAccess,
    RaceCandidates,
    cached_race_candidates,
    lockset_analysis,
    may_alias,
    race_candidates,
)
from repro.analysis.static.slice import StaticSlice, backward_slice

__all__ = [
    "ALL_CHECKS",
    "BasicBlock",
    "CFG",
    "ConstState",
    "Dataflow",
    "Finding",
    "LocksetResult",
    "MemAccess",
    "PRECISE",
    "RaceCandidates",
    "ReachingDefinitions",
    "SOUND",
    "StaticSlice",
    "analysis_roots",
    "backward_slice",
    "cached_race_candidates",
    "constant_states",
    "instruction_defs",
    "instruction_uses",
    "join_value",
    "lint_program",
    "liveness",
    "lockset_analysis",
    "may_alias",
    "race_candidates",
    "region_of",
    "taken_code_symbols",
]
