"""Control-flow graphs over assembled BN32 programs.

The static layer analyzes exactly what the replayer executes: the
assembled instruction store of a :class:`~repro.arch.program.Program`.
Basic blocks are maximal straight-line runs; block leaders are the
entry index, every symbol, every branch/jump target, and the successor
of every control transfer.

Interprocedural approximation: ``jal`` edges go both to the callee and
to the fall-through (the "call returns" assumption), ``jalr`` keeps
only the fall-through, and ``jr`` ends the path (it is almost always a
return, and the matching call already has a fall-through edge).
Indirect-call targets are approximated by rooting every address-taken
code symbol (see :func:`taken_code_symbols`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.arch.isa import (
    BRANCH_OPS,
    CODE_BASE,
    DATA_BASE,
    INSTRUCTION_BYTES,
    Instruction,
    J_OPS,
    JR_OPS,
    index_to_pc,
    pc_to_index,
)
from repro.arch.program import Program

# Instructions that end a basic block.
_TERMINATORS = BRANCH_OPS | J_OPS | JR_OPS


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line instruction run ``[start, end)``."""

    bid: int
    start: int  # first instruction index
    end: int  # one past the last instruction index
    successors: tuple[int, ...]
    predecessors: tuple[int, ...]

    @property
    def pc(self) -> int:
        """Address of the block leader."""
        return index_to_pc(self.start)

    @property
    def indices(self) -> range:
        """Instruction indices covered by the block."""
        return range(self.start, self.end)


def instruction_defs(ins: Instruction) -> frozenset[int]:
    """Registers written by *ins* (writes to r0 are discarded).

    ``syscall`` is approximated as defining ``v0``: the kernel writes it
    for READ_INPUT/SBRK/CURRENT_TID and preserves it otherwise.
    """
    op = ins.op
    if op in BRANCH_OPS or op in ("j", "jr", "sw", "nop", "break"):
        return frozenset()
    if op == "jal":
        return frozenset({31})
    if op == "syscall":
        return frozenset({2})
    # R/I/U ALU ops, lw and jalr all write rd.
    return frozenset({ins.rd}) - {0}


def instruction_uses(ins: Instruction) -> frozenset[int]:
    """Registers read by *ins* (``syscall`` reads v0/a0/a1)."""
    op = ins.op
    if op in BRANCH_OPS:
        return frozenset({ins.rs, ins.rt})
    if op == "sw":
        return frozenset({ins.rs, ins.rt})
    if op in ("jr", "jalr"):
        return frozenset({ins.rs})
    if op == "syscall":
        return frozenset({2, 4, 5})
    if op in ("j", "jal", "lui", "nop", "break"):
        return frozenset()
    if op == "lw":
        return frozenset({ins.rs})
    from repro.arch.isa import R_OPS

    if op in R_OPS:
        return frozenset({ins.rs, ins.rt})
    return frozenset({ins.rs})  # I_OPS


def _target_index(ins: Instruction, count: int) -> int | None:
    """Instruction index of an absolute branch/jump target, if in code."""
    index = pc_to_index(ins.imm)
    return index if 0 <= index < count else None


def _successor_indices(ins: Instruction, index: int, count: int) -> list[int]:
    op = ins.op
    after = [index + 1] if index + 1 < count else []
    if op in BRANCH_OPS:
        target = _target_index(ins, count)
        out = list(after)
        if target is not None and target not in out:
            out.append(target)
        return out
    if op == "j":
        target = _target_index(ins, count)
        return [target] if target is not None else []
    if op == "jal":
        target = _target_index(ins, count)
        out = list(after)
        if target is not None and target not in out:
            out.append(target)
        return out
    if op == "jr":
        return []
    if op == "jalr":
        return after
    return after


class CFG:
    """Basic blocks, edges and dominator machinery for one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        instructions = program.instructions
        count = len(instructions)
        leaders = {0} if count else set()
        for name, addr in program.symbols.items():
            index = pc_to_index(addr)
            if 0 <= index < count:
                leaders.add(index)
        for index, ins in enumerate(instructions):
            if ins.op in _TERMINATORS:
                if index + 1 < count:
                    leaders.add(index + 1)
                if ins.op in BRANCH_OPS or ins.op in ("j", "jal"):
                    target = _target_index(ins, count)
                    if target is not None:
                        leaders.add(target)
        starts = sorted(leaders)
        bounds = starts + [count]
        block_of: list[int] = [0] * count
        spans: list[tuple[int, int]] = []
        for bid, start in enumerate(starts):
            end = bounds[bid + 1]
            spans.append((start, end))
            for index in range(start, end):
                block_of[index] = bid
        succ_sets: list[list[int]] = [[] for _ in spans]
        pred_sets: list[list[int]] = [[] for _ in spans]
        for bid, (start, end) in enumerate(spans):
            if end == start:
                continue
            last = instructions[end - 1]
            for index in _successor_indices(last, end - 1, count):
                succ = block_of[index]
                if succ not in succ_sets[bid]:
                    succ_sets[bid].append(succ)
        for bid, succs in enumerate(succ_sets):
            for succ in succs:
                pred_sets[succ].append(bid)
        self.blocks: list[BasicBlock] = [
            BasicBlock(bid, start, end, tuple(succ_sets[bid]), tuple(pred_sets[bid]))
            for bid, (start, end) in enumerate(spans)
        ]
        self._block_of = block_of

    # -- lookups -----------------------------------------------------------

    def block_at(self, index: int) -> BasicBlock:
        """Block containing instruction *index*."""
        return self.blocks[self._block_of[index]]

    def block_at_pc(self, pc: int) -> BasicBlock:
        """Block containing code address *pc*."""
        return self.block_at(pc_to_index(pc))

    def leaders(self) -> frozenset[int]:
        """Instruction indices that start a basic block."""
        return frozenset(block.start for block in self.blocks)

    def instructions(self, block: BasicBlock) -> Iterator[tuple[int, Instruction]]:
        """(index, instruction) pairs of *block*."""
        for index in block.indices:
            yield index, self.program.instructions[index]

    # -- reachability ------------------------------------------------------

    def reachable(self, roots: Iterable[int]) -> frozenset[int]:
        """Block ids reachable from the given instruction indices."""
        count = len(self.program.instructions)
        work = [self._block_of[i] for i in roots if 0 <= i < count]
        seen: set[int] = set()
        while work:
            bid = work.pop()
            if bid in seen:
                continue
            seen.add(bid)
            work.extend(self.blocks[bid].successors)
        return frozenset(seen)

    # -- dominators --------------------------------------------------------

    def dominators(self, roots: Iterable[int]) -> dict[int, int | None]:
        """Immediate dominators of blocks reachable from *roots*.

        *roots* are instruction indices; a root block's idom is ``None``
        (a virtual super-root joins multiple entries).
        """
        root_bids = sorted(
            {self._block_of[i] for i in roots if 0 <= i < len(self._block_of)}
        )
        succs = {b.bid: b.successors for b in self.blocks}
        return _immediate_dominators(len(self.blocks), succs, root_bids)

    def postdominators(self) -> dict[int, int | None]:
        """Immediate postdominators (``None`` for exit blocks).

        Blocks with no path to an exit (infinite loops) are absent;
        clients must treat them conservatively.
        """
        preds = {b.bid: b.predecessors for b in self.blocks}
        exits = sorted(b.bid for b in self.blocks if not b.successors)
        return _immediate_dominators(len(self.blocks), preds, exits)


def _immediate_dominators(
    count: int,
    succs: dict[int, tuple[int, ...]],
    roots: list[int],
) -> dict[int, int | None]:
    """Cooper-Harvey-Kennedy iteration with a virtual super-root."""
    if not roots:
        return {}
    virtual = count
    graph = dict(succs)
    graph[virtual] = tuple(roots)
    order: list[int] = []
    seen = {virtual}
    stack: list[tuple[int, int]] = [(virtual, 0)]
    while stack:  # iterative DFS, postorder
        node, child = stack[-1]
        targets = graph.get(node, ())
        if child < len(targets):
            stack[-1] = (node, child + 1)
            nxt = targets[child]
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, 0))
        else:
            order.append(node)
            stack.pop()
    rpo = list(reversed(order))
    position = {bid: i for i, bid in enumerate(rpo)}
    preds: dict[int, list[int]] = {bid: [] for bid in rpo}
    for node in rpo:
        for succ in graph.get(node, ()):
            if succ in position:
                preds[succ].append(node)
    idom: dict[int, int] = {virtual: virtual}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]
            while position[b] > position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == virtual:
                continue
            candidates = [p for p in preds[node] if p in idom]
            if not candidates:
                continue
            new = candidates[0]
            for other in candidates[1:]:
                new = intersect(new, other)
            if idom.get(node) != new:
                idom[node] = new
                changed = True
    return {
        node: (None if parent == virtual else parent)
        for node, parent in idom.items()
        if node != virtual
    }


def taken_code_symbols(program: Program) -> frozenset[int]:
    """Instruction indices of code symbols whose address is materialized.

    A ``la``/``li`` of a code-symbol address (after assembly: a
    ``lui``+``ori`` pair or a single immediate op with ``rs == r0``)
    marks the symbol as a potential indirect-jump target; analyses root
    those blocks with an unknown register state.
    """
    code_addrs = {
        addr
        for addr in program.symbols.values()
        if CODE_BASE <= addr < DATA_BASE
    }
    if not code_addrs:
        return frozenset()
    taken: set[int] = set()
    upper: dict[int, int] = {}  # rd -> value from a preceding lui
    for ins in program.instructions:
        candidates: list[int] = []
        if ins.op == "lui":
            value = (ins.imm << 16) & 0xFFFFFFFF
            upper[ins.rd] = value
            candidates.append(value)
        elif ins.op in ("ori", "addi") and ins.rs == 0:
            candidates.append(ins.imm & 0xFFFFFFFF)
        elif ins.op == "ori" and ins.rs in upper and ins.rs == ins.rd:
            candidates.append((upper[ins.rs] | (ins.imm & 0xFFFF)) & 0xFFFFFFFF)
        else:
            upper.pop(ins.rd, None)
        if ins.op != "lui":
            upper.pop(ins.rd, None)
        for value in candidates:
            if value in code_addrs:
                index = pc_to_index(value)
                if 0 <= index < len(program.instructions):
                    taken.add(index)
    return frozenset(taken)


def analysis_roots(program: Program, entries: Iterable[str] | None = None) -> frozenset[int]:
    """Instruction indices analyses start from.

    The program entry, every declared thread entry (``entries`` by
    symbol name, or a ``thread_entries`` attribute stamped on the
    program by the workload layer), and every address-taken code symbol.
    """
    count = len(program.instructions)
    roots: set[int] = set()
    entry = pc_to_index(program.entry_pc)
    if 0 <= entry < count:
        roots.add(entry)
    names = entries if entries is not None else getattr(program, "thread_entries", ())
    for name in names:
        addr = program.symbols.get(name)
        if addr is not None:
            index = pc_to_index(addr)
            if 0 <= index < count:
                roots.add(index)
    roots.update(taken_code_symbols(program))
    return frozenset(roots)


def entry_root_map(
    program: Program, entries: Iterable[str] | None = None
) -> dict[str, int]:
    """Map entry name -> instruction index for declared thread entries.

    Always includes the program entry under its symbol name (or
    ``"main"`` when anonymous).
    """
    count = len(program.instructions)
    result: dict[str, int] = {}
    entry = pc_to_index(program.entry_pc)
    if 0 <= entry < count:
        entry_name = "main"
        for name, addr in program.symbols.items():
            if addr == program.entry_pc:
                entry_name = name
                break
        result[entry_name] = entry
    names = entries if entries is not None else getattr(program, "thread_entries", ())
    for name in names:
        addr = program.symbols.get(name)
        if addr is not None:
            index = pc_to_index(addr)
            if 0 <= index < count:
                result[name] = index
    return result
