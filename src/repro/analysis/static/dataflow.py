"""Dataflow analyses over BN32 control-flow graphs.

A small generic worklist solver (:class:`Dataflow`) instantiated three
ways: reaching definitions, liveness, and sparse constant propagation
over an abstract value domain of exact constants, memory-region tags
and unknown.

Constant propagation runs in one of two modes:

* ``SOUND`` — facts must hold under **every** thread interleaving; this
  mode feeds race-candidate pruning.  Loads produce unknown, ``sbrk``
  produces a heap tag, and memory is never tracked, so every constant
  derives from a register-immediate chain and is interleaving
  independent.  The one approximation is that region tags survive
  pointer arithmetic (``region + unknown offset`` stays in the region),
  i.e. computed pointers are assumed not to overflow their segment.
* ``PRECISE`` — a lint-oriented mode that additionally tracks memory
  cells at constant addresses (initialized from the program's data
  segment), models ``sbrk`` as a bump allocator, and folds constant
  branches.  Its facts describe the interleaving in which the analyzed
  thread runs first; findings derived from them are "possible under
  some schedule", which is the right bar for lint.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.analysis.static.cfg import (
    CFG,
    BasicBlock,
    analysis_roots,
    entry_root_map,
    instruction_defs,
    instruction_uses,
    taken_code_symbols,
)
from repro.arch.isa import (
    BRANCH_OPS,
    CODE_BASE,
    DATA_BASE,
    HEAP_BASE,
    MMIO_BASE,
    Instruction,
    Syscall,
    pc_to_index,
)
from repro.arch.memory import PAGE_SIZE
from repro.arch.program import Program

MASK = 0xFFFFFFFF

# Coarse segment map for region tags.  Stacks live just under
# STACK_TOP; sbrk grows the heap up from HEAP_BASE.  The boundary is
# far from both.
STACK_REGION_BASE = 0x4000_0000

REGION_CODE = "code"
REGION_DATA = "data"
REGION_HEAP = "heap"
REGION_STACK = "stack"
REGION_MMIO = "mmio"

SOUND = "sound"
PRECISE = "precise"

# Abstract values are ``int | str | None``: an exact constant, a
# region tag, or unknown.


def region_of(addr: int) -> str | None:
    """Region tag containing *addr*, or ``None`` for unmapped gaps."""
    addr &= MASK
    if addr < CODE_BASE:
        return None  # null page and the low wild gap
    if addr < DATA_BASE:
        return REGION_CODE
    if addr < HEAP_BASE:
        return REGION_DATA
    if addr < STACK_REGION_BASE:
        return REGION_HEAP
    if addr < MMIO_BASE:
        return REGION_STACK
    return REGION_MMIO


def value_region(value: "int | str | None") -> str | None:
    """Region tag of an abstract value (``None`` if unknown)."""
    if isinstance(value, int):
        return region_of(value)
    return value


def join_value(a: "int | str | None", b: "int | str | None") -> "int | str | None":
    """Least upper bound: const -> region -> unknown."""
    if a == b:
        return a
    ra, rb = value_region(a), value_region(b)
    if ra is not None and ra == rb:
        return ra
    return None


def _signed(x: int) -> int:
    return x - 0x1_0000_0000 if x & 0x8000_0000 else x


_FOLD: dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: (a + b) & MASK,
    "addi": lambda a, b: (a + b) & MASK,
    "sub": lambda a, b: (a - b) & MASK,
    "mul": lambda a, b: (a * b) & MASK,
    "and": lambda a, b: a & b & MASK,
    "andi": lambda a, b: a & b & MASK,
    "or": lambda a, b: (a | b) & MASK,
    "ori": lambda a, b: (a | b) & MASK,
    "xor": lambda a, b: (a ^ b) & MASK,
    "xori": lambda a, b: (a ^ b) & MASK,
    "nor": lambda a, b: ~(a | b) & MASK,
    "slt": lambda a, b: int(_signed(a) < _signed(b)),
    "slti": lambda a, b: int(_signed(a) < _signed(b)),
    "sltu": lambda a, b: int((a & MASK) < (b & MASK)),
    "sltiu": lambda a, b: int((a & MASK) < (b & MASK)),
    "sll": lambda a, b: (a << (b & 31)) & MASK,
    "srl": lambda a, b: (a & MASK) >> (b & 31),
    "sra": lambda a, b: (_signed(a) >> (b & 31)) & MASK,
}

# Ops where region +/- constant stays in the region (bounded-offset
# pointer arithmetic).
_REGION_PRESERVING = {"add", "addi", "sub"}

_BRANCH_COND: dict[str, Callable[[int, int], bool]] = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _signed(a) < _signed(b),
    "bge": lambda a, b: _signed(a) >= _signed(b),
    "bltu": lambda a, b: (a & MASK) < (b & MASK),
    "bgeu": lambda a, b: (a & MASK) >= (b & MASK),
}


def _page_ceil(addr: int) -> int:
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


class ConstState:
    """Abstract machine state at one program point."""

    __slots__ = ("regs", "mem", "havocked", "brk")

    def __init__(
        self,
        regs: "list[int | str | None]",
        mem: "dict[int, int | str | None] | None" = None,
        havocked: frozenset[str] = frozenset(),
        brk: int | None = None,
    ) -> None:
        self.regs = regs
        self.mem = mem if mem is not None else {}
        self.havocked = havocked
        self.brk = brk

    def copy(self) -> "ConstState":
        return ConstState(list(self.regs), dict(self.mem), self.havocked, self.brk)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstState):
            return NotImplemented
        return (
            self.regs == other.regs
            and self.mem == other.mem
            and self.havocked == other.havocked
            and self.brk == other.brk
        )

    def __hash__(self) -> int:  # pragma: no cover - states are not hashed
        return id(self)

    def reg(self, number: int) -> "int | str | None":
        return 0 if number == 0 else self.regs[number]

    def set_reg(self, number: int, value: "int | str | None") -> None:
        if number != 0:
            self.regs[number] = value

    # -- abstract memory ---------------------------------------------------

    def load_word(self, addr: int, program: Program) -> "int | str | None":
        """Abstract contents of the word at constant address *addr*."""
        addr &= MASK
        if addr in self.mem:
            return self.mem[addr]
        if "all" in self.havocked:
            return None
        region = region_of(addr)
        if region in self.havocked:
            return None
        if region == REGION_DATA and addr < _page_ceil(program.data_limit):
            return program.data_words.get(addr, 0)
        if region == REGION_HEAP and self.brk is not None and addr + 4 <= self.brk:
            return 0  # heap pages are zero until written
        return None

    def store_word(self, addr: int, value: "int | str | None") -> None:
        self.mem[addr & MASK] = value

    def havoc(self, region: str | None) -> None:
        """Forget memory facts for *region* (``None`` -> everything)."""
        if region is None:
            self.mem = {}
            self.havocked = frozenset({"all"})
            self.brk = None
            return
        self.mem = {k: v for k, v in self.mem.items() if region_of(k) != region}
        self.havocked = self.havocked | {region}


def join_states(a: ConstState, b: ConstState, program: Program) -> ConstState:
    """Pointwise join of two states."""
    regs = [join_value(x, y) for x, y in zip(a.regs, b.regs)]
    keys = set(a.mem) | set(b.mem)
    mem = {
        key: join_value(a.load_word(key, program), b.load_word(key, program))
        for key in keys
    }
    return ConstState(
        regs,
        mem,
        a.havocked | b.havocked,
        a.brk if a.brk == b.brk else None,
    )


def _eval_mem_addr(state: ConstState, ins: Instruction) -> "int | str | None":
    """Abstract address of a lw/sw access."""
    base = state.reg(ins.rs)
    if isinstance(base, int):
        return (base + ins.imm) & MASK
    return base  # region tag or unknown survives a constant offset


def step_instruction(
    state: ConstState,
    ins: Instruction,
    program: Program,
    mode: str,
) -> ConstState | None:
    """Transfer one instruction; ``None`` means the path cannot continue."""
    op = ins.op
    if op in _FOLD:
        a = state.reg(ins.rs)
        b: "int | str | None"
        if op in ("sll", "srl", "sra") or op in (
            "addi", "andi", "ori", "xori", "slti", "sltiu",
        ):
            b = ins.imm
        else:
            b = state.reg(ins.rt)
        if isinstance(a, int) and isinstance(b, int):
            state.set_reg(ins.rd, _FOLD[op](a, b))
        elif op in _REGION_PRESERVING:
            # Bounded-offset pointer arithmetic: a region base keeps its
            # tag; constants only act as bases for plain ``add``.
            ra, rb = value_region(a), value_region(b)
            if ra is not None:
                state.set_reg(ins.rd, ra)
            elif op == "add" and rb is not None:
                state.set_reg(ins.rd, rb)
            else:
                state.set_reg(ins.rd, None)
        else:
            state.set_reg(ins.rd, None)
        return state
    if op == "lui":
        state.set_reg(ins.rd, (ins.imm << 16) & MASK)
        return state
    if op in ("div", "divu", "rem", "remu", "sllv", "srlv", "srav"):
        state.set_reg(ins.rd, None)
        return state
    if op == "lw":
        addr = _eval_mem_addr(state, ins)
        if mode == PRECISE and isinstance(addr, int):
            state.set_reg(ins.rd, state.load_word(addr, program))
        else:
            state.set_reg(ins.rd, None)
        return state
    if op == "sw":
        if mode == PRECISE:
            addr = _eval_mem_addr(state, ins)
            if isinstance(addr, int):
                state.store_word(addr, state.reg(ins.rt))
            else:
                state.havoc(addr)  # region tag or None (everything)
        return state
    if op == "syscall":
        return _step_syscall(state, mode)
    if op == "jal":
        state.set_reg(31, REGION_CODE)  # ra <- pc + 4
        return state
    if op == "jalr":
        state.set_reg(ins.rd, None)
        return state
    # j, jr, branches, nop, break: no register effects.
    return state


def _step_syscall(state: ConstState, mode: str) -> ConstState | None:
    number = state.reg(2)
    if number == Syscall.EXIT:
        return None
    if number == Syscall.SBRK:
        increment = state.reg(4)
        if mode == PRECISE and state.brk is not None and isinstance(increment, int):
            state.set_reg(2, state.brk)
            state.brk = (state.brk + max(_signed(increment), 0)) & MASK
        else:
            state.set_reg(2, REGION_HEAP)
            state.brk = None
        return state
    if number == Syscall.READ_INPUT:
        if mode == PRECISE:
            buffer = state.reg(4)
            state.havoc(value_region(buffer) if buffer is not None else None)
        state.set_reg(2, None)
        return state
    if number == Syscall.CURRENT_TID:
        state.set_reg(2, None)
        return state
    if isinstance(number, int):
        return state  # kernel preserves registers for the other services
    # Unknown syscall number: could have been any service.
    state.set_reg(2, None)
    if mode == PRECISE:
        state.havoc(None)
    return state


class ConstpropResult:
    """Fixpoint of constant propagation: an in-state per basic block."""

    def __init__(
        self,
        cfg: CFG,
        block_in: dict[int, ConstState],
        mode: str,
        roots: frozenset[int],
    ) -> None:
        self.cfg = cfg
        self.block_in = block_in
        self.mode = mode
        self.roots = roots

    def reachable_blocks(self) -> frozenset[int]:
        """Blocks the fixpoint reached (respects folded branches)."""
        return frozenset(self.block_in)

    def walk(self, block: BasicBlock) -> Iterator[tuple[int, Instruction, ConstState]]:
        """Yield (index, instruction, state-before) through *block*."""
        state = self.block_in.get(block.bid)
        if state is None:
            return
        state = state.copy()
        for index, ins in self.cfg.instructions(block):
            yield index, ins, state.copy()
            nxt = step_instruction(state, ins, self.cfg.program, self.mode)
            if nxt is None:
                return
            state = nxt

    def state_before(self, index: int) -> ConstState | None:
        """State immediately before instruction *index* (None if unreached)."""
        block = self.cfg.block_at(index)
        for at, _ins, state in self.walk(block):
            if at == index:
                return state
        return None


def initial_state(program: Program, kind: str, mode: str) -> ConstState:
    """Entry state for an analysis root.

    *kind* is ``"main"`` (the program entry: registers zeroed by spawn,
    a0 carries tid 0), ``"entry"`` (a declared thread entry: registers
    zeroed, a0 is the unknown tid) or ``"taken"`` (an address-taken
    symbol: nothing known).
    """
    if kind == "taken":
        regs: "list[int | str | None]" = [None] * 32
    else:
        regs = [0] * 32
        regs[4] = 0 if (kind == "main" and mode == PRECISE) else None
        regs[5] = regs[6] = regs[7] = None  # spawn may pass arguments
    regs[0] = 0
    if kind != "taken":
        regs[29] = REGION_STACK  # spawn points sp into the thread's stack
    if mode == SOUND:
        return ConstState(regs, {}, frozenset({"all"}), None)
    return ConstState(regs, {}, frozenset(), HEAP_BASE)


def constant_states(
    program: Program,
    entries: Iterable[str] | None = None,
    mode: str = SOUND,
    cfg: CFG | None = None,
) -> ConstpropResult:
    """Run constant propagation from every analysis root."""
    cfg = cfg or CFG(program)
    if not program.instructions:
        return ConstpropResult(cfg, {}, mode, frozenset())
    root_map = entry_root_map(program, entries)
    main_index = pc_to_index(program.entry_pc)
    seeds: dict[int, ConstState] = {}
    declared = set()
    for _name, index in root_map.items():
        declared.add(index)
        kind = "main" if index == main_index else "entry"
        seeds[index] = initial_state(program, kind, mode)
    for index in taken_code_symbols(program):
        if index not in declared:
            seeds[index] = initial_state(program, "taken", mode)
    block_in: dict[int, ConstState] = {}
    work: list[int] = []
    for index, state in seeds.items():
        bid = cfg.block_at(index).bid
        if cfg.blocks[bid].start != index:
            # Roots always start a block (symbols are leaders); entry 0 too.
            continue
        if bid in block_in:
            block_in[bid] = join_states(block_in[bid], state, program)
        else:
            block_in[bid] = state
        work.append(bid)
    while work:
        bid = work.pop()
        block = cfg.blocks[bid]
        state = block_in[bid].copy()
        dead = False
        for _index, ins in cfg.instructions(block):
            nxt = step_instruction(state, ins, program, mode)
            if nxt is None:
                dead = True
                break
            state = nxt
        if dead:
            continue
        live = _live_successors(cfg, block, state, mode)
        for succ in live:
            if succ in block_in:
                joined = join_states(block_in[succ], state, program)
                if joined == block_in[succ]:
                    continue
                block_in[succ] = joined
            else:
                block_in[succ] = state.copy()
            work.append(succ)
    return ConstpropResult(cfg, block_in, mode, frozenset(seeds))


def _live_successors(
    cfg: CFG, block: BasicBlock, out_state: ConstState, mode: str
) -> tuple[int, ...]:
    """Successors still feasible given the out-state (folds branches)."""
    if block.end == block.start:
        return block.successors
    last = cfg.program.instructions[block.end - 1]
    if last.op not in BRANCH_OPS or len(block.successors) < 2:
        return block.successors
    a, b = out_state.reg(last.rs), out_state.reg(last.rt)
    if not (isinstance(a, int) and isinstance(b, int)):
        return block.successors
    taken = _BRANCH_COND[last.op](a, b)
    count = len(cfg.program.instructions)
    target_index = pc_to_index(last.imm)
    if not 0 <= target_index < count:
        return block.successors
    target_bid = cfg.block_at(target_index).bid
    if taken:
        return (target_bid,)
    return tuple(s for s in block.successors if s != target_bid) or block.successors


# -- generic set-based dataflow -------------------------------------------


class Dataflow:
    """Generic worklist solver over basic blocks.

    *transfer* maps (block, in-state) to an out-state; *join* combines
    states at merge points; *boundary* seeds root blocks (entry blocks
    for forward problems, exit blocks for backward ones); *top* seeds
    everything else.
    """

    def __init__(
        self,
        cfg: CFG,
        direction: str,
        boundary: object,
        top: object,
        transfer: Callable[[BasicBlock, object], object],
        join: Callable[[object, object], object],
        roots: Iterable[int] = (),
    ) -> None:
        if direction not in ("forward", "backward"):
            raise ValueError(f"unknown direction {direction!r}")
        self.cfg = cfg
        self.direction = direction
        self.boundary = boundary
        self.top = top
        self.transfer = transfer
        self.join = join
        self.roots = frozenset(roots)

    def solve(self) -> tuple[dict[int, object], dict[int, object]]:
        """Return (in-state, out-state) maps keyed by block id."""
        forward = self.direction == "forward"
        blocks = self.cfg.blocks
        if forward:
            sources = {b.bid: b.predecessors for b in blocks}
            root_bids = {self.cfg.block_at(i).bid for i in self.roots}
        else:
            sources = {b.bid: b.successors for b in blocks}
            root_bids = {b.bid for b in blocks if not b.successors}
        state_in: dict[int, object] = {b.bid: self.top for b in blocks}
        state_out: dict[int, object] = {}
        work = [b.bid for b in blocks]
        while work:
            bid = work.pop()
            block = blocks[bid]
            incoming = self.boundary if bid in root_bids else self.top
            for src in sources[bid]:
                if src in state_out:
                    incoming = self.join(incoming, state_out[src])
            state_in[bid] = incoming
            result = self.transfer(block, incoming)
            if bid not in state_out or state_out[bid] != result:
                state_out[bid] = result
                targets = block.successors if forward else block.predecessors
                work.extend(targets)
        if forward:
            return state_in, state_out
        # For backward problems "in" conventionally means the state at
        # block entry, which is the transfer result.
        return state_out, state_in


# -- reaching definitions --------------------------------------------------

ENTRY_DEF = -1  # pseudo definition site: value live-in at a root


class ReachingDefinitions:
    """Which definition sites reach each program point, per register."""

    def __init__(self, cfg: CFG, roots: Iterable[int]) -> None:
        self.cfg = cfg
        program = cfg.program
        empty: tuple[frozenset[int], ...] = tuple(frozenset() for _ in range(32))
        boundary = tuple(frozenset({ENTRY_DEF}) for _ in range(32))

        def transfer(block: BasicBlock, state: object) -> object:
            defs = list(state)  # type: ignore[call-overload]
            for index in block.indices:
                for reg in instruction_defs(program.instructions[index]):
                    defs[reg] = frozenset({index})
            return tuple(defs)

        def join(a: object, b: object) -> object:
            return tuple(x | y for x, y in zip(a, b))  # type: ignore[arg-type]

        solver = Dataflow(
            cfg, "forward", boundary, empty, transfer, join, roots=roots
        )
        block_in, _block_out = solver.solve()
        self.block_in: dict[int, tuple[frozenset[int], ...]] = block_in  # type: ignore[assignment]

    def at_instruction(self, index: int) -> tuple[frozenset[int], ...]:
        """Reaching definitions immediately before instruction *index*."""
        block = self.cfg.block_at(index)
        defs = list(self.block_in[block.bid])
        program = self.cfg.program
        for at in range(block.start, index):
            for reg in instruction_defs(program.instructions[at]):
                defs[reg] = frozenset({at})
        return tuple(defs)


def liveness(cfg: CFG) -> tuple[dict[int, frozenset[int]], dict[int, frozenset[int]]]:
    """Live registers at block entry and exit, keyed by block id."""
    program = cfg.program

    def transfer(block: BasicBlock, live_out: object) -> object:
        live = set(live_out)  # type: ignore[arg-type]
        for index in reversed(block.indices):
            ins = program.instructions[index]
            live -= instruction_defs(ins)
            live |= instruction_uses(ins)
        return frozenset(live)

    solver = Dataflow(
        cfg,
        "backward",
        frozenset(),
        frozenset(),
        transfer,
        lambda a, b: a | b,  # type: ignore[operator]
    )
    live_in, live_out = solver.solve()
    return live_in, live_out  # type: ignore[return-value]
