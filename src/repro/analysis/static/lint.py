"""Static lint over assembled BN32 programs.

Checkers (the ``check`` field of every finding):

========================  ==================================================
``uninit-read``           register read on a path where nothing defined it
``unreachable-block``     basic block no analysis root can reach
``lock-imbalance``        relock, unlock-without-lock, or lock held at exit
``null-deref``            load/store/jump through a constant page-zero addr
``misaligned-access``     constant access address not word aligned
``wild-address``          constant access into statically unmapped memory
``store-to-code``         store targeting the code segment
``race-candidate``        cross-thread conflicting accesses to one constant
                          address with no common lock
========================  ==================================================

Address checkers run on the PRECISE constant propagation, whose facts
describe the schedule where the analyzed thread runs first — findings
are "a fault is possible under some schedule", which is exactly what a
seeded bug is.  Zero findings on the clean workload corpus is pinned
by tests and CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.static.cfg import (
    CFG,
    analysis_roots,
    entry_root_map,
    instruction_defs,
    instruction_uses,
    taken_code_symbols,
)
from repro.analysis.static.dataflow import (
    PRECISE,
    REGION_CODE,
    REGION_DATA,
    _live_successors,
    _page_ceil,
    constant_states,
    region_of,
    step_instruction,
)
from repro.analysis.static.lockset import (
    UNKNOWN_LOCK,
    lockset_analysis,
    race_candidates,
)
from repro.arch.isa import CODE_BASE, Instruction, index_to_pc, pc_to_index
from repro.arch.memory import PAGE_SIZE
from repro.arch.program import Program
from repro.arch.registers import reg_name

ALL_CHECKS = (
    "uninit-read",
    "unreachable-block",
    "lock-imbalance",
    "null-deref",
    "misaligned-access",
    "wild-address",
    "store-to-code",
    "race-candidate",
)


@dataclass(frozen=True)
class Finding:
    """One lint diagnosis, anchored to a code address."""

    check: str
    pc: int
    line: int
    message: str
    program: str = ""

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "pc": self.pc,
            "line": self.line,
            "message": self.message,
            "program": self.program,
        }

    def render(self) -> str:
        where = f"{self.pc:#010x}"
        if self.line:
            where += f" (line {self.line})"
        return f"{where}: {self.check}: {self.message}"


def lint_program(
    program: Program, entries: Iterable[str] | None = None
) -> list[Finding]:
    """Run every checker over *program* and return sorted findings."""
    if not program.instructions:
        return []
    cfg = CFG(program)
    roots = analysis_roots(program, entries)
    findings: list[Finding] = []
    findings += _check_unreachable(program, cfg, roots)
    findings += _check_uninit(program, cfg, roots, entries)
    consts = constant_states(program, entries, mode=PRECISE, cfg=cfg)
    findings += _check_addresses(program, consts)
    lockset = lockset_analysis(program, entries)
    findings += _check_locks(program, lockset)
    findings += _check_races(program, cfg, entries, lockset, consts)
    named = [
        Finding(f.check, f.pc, f.line, f.message, program.name)
        for f in findings
    ]
    return sorted(named, key=lambda f: (f.pc, f.check, f.message))


def lint_corpus(
    programs: "Iterable[tuple[Program, Iterable[str] | None]]",
) -> list[Finding]:
    """Lint a sequence of (program, entries) pairs."""
    out: list[Finding] = []
    for program, entries in programs:
        out.extend(lint_program(program, entries))
    return out


# -- unreachable blocks ----------------------------------------------------


def _check_unreachable(
    program: Program, cfg: CFG, roots: frozenset[int]
) -> list[Finding]:
    reachable = cfg.reachable(roots)
    findings = []
    for block in cfg.blocks:
        if block.bid in reachable or block.end == block.start:
            continue
        leader = program.instructions[block.start]
        findings.append(Finding(
            check="unreachable-block",
            pc=index_to_pc(block.start),
            line=leader.line,
            message=(
                f"basic block of {block.end - block.start} instruction(s) "
                "is unreachable from every entry"
            ),
        ))
    return findings


# -- uninitialized register reads ------------------------------------------


def _check_uninit(
    program: Program,
    cfg: CFG,
    roots: frozenset[int],
    entries: Iterable[str] | None,
) -> list[Finding]:
    """Must-defined forward analysis; a read outside the set is a finding.

    Every register is architecturally zeroed at spawn, so "uninitialized"
    means "the program never wrote it on some path" — reading the
    implicit zero is almost always a bug.  ``jal`` fall-through edges
    are widened by the callee's may-defined summary so callee-produced
    return values do not trip the checker.
    """
    instructions = program.instructions
    declared = set(entry_root_map(program, entries).values())
    taken = taken_code_symbols(program)
    spawn_defined = frozenset({0, 4, 5, 6, 7, 29})  # zero, a0-a3, sp
    everything = frozenset(range(32))

    # May-defined summary of the code reachable from a block.
    summary_cache: dict[int, frozenset[int]] = {}

    def callee_summary(target_bid: int) -> frozenset[int]:
        if target_bid in summary_cache:
            return summary_cache[target_bid]
        seen: set[int] = set()
        work = [target_bid]
        defined: set[int] = set()
        while work:
            bid = work.pop()
            if bid in seen:
                continue
            seen.add(bid)
            block = cfg.blocks[bid]
            for index in block.indices:
                defined |= instruction_defs(instructions[index])
            work.extend(block.successors)
        result = frozenset(defined)
        summary_cache[target_bid] = result
        return result

    block_in: dict[int, frozenset[int]] = {}
    work: list[int] = []
    for index in roots:
        bid = cfg.block_at(index).bid
        seed = everything if (index in taken and index not in declared) else spawn_defined
        if bid in block_in:
            block_in[bid] = block_in[bid] & seed
        else:
            block_in[bid] = seed
        work.append(bid)
    while work:
        bid = work.pop()
        block = cfg.blocks[bid]
        defined = set(block_in[bid])
        for index in block.indices:
            defined |= instruction_defs(instructions[index])
        last = instructions[block.end - 1]
        for succ in block.successors:
            out = frozenset(defined)
            if last.op == "jal" and cfg.blocks[succ].start == block.end:
                # Fall-through edge: the callee may define more.
                target = pc_to_index(last.imm)
                if 0 <= target < len(instructions):
                    out = out | callee_summary(cfg.block_at(target).bid)
            if succ in block_in:
                joined = block_in[succ] & out
                if joined == block_in[succ]:
                    continue
                block_in[succ] = joined
            else:
                block_in[succ] = out
            work.append(succ)

    findings = []
    reported: set[tuple[int, int]] = set()
    for bid, incoming in block_in.items():
        block = cfg.blocks[bid]
        defined = set(incoming)
        for index in block.indices:
            ins = instructions[index]
            for reg in sorted(instruction_uses(ins)):
                if reg not in defined and (index, reg) not in reported:
                    reported.add((index, reg))
                    findings.append(Finding(
                        check="uninit-read",
                        pc=index_to_pc(index),
                        line=ins.line,
                        message=(
                            f"register {reg_name(reg)} is read but never "
                            "written on some path from the entry"
                        ),
                    ))
            defined |= instruction_defs(ins)
    return findings


# -- constant-address checks -----------------------------------------------


def _classify_address(
    program: Program, addr: int, is_store: bool
) -> tuple[str, str] | None:
    """(check, message) for a constant access address, or None if fine."""
    if addr % 4:
        return (
            "misaligned-access",
            f"address {addr:#x} is not word aligned",
        )
    if addr < PAGE_SIZE:
        return (
            "null-deref",
            f"{'store to' if is_store else 'load from'} "
            f"null-page address {addr:#x}",
        )
    region = region_of(addr)
    if region is None:
        return (
            "wild-address",
            f"address {addr:#x} lies in unmapped memory",
        )
    if region == REGION_CODE:
        if is_store:
            return (
                "store-to-code",
                f"store targets the code segment at {addr:#x}",
            )
        if addr < program.code_limit:
            return (
                "wild-address",
                f"load from the code segment at {addr:#x} "
                "(code is not data-addressable)",
            )
        return (
            "wild-address",
            f"address {addr:#x} lies in unmapped memory",
        )
    if region == REGION_DATA and addr >= _page_ceil(program.data_limit):
        return (
            "wild-address",
            f"address {addr:#x} is beyond the data segment "
            f"(ends at {program.data_limit:#x})",
        )
    return None


def _check_addresses(program: Program, consts) -> list[Finding]:
    findings = []
    seen: set[tuple[int, str]] = set()

    def report(index: int, ins: Instruction, check: str, message: str) -> None:
        if (index, check) in seen:
            return
        seen.add((index, check))
        findings.append(Finding(
            check=check, pc=index_to_pc(index), line=ins.line, message=message
        ))

    for block in consts.cfg.blocks:
        for index, ins, state in consts.walk(block):
            if ins.op in ("lw", "sw"):
                base = state.reg(ins.rs)
                if isinstance(base, int):
                    addr = (base + ins.imm) & 0xFFFFFFFF
                    verdict = _classify_address(program, addr, ins.op == "sw")
                    if verdict is not None:
                        report(index, ins, *verdict)
            elif ins.op in ("jr", "jalr"):
                target = state.reg(ins.rs)
                if isinstance(target, int):
                    if target < PAGE_SIZE:
                        report(
                            index, ins, "null-deref",
                            f"jump through null function pointer "
                            f"({target:#x})",
                        )
                    elif not CODE_BASE <= target < program.code_limit:
                        report(
                            index, ins, "wild-address",
                            f"jump target {target:#x} is outside the code "
                            "segment",
                        )
    return findings


# -- lock discipline -------------------------------------------------------


def _check_locks(program: Program, lockset) -> list[Finding]:
    findings = []
    for event in lockset.events:
        if event.action == "lock" and event.lock_id in event.must_before:
            findings.append(Finding(
                check="lock-imbalance",
                pc=event.pc,
                line=event.line,
                message=(
                    f"lock {event.lock_id:#x} is already held here; "
                    "relocking faults"
                ),
            ))
        if (
            event.action == "unlock"
            and event.lock_id != UNKNOWN_LOCK
            and event.lock_id not in event.may_before
            and UNKNOWN_LOCK not in event.may_before
        ):
            findings.append(Finding(
                check="lock-imbalance",
                pc=event.pc,
                line=event.line,
                message=(
                    f"lock {event.lock_id:#x} cannot be held here; "
                    "unlocking faults"
                ),
            ))
    for pc, line, held in lockset.exit_held:
        names = ", ".join(
            f"{lock:#x}" if isinstance(lock, int) else "?" for lock in sorted(
                held, key=str
            )
        )
        findings.append(Finding(
            check="lock-imbalance",
            pc=pc,
            line=line,
            message=f"lock(s) {names} may still be held at thread exit",
        ))
    return findings


# -- cross-thread race candidates ------------------------------------------


def _entry_reach(cfg: CFG, consts, root_index: int) -> frozenset[int]:
    """PCs reachable from one entry, stopping at constant-EXIT syscalls.

    The raw CFG keeps a fall-through edge after every syscall, so one
    thread's code would appear reachable from the entry that exits just
    above it; re-walking blocks with the constant propagation kills
    paths past a proven EXIT.
    """
    pcs: set[int] = set()
    seen: set[int] = set()
    work = [cfg.block_at(root_index).bid]
    while work:
        bid = work.pop()
        if bid in seen or bid not in consts.block_in:
            continue
        seen.add(bid)
        block = cfg.blocks[bid]
        rows = list(consts.walk(block))
        for index, _ins, _state in rows:
            pcs.add(index_to_pc(index))
        if len(rows) == block.end - block.start and rows:
            index, ins, state = rows[-1]
            out = step_instruction(state, ins, cfg.program, consts.mode)
            if out is not None:
                work.extend(_live_successors(cfg, block, out, consts.mode))
    return frozenset(pcs)


def _check_races(
    program: Program,
    cfg: CFG,
    entries: Iterable[str] | None,
    lockset,
    consts,
) -> list[Finding]:
    """Report candidate pairs on **constant** shared addresses.

    Only constant-address pairs whose PCs belong to different thread
    entries are reported: those are concrete enough to act on.  The
    full (conservative) candidate set still feeds race pruning.
    """
    root_map = entry_root_map(program, entries)
    if len(root_map) < 2:
        return []
    candidates = race_candidates(program, entries, lockset=lockset)
    reach = {
        name: _entry_reach(cfg, consts, index)
        for name, index in root_map.items()
    }

    def entries_of(pc: int) -> frozenset[str]:
        return frozenset(name for name, pcs in reach.items() if pc in pcs)

    findings = []
    for pc_a, pc_b in sorted(candidates.pairs):
        first = candidates.accesses.get(pc_a)
        second = candidates.accesses.get(pc_b)
        if first is None or second is None:
            continue
        if not (isinstance(first.addr, int) and isinstance(second.addr, int)):
            continue
        owners_a, owners_b = entries_of(pc_a), entries_of(pc_b)
        if owners_a and owners_b and len(owners_a | owners_b) > 1:
            store = first if first.kind == "store" else second
            other = second if store is first else first
            index = pc_to_index(store.pc)
            ins = program.instructions[index]
            findings.append(Finding(
                check="race-candidate",
                pc=store.pc,
                line=ins.line,
                message=(
                    f"{store.kind} at {store.pc:#x} races with "
                    f"{other.kind} at {other.pc:#x} on address "
                    f"{store.addr:#x} with no common lock"
                ),
            ))
    return findings
