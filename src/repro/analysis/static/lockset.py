"""Lockset analysis and static race candidates.

Classifies every load/store PC by the LOCK/UNLOCK syscall regions that
statically guard it (a must-held and a may-held lockset), then emits
the set of *race-candidate PC pairs*: cross-thread conflicting access
pairs that are neither guarded by a common lock nor provably
non-aliasing under the sound constant propagation.

Pruning contract with :func:`repro.replay.races.infer_races`: a pair
absent from the candidate set is either (a) non-aliasing — the two PCs
can never touch the same word, under any interleaving — or (b) guarded
by a common lock, in which case the kernel's sync edges order the two
accesses in every real execution.  Passing the candidates to
``infer_races`` therefore never drops a true race; on lock-free
programs (the entire bug suite) the pruned and unpruned results are
bit-identical even with an empty sync list, which the equivalence
tests pin.

Per-thread stacks never overlap (`loader.stack_top_for_thread`), and a
``stack`` region tag can only derive from the executing thread's own
``sp`` (registers are thread-private and loads produce unknown), so
stack-tagged pairs are non-aliasing **cross-thread** — the candidate
set is only meaningful for cross-thread queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.static.dataflow import (
    REGION_STACK,
    SOUND,
    ConstpropResult,
    constant_states,
    value_region,
)
from repro.arch.isa import Instruction, Syscall, index_to_pc
from repro.arch.program import Program

# Sentinel for a LOCK/UNLOCK whose lock id is not a static constant.
UNKNOWN_LOCK = "?"


@dataclass(frozen=True)
class MemAccess:
    """Static facts about one load/store site."""

    pc: int
    kind: str  # "load" | "store"
    addr: "int | str | None"  # abstract address value
    must_locks: frozenset[int]
    reachable: bool


@dataclass(frozen=True)
class LockEvent:
    """One LOCK/UNLOCK syscall site with the held-set before it."""

    pc: int
    line: int
    action: str  # "lock" | "unlock"
    lock_id: "int | str"  # UNKNOWN_LOCK when not constant
    must_before: frozenset[int]
    may_before: "frozenset[int | str]"


class LocksetResult:
    """Per-PC locksets plus the lock/unlock event list."""

    def __init__(
        self,
        accesses: dict[int, MemAccess],
        events: list[LockEvent],
        exit_held: list[tuple[int, int, "frozenset[int | str]"]],
    ) -> None:
        self.accesses = accesses  # keyed by pc
        self.events = events
        # (pc, line, may-held) at every EXIT syscall with locks possibly held.
        self.exit_held = exit_held


def _lockset_join(
    a: "tuple[frozenset, frozenset] | None",
    b: "tuple[frozenset, frozenset] | None",
) -> "tuple[frozenset, frozenset] | None":
    if a is None:
        return b
    if b is None:
        return a
    return a[0] & b[0], a[1] | b[1]


def _lock_transfer(
    state: "tuple[frozenset, frozenset]",
    ins: Instruction,
    consts: ConstpropResult,
    index: int,
) -> "tuple[frozenset, frozenset]":
    if ins.op != "syscall":
        return state
    before = consts.state_before(index)
    number = before.reg(2) if before is not None else None
    if number == Syscall.LOCK:
        lock_id = before.reg(4) if before is not None else None
        must, may = state
        if isinstance(lock_id, int):
            return must | {lock_id}, may | {lock_id}
        return must, may | {UNKNOWN_LOCK}
    if number == Syscall.UNLOCK:
        lock_id = before.reg(4) if before is not None else None
        must, may = state
        if isinstance(lock_id, int):
            return must - {lock_id}, may - {lock_id}
        return frozenset(), may | {UNKNOWN_LOCK}
    if number is None or not isinstance(number, int):
        # Unknown service: could be any lock operation.
        return frozenset(), state[1] | {UNKNOWN_LOCK}
    return state


def lockset_analysis(
    program: Program,
    entries: Iterable[str] | None = None,
    consts: ConstpropResult | None = None,
) -> LocksetResult:
    """Compute per-access locksets and lock/unlock events."""
    consts = consts or constant_states(program, entries, mode=SOUND)
    cfg = consts.cfg
    empty: tuple[frozenset, frozenset] = (frozenset(), frozenset())
    block_in: "dict[int, tuple[frozenset, frozenset] | None]" = {}
    work: list[int] = []
    root_bids = {cfg.block_at(i).bid for i in consts.roots}
    for bid in root_bids:
        block_in[bid] = empty
        work.append(bid)
    while work:
        bid = work.pop()
        state = block_in.get(bid)
        if state is None:
            continue
        block = cfg.blocks[bid]
        for index, ins in cfg.instructions(block):
            state = _lock_transfer(state, ins, consts, index)
        for succ in block.successors:
            joined = _lockset_join(block_in.get(succ), state)
            if joined != block_in.get(succ):
                block_in[succ] = joined
                work.append(succ)
    # Walk every block once more to collect per-instruction facts.
    accesses: dict[int, MemAccess] = {}
    events: list[LockEvent] = []
    exit_held: list[tuple[int, int, frozenset]] = []
    for block in cfg.blocks:
        state = block_in.get(block.bid)
        reachable = state is not None and block.bid in consts.block_in
        if state is None:
            state = empty
        for index, ins in cfg.instructions(block):
            pc = index_to_pc(index)
            if ins.op in ("lw", "sw"):
                before = consts.state_before(index) if reachable else None
                addr = None
                if before is not None:
                    base = before.reg(ins.rs)
                    if isinstance(base, int):
                        addr = (base + ins.imm) & 0xFFFFFFFF
                    else:
                        addr = base
                accesses[pc] = MemAccess(
                    pc=pc,
                    kind="load" if ins.op == "lw" else "store",
                    addr=addr,
                    must_locks=state[0] if reachable else frozenset(),
                    reachable=reachable,
                )
            elif ins.op == "syscall" and reachable:
                before = consts.state_before(index)
                number = before.reg(2) if before is not None else None
                if number in (Syscall.LOCK, Syscall.UNLOCK):
                    lock_id = before.reg(4) if before is not None else None
                    events.append(LockEvent(
                        pc=pc,
                        line=ins.line,
                        action="lock" if number == Syscall.LOCK else "unlock",
                        lock_id=lock_id if isinstance(lock_id, int) else UNKNOWN_LOCK,
                        must_before=state[0],
                        may_before=state[1],
                    ))
                elif number == Syscall.EXIT and state[1]:
                    exit_held.append((pc, ins.line, state[1]))
            state = _lock_transfer(state, ins, consts, index)
        if not block.successors and state[1] and reachable:
            last = block.end - 1
            if last >= block.start:
                ins = program.instructions[last]
                if ins.op != "syscall":  # EXIT case handled above
                    exit_held.append((index_to_pc(last), ins.line, state[1]))
    return LocksetResult(accesses, events, exit_held)


def may_alias(a: "int | str | None", b: "int | str | None") -> bool:
    """Whether two abstract word addresses may overlap **cross-thread**."""
    if a is None or b is None:
        return True
    if isinstance(a, int) and isinstance(b, int):
        return abs(a - b) < 4
    ra, rb = value_region(a), value_region(b)
    if ra is None or rb is None:
        return True  # constant in an unmapped gap: keep it conservative
    if ra != rb:
        return False
    # Same region.  Distinct threads never share stack addresses.
    return ra != REGION_STACK


@dataclass(frozen=True)
class RaceCandidates:
    """Static may-race relation over load/store PCs (cross-thread)."""

    pairs: frozenset  # of (pc_lo, pc_hi) tuples
    known_pcs: frozenset  # every analyzed load/store pc
    relevant_pcs: frozenset  # pcs participating in at least one pair
    total_pairs: int = 0  # conflicting pairs before pruning
    accesses: dict = field(default_factory=dict, compare=False, hash=False)

    def may_race(self, pc_a: int, pc_b: int) -> bool:
        """May the accesses at these two PCs race across threads?"""
        if pc_a not in self.known_pcs or pc_b not in self.known_pcs:
            return True  # PC outside the analyzed program: stay sound
        pair = (pc_a, pc_b) if pc_a <= pc_b else (pc_b, pc_a)
        return pair in self.pairs


def race_candidates(
    program: Program,
    entries: Iterable[str] | None = None,
    lockset: LocksetResult | None = None,
) -> RaceCandidates:
    """Build the static race-candidate pair set for *program*."""
    lockset = lockset or lockset_analysis(program, entries)
    accesses = list(lockset.accesses.values())
    pairs: set[tuple[int, int]] = set()
    total = 0
    for i, first in enumerate(accesses):
        for second in accesses[i:]:
            if first.kind != "store" and second.kind != "store":
                continue
            total += 1
            if not may_alias(first.addr, second.addr):
                continue
            if first.must_locks & second.must_locks:
                continue  # lock-ordered via the kernel's sync edges
            pair = (
                (first.pc, second.pc)
                if first.pc <= second.pc
                else (second.pc, first.pc)
            )
            pairs.add(pair)
    relevant = frozenset(pc for pair in pairs for pc in pair)
    return RaceCandidates(
        pairs=frozenset(pairs),
        known_pcs=frozenset(lockset.accesses),
        relevant_pcs=relevant,
        total_pairs=total,
        accesses=dict(lockset.accesses),
    )


def cached_race_candidates(program: Program) -> RaceCandidates | None:
    """Race candidates for *program*, cached on the program object.

    Thread entries are taken from the ``thread_entries`` attribute the
    workload layer stamps on multithreaded programs.  Returns ``None``
    (prune nothing) if the analysis fails — a static-analysis bug must
    never take down validation.
    """
    cached = getattr(program, "_race_candidates", False)
    if cached is not False:
        return cached
    try:
        result: RaceCandidates | None = race_candidates(program)
    except Exception:  # noqa: BLE001 - analysis must never break replay
        result = None
    try:
        program._race_candidates = result  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - immutable program type
        pass
    return result
