"""Static backward slicing over the CFG and dataflow results.

The dynamic slicer in ``forensics`` walks one recorded execution; this
one answers the same question — "which instructions can affect the
values used here?" — for **all** executions, using reaching
definitions for data dependence, the sound constant propagation for
may-alias memory dependence (a load depends on every store that may
write its address), and postdominators for control dependence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.static.cfg import (
    CFG,
    analysis_roots,
    instruction_uses,
)
from repro.analysis.static.dataflow import (
    ENTRY_DEF,
    SOUND,
    ConstpropResult,
    ReachingDefinitions,
    constant_states,
)
from repro.analysis.static.lockset import may_alias
from repro.arch.isa import index_to_pc, pc_to_index
from repro.arch.program import Program


@dataclass(frozen=True)
class StaticSlice:
    """The closure of instructions that can affect the criterion."""

    criterion_pc: int
    pcs: tuple[int, ...]  # sorted, includes the criterion
    lines: tuple[int, ...]  # source lines, sorted and deduplicated

    @property
    def size(self) -> int:
        return len(self.pcs)


def _control_dependence(cfg: CFG) -> dict[int, frozenset[int]]:
    """Map block id -> terminator instruction indices it depends on."""
    ipdom = cfg.postdominators()
    depends: dict[int, set[int]] = {b.bid: set() for b in cfg.blocks}
    for block in cfg.blocks:
        if len(block.successors) < 2:
            continue
        terminator = block.end - 1
        stop = ipdom.get(block.bid)
        for succ in block.successors:
            walker: int | None = succ
            seen: set[int] = set()
            while walker is not None and walker != stop and walker not in seen:
                seen.add(walker)
                depends[walker].add(terminator)
                walker = ipdom.get(walker)
    return {bid: frozenset(deps) for bid, deps in depends.items()}


def _memory_addresses(
    consts: ConstpropResult,
) -> "dict[int, int | str | None]":
    """Abstract address per load/store instruction index."""
    addrs: "dict[int, int | str | None]" = {}
    cfg = consts.cfg
    for index, ins in enumerate(cfg.program.instructions):
        if ins.op in ("lw", "sw"):
            addrs[index] = None  # default: unreachable -> unknown
    for block in cfg.blocks:
        for index, ins, state in consts.walk(block):
            if ins.op in ("lw", "sw"):
                base = state.reg(ins.rs)
                if isinstance(base, int):
                    addrs[index] = (base + ins.imm) & 0xFFFFFFFF
                else:
                    addrs[index] = base
    return addrs


def backward_slice(
    program: Program,
    pc: int,
    entries: Iterable[str] | None = None,
    cfg: CFG | None = None,
) -> StaticSlice:
    """Slice backwards from the instruction at *pc*."""
    cfg = cfg or CFG(program)
    criterion = pc_to_index(pc)
    if not 0 <= criterion < len(program.instructions):
        raise ValueError(f"pc {pc:#x} is outside the program")
    roots = analysis_roots(program, entries)
    reaching = ReachingDefinitions(cfg, roots)
    consts = constant_states(program, entries, mode=SOUND, cfg=cfg)
    addrs = _memory_addresses(consts)
    stores = [i for i, a in addrs.items() if program.instructions[i].op == "sw"]
    control = _control_dependence(cfg)

    in_slice: set[int] = set()
    use_work: list[tuple[int, int]] = []

    def add_instruction(index: int) -> None:
        if index in in_slice:
            return
        in_slice.add(index)
        ins = program.instructions[index]
        for reg in instruction_uses(ins):
            use_work.append((index, reg))
        if ins.op == "lw":
            # Memory dependence: any store that may write this address.
            load_addr = addrs.get(index)
            for store in stores:
                if may_alias(load_addr, addrs[store]):
                    add_instruction(store)
        for terminator in control.get(cfg.block_at(index).bid, ()):
            add_instruction(terminator)

    add_instruction(criterion)
    while use_work:
        index, reg = use_work.pop()
        if reg == 0:
            continue
        for def_site in reaching.at_instruction(index)[reg]:
            if def_site != ENTRY_DEF:
                add_instruction(def_site)

    pcs = tuple(index_to_pc(i) for i in sorted(in_slice))
    lines = tuple(
        sorted({program.instructions[i].line for i in in_slice}
               - {0})
    )
    return StaticSlice(criterion_pc=pc, pcs=pcs, lines=lines)
