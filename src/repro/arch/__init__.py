"""BN32: the 32-bit RISC substrate the reproduction executes on.

The paper instruments real x86 binaries with Pin and replays them under
Simics.  Neither is available offline, and BugNet's mechanism only needs
the architectural event stream — committed instructions, load values,
store addresses, register state — so we substitute a small MIPS-flavored
ISA with:

* :mod:`repro.arch.isa` — instruction set and syscall numbers,
* :mod:`repro.arch.assembler` — two-pass assembler (labels, directives,
  pseudo-instructions),
* :mod:`repro.arch.memory` — sparse paged byte-addressed memory with
  word-aligned accesses and page-protection faults,
* :mod:`repro.arch.registers` — the 32-entry register file,
* :mod:`repro.arch.cpu` — a functional interpreter with a pluggable
  data-memory interface (where caches and the BugNet recorder attach),
* :mod:`repro.arch.program` / :mod:`repro.arch.loader` — binaries and
  address-space setup.
"""

from repro.arch.assembler import assemble
from repro.arch.cpu import CPU, DirectMemoryInterface, MemoryInterface
from repro.arch.isa import CODE_BASE, DATA_BASE, HEAP_BASE, STACK_TOP, Instruction, Syscall
from repro.arch.loader import load_program
from repro.arch.memory import Memory, PAGE_SIZE
from repro.arch.program import Program
from repro.arch.registers import REG_ALIASES, RegisterFile, reg_num

__all__ = [
    "assemble",
    "CPU",
    "MemoryInterface",
    "DirectMemoryInterface",
    "Instruction",
    "Syscall",
    "CODE_BASE",
    "DATA_BASE",
    "HEAP_BASE",
    "STACK_TOP",
    "Memory",
    "PAGE_SIZE",
    "Program",
    "load_program",
    "RegisterFile",
    "REG_ALIASES",
    "reg_num",
]
