"""Two-pass assembler for BN32.

Supports the subset needed to write realistic application code:

* segments ``.text`` / ``.data``
* data directives ``.word``, ``.space``, ``.asciiz`` (one character per
  word — "wide" strings keep first-load bookkeeping word-exact),
  ``.equ NAME, value``
* labels, ``label+offset`` expressions
* pseudo-instructions: ``nop``, ``li``, ``la``, ``move``, ``b``,
  ``beqz``, ``bnez``, ``bgt``, ``ble``, ``bgtu``, ``bleu``, ``neg``,
  ``not``, ``subi``, ``call``, ``ret``, and ``lw/sw reg, label`` forms
  (expanded through the assembler temporary ``at``)

Example::

    .data
    greeting: .asciiz "hi"
    .text
    main:
        la   a0, greeting
        lw   t0, 0(a0)
        li   v0, 1
        syscall
"""

from __future__ import annotations

import re

from repro.arch.isa import (
    ALL_OPS,
    BRANCH_OPS,
    CODE_BASE,
    DATA_BASE,
    I_OPS,
    INSTRUCTION_BYTES,
    J_OPS,
    JR_OPS,
    MEM_OPS,
    R_OPS,
    U_OPS,
    Instruction,
)
from repro.arch.program import Program
from repro.arch.registers import reg_num
from repro.common.errors import AssemblerError

_MEM_OPERAND = re.compile(r"^(?P<off>[^()]*)\((?P<base>[^()]+)\)$")
_LABEL_EXPR = re.compile(r"^(?P<label>[A-Za-z_.$][\w.$]*)(?P<off>[+-]\d+)?$")
_STRING = re.compile(r'^"(?P<body>(?:[^"\\]|\\.)*)"$')

_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"'}


def _unescape(body: str) -> str:
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            out.append(_ESCAPES.get(body[i + 1], body[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _split_operands(text: str) -> list[str]:
    """Split on commas that are not inside a string literal."""
    parts: list[str] = []
    depth_quote = False
    current = []
    for ch in text:
        if ch == '"':
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class _Line:
    """One parsed source statement (instruction or directive)."""

    __slots__ = ("kind", "op", "operands", "line")

    def __init__(self, kind: str, op: str, operands: list[str], line: int) -> None:
        self.kind = kind
        self.op = op
        self.operands = operands
        self.line = line


class Assembler:
    """Two-pass assembler producing a :class:`~repro.arch.program.Program`."""

    def __init__(self, source: str, name: str = "a.out") -> None:
        self._source = source
        self._name = name
        self._symbols: dict[str, int] = {}
        self._equ: dict[str, int] = {}

    # -- public entry ------------------------------------------------------

    def assemble(self) -> Program:
        """Run both passes and return the assembled program."""
        statements = self._parse()
        self._layout(statements)
        return self._emit(statements)

    # -- pass 0: parsing ----------------------------------------------------

    def _parse(self) -> list[_Line]:
        statements: list[_Line] = []
        for lineno, raw in enumerate(self._source.splitlines(), start=1):
            text = raw.split("#", 1)[0].strip()
            if not text:
                continue
            # Peel off any leading labels ("loop: lw t0, 0(a0)").
            while True:
                match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*:\s*", text)
                if not match:
                    break
                statements.append(_Line("label", match.group(1), [], lineno))
                text = text[match.end():]
            if not text:
                continue
            parts = text.split(None, 1)
            op = parts[0].lower()
            operands = _split_operands(parts[1]) if len(parts) > 1 else []
            kind = "directive" if op.startswith(".") else "instr"
            statements.append(_Line(kind, op, operands, lineno))
        return statements

    # -- immediate / operand helpers -----------------------------------------

    def _parse_int(self, text: str, line: int) -> int:
        text = text.strip()
        if len(text) == 3 and text[0] == "'" and text[2] == "'":
            return ord(text[1])
        if text.startswith("'") and text.endswith("'") and "\\" in text:
            body = _unescape(text[1:-1])
            if len(body) == 1:
                return ord(body)
        if text in self._equ:
            return self._equ[text]
        try:
            return int(text, 0)
        except ValueError:
            raise AssemblerError(f"expected integer, got {text!r}", line) from None

    def _is_int(self, text: str) -> bool:
        text = text.strip()
        if text in self._equ:
            return True
        if len(text) >= 3 and text.startswith("'") and text.endswith("'"):
            return True
        try:
            int(text, 0)
            return True
        except ValueError:
            return False

    def _resolve(self, text: str, line: int) -> int:
        """Resolve to an unsigned 32-bit value: int, .equ, or label(+offset)."""
        if self._is_int(text):
            return self._parse_int(text, line) & 0xFFFFFFFF
        match = _LABEL_EXPR.match(text.strip())
        if match:
            label = match.group("label")
            if label in self._symbols:
                offset = int(match.group("off") or 0)
                return (self._symbols[label] + offset) & 0xFFFFFFFF
        raise AssemblerError(f"unresolved symbol {text!r}", line)

    # -- expansion sizing ------------------------------------------------------

    def _li_size(self, imm: int) -> int:
        imm &= 0xFFFFFFFF
        signed = imm - 0x100000000 if imm & 0x80000000 else imm
        if -0x8000 <= signed < 0x8000:
            return 1
        if imm & 0xFFFF == 0:
            return 1
        return 2

    def _instr_size(self, stmt: _Line) -> int:
        op, ops = stmt.op, stmt.operands
        if op == "li":
            if len(ops) != 2:
                raise AssemblerError("li needs 2 operands", stmt.line)
            if self._is_int(ops[1]):
                return self._li_size(self._parse_int(ops[1], stmt.line))
            return 2  # label value: treated like la
        if op == "la":
            return 2
        if op in MEM_OPS and len(ops) == 2 and not _MEM_OPERAND.match(ops[1]) \
                and not self._is_int(ops[1]):
            return 3  # lw/sw reg, label  ->  lui at / ori at / lw 0(at)
        if op in BRANCH_OPS or op in ("bgt", "ble", "bgtu", "bleu"):
            if len(ops) == 3 and self._is_int(ops[1]):
                # Immediate comparison: materialize into at, then branch.
                return self._li_size(self._parse_int(ops[1], stmt.line)) + 1
        return 1

    # -- pass 1: layout -----------------------------------------------------

    def _layout(self, statements: list[_Line]) -> None:
        segment = "text"
        pc = CODE_BASE
        data = DATA_BASE
        for stmt in statements:
            if stmt.kind == "label":
                self._symbols[stmt.op] = pc if segment == "text" else data
            elif stmt.kind == "directive":
                if stmt.op == ".text":
                    segment = "text"
                elif stmt.op == ".data":
                    segment = "data"
                elif stmt.op == ".equ":
                    if len(stmt.operands) != 2:
                        raise AssemblerError(".equ needs NAME, value", stmt.line)
                    self._equ[stmt.operands[0]] = self._parse_int(
                        stmt.operands[1], stmt.line
                    )
                elif stmt.op == ".word":
                    data += 4 * len(stmt.operands)
                elif stmt.op == ".space":
                    size = self._parse_int(stmt.operands[0], stmt.line)
                    data += (size + 3) & ~3
                elif stmt.op == ".asciiz":
                    match = _STRING.match(stmt.operands[0])
                    if not match:
                        raise AssemblerError(".asciiz needs a string", stmt.line)
                    data += 4 * (len(_unescape(match.group("body"))) + 1)
                elif stmt.op in (".global", ".globl", ".align"):
                    pass  # accepted for source compatibility, no effect
                else:
                    raise AssemblerError(f"unknown directive {stmt.op}", stmt.line)
            else:
                if segment != "text":
                    raise AssemblerError("instruction outside .text", stmt.line)
                pc += INSTRUCTION_BYTES * self._instr_size(stmt)
        self._data_limit = data

    # -- pass 2: emission ------------------------------------------------------

    def _emit(self, statements: list[_Line]) -> Program:
        instructions: list[Instruction] = []
        data_words: dict[int, int] = {}
        data = DATA_BASE
        for stmt in statements:
            if stmt.kind == "label":
                continue
            if stmt.kind == "directive":
                if stmt.op in (".text", ".data"):
                    # Segment markers only affect label resolution,
                    # which the first pass already did.
                    pass
                elif stmt.op == ".word":
                    for operand in stmt.operands:
                        data_words[data] = self._resolve(operand, stmt.line)
                        data += 4
                elif stmt.op == ".space":
                    size = self._parse_int(stmt.operands[0], stmt.line)
                    data += (size + 3) & ~3
                elif stmt.op == ".asciiz":
                    body = _unescape(_STRING.match(stmt.operands[0]).group("body"))
                    for ch in body:
                        data_words[data] = ord(ch)
                        data += 4
                    data_words[data] = 0
                    data += 4
                continue
            instructions.extend(self._expand(stmt))
        return Program(
            instructions=instructions,
            data_words=data_words,
            data_base=DATA_BASE,
            data_limit=max(self._data_limit, DATA_BASE),
            symbols=dict(self._symbols),
            name=self._name,
        )

    def _reg(self, text: str, line: int) -> int:
        try:
            return reg_num(text)
        except KeyError:
            raise AssemblerError(f"unknown register {text!r}", line) from None

    def _expand(self, stmt: _Line) -> list[Instruction]:
        """Expand one instruction statement into concrete instructions."""
        op, ops, line = stmt.op, stmt.operands, stmt.line
        ins = lambda *a, **k: Instruction(*a, line=line, **k)  # noqa: E731

        def need(count: int) -> None:
            if len(ops) != count:
                raise AssemblerError(f"{op} needs {count} operands", line)

        # -- pseudo-instructions ----------------------------------------
        if op == "nop":
            return [ins("nop")]
        if op == "li":
            need(2)
            rd = self._reg(ops[0], line)
            value = self._resolve(ops[1], line)
            if not self._is_int(ops[1]):
                # Label operand: emit the fixed two-instruction la form so
                # pass-1 sizing (which cannot see label values) stays exact.
                return [
                    ins("lui", rd=rd, imm=(value >> 16) & 0xFFFF),
                    ins("ori", rd=rd, rs=rd, imm=value & 0xFFFF),
                ]
            return self._materialize(rd, value, line)
        if op == "la":
            need(2)
            rd = self._reg(ops[0], line)
            value = self._resolve(ops[1], line)
            return [
                ins("lui", rd=rd, imm=(value >> 16) & 0xFFFF),
                ins("ori", rd=rd, rs=rd, imm=value & 0xFFFF),
            ]
        if op == "move":
            need(2)
            return [ins("or", rd=self._reg(ops[0], line), rs=self._reg(ops[1], line), rt=0)]
        if op == "b":
            need(1)
            return [ins("beq", rs=0, rt=0, imm=self._resolve(ops[0], line))]
        if op == "beqz":
            need(2)
            return [ins("beq", rs=self._reg(ops[0], line), rt=0,
                        imm=self._resolve(ops[1], line))]
        if op == "bnez":
            need(2)
            return [ins("bne", rs=self._reg(ops[0], line), rt=0,
                        imm=self._resolve(ops[1], line))]
        if op in ("bgt", "ble", "bgtu", "bleu"):
            need(3)
            real = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}[op]
            prelude, rt_num = self._branch_rhs(ops[1], line)
            return prelude + [ins(real, rs=rt_num, rt=self._reg(ops[0], line),
                                  imm=self._resolve(ops[2], line))]
        if op == "neg":
            need(2)
            return [ins("sub", rd=self._reg(ops[0], line), rs=0,
                        rt=self._reg(ops[1], line))]
        if op == "not":
            need(2)
            return [ins("nor", rd=self._reg(ops[0], line),
                        rs=self._reg(ops[1], line), rt=0)]
        if op == "subi":
            need(3)
            return [ins("addi", rd=self._reg(ops[0], line),
                        rs=self._reg(ops[1], line),
                        imm=-self._parse_int(ops[2], line))]
        if op == "call":
            need(1)
            return [ins("jal", imm=self._resolve(ops[0], line))]
        if op == "ret":
            return [ins("jr", rs=reg_num("ra"))]

        # -- real instructions -------------------------------------------
        if op not in ALL_OPS:
            raise AssemblerError(f"unknown instruction {op!r}", line)
        if op in R_OPS:
            need(3)
            return [ins(op, rd=self._reg(ops[0], line), rs=self._reg(ops[1], line),
                        rt=self._reg(ops[2], line))]
        if op in I_OPS:
            need(3)
            imm = self._parse_int(ops[2], line)
            if op in ("sll", "srl", "sra"):
                if not 0 <= imm < 32:
                    raise AssemblerError("shift amount out of range", line)
            elif op in ("andi", "ori", "xori"):
                if not 0 <= imm <= 0xFFFF:
                    raise AssemblerError(f"{op} immediate must be 0..0xFFFF", line)
            elif not -0x8000 <= imm < 0x8000:
                raise AssemblerError(f"{op} immediate out of 16-bit range", line)
            return [ins(op, rd=self._reg(ops[0], line), rs=self._reg(ops[1], line),
                        imm=imm & 0xFFFFFFFF if imm >= 0 else imm)]
        if op in U_OPS:
            need(2)
            imm = self._parse_int(ops[1], line)
            if not 0 <= imm <= 0xFFFF:
                raise AssemblerError("lui immediate must be 0..0xFFFF", line)
            return [ins(op, rd=self._reg(ops[0], line), imm=imm)]
        if op in MEM_OPS:
            need(2)
            reg = self._reg(ops[0], line)
            match = _MEM_OPERAND.match(ops[1])
            if match:
                offset_text = match.group("off").strip() or "0"
                offset = self._parse_int(offset_text, line)
                base = self._reg(match.group("base"), line)
                if op == "lw":
                    return [ins("lw", rd=reg, rs=base, imm=offset)]
                return [ins("sw", rt=reg, rs=base, imm=offset)]
            if self._is_int(ops[1]):
                raise AssemblerError(f"{op} needs offset(base) or label", line)
            # lw/sw reg, label  — expand through the assembler temporary.
            addr = self._resolve(ops[1], line)
            at = reg_num("at")
            expansion = [
                ins("lui", rd=at, imm=(addr >> 16) & 0xFFFF),
                ins("ori", rd=at, rs=at, imm=addr & 0xFFFF),
            ]
            if op == "lw":
                expansion.append(ins("lw", rd=reg, rs=at, imm=0))
            else:
                expansion.append(ins("sw", rt=reg, rs=at, imm=0))
            return expansion
        if op in BRANCH_OPS:
            need(3)
            prelude, rt_num = self._branch_rhs(ops[1], line)
            return prelude + [ins(op, rs=self._reg(ops[0], line), rt=rt_num,
                                  imm=self._resolve(ops[2], line))]
        if op in J_OPS:
            need(1)
            return [ins(op, imm=self._resolve(ops[0], line))]
        if op in JR_OPS:
            if op == "jr":
                need(1)
                return [ins("jr", rs=self._reg(ops[0], line))]
            # jalr rd, rs  (or jalr rs  with rd=ra)
            if len(ops) == 1:
                return [ins("jalr", rd=reg_num("ra"), rs=self._reg(ops[0], line))]
            need(2)
            return [ins("jalr", rd=self._reg(ops[0], line), rs=self._reg(ops[1], line))]
        if op == "syscall":
            return [ins("syscall")]
        if op == "break":
            return [ins("break")]
        raise AssemblerError(f"unhandled instruction {op!r}", line)

    def _branch_rhs(self, operand: str, line: int) -> tuple[list[Instruction], int]:
        """Right-hand side of a branch: register, or immediate via ``at``."""
        if self._is_int(operand):
            at = reg_num("at")
            return self._materialize(at, self._parse_int(operand, line), line), at
        return [], self._reg(operand, line)

    def _materialize(self, rd: int, value: int, line: int) -> list[Instruction]:
        """Emit the shortest sequence that puts *value* into *rd*."""
        value &= 0xFFFFFFFF
        signed = value - 0x100000000 if value & 0x80000000 else value
        ins = lambda *a, **k: Instruction(*a, line=line, **k)  # noqa: E731
        if -0x8000 <= signed < 0x8000:
            return [ins("addi", rd=rd, rs=0, imm=signed)]
        if value & 0xFFFF == 0:
            return [ins("lui", rd=rd, imm=value >> 16)]
        return [
            ins("lui", rd=rd, imm=value >> 16),
            ins("ori", rd=rd, rs=rd, imm=value & 0xFFFF),
        ]


def assemble(source: str, name: str = "a.out") -> Program:
    """Assemble BN32 source text into a :class:`Program`."""
    return Assembler(source, name=name).assemble()
