"""Functional BN32 CPU.

The CPU is deliberately ignorant of caches, recording and the OS: data
accesses go through a pluggable :class:`MemoryInterface` (where the cache
hierarchy and the BugNet recorder attach) and ``syscall`` calls a handler
installed by the kernel.  Faults are raised as exceptions; the machine
loop catches them and invokes the kernel's fault path (which finalizes
the BugNet logs, Section 4.8).
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.arch.isa import CODE_BASE, INSTRUCTION_BYTES, Instruction
from repro.arch.memory import Memory
from repro.arch.program import Program
from repro.arch.registers import RegisterFile
from repro.common.bits import to_signed
from repro.common.errors import ArithmeticFault, Fault, InstructionFault

MASK = 0xFFFFFFFF


class MemoryInterface(Protocol):
    """What the CPU needs from the data-memory side."""

    def load(self, addr: int) -> int:
        """Return the word at *addr* (may fault)."""

    def store(self, addr: int, value: int) -> None:
        """Write the word at *addr* (may fault)."""


class DirectMemoryInterface:
    """Uncached direct access to a :class:`~repro.arch.memory.Memory`."""

    __slots__ = ("memory",)

    def __init__(self, memory: Memory) -> None:
        self.memory = memory

    def load(self, addr: int) -> int:
        return self.memory.load(addr)

    def store(self, addr: int, value: int) -> None:
        self.memory.store(addr, value)


def _default_syscall(cpu: "CPU") -> None:
    raise Fault("syscall executed with no kernel attached", pc=cpu.pc)


class CPU:
    """One hardware context executing a :class:`Program`.

    ``step()`` executes exactly one instruction.  ``inst_count`` counts
    committed instructions (the paper's IC); the recorder samples it for
    interval bookkeeping and MRL entries.
    """

    def __init__(
        self,
        program: Program,
        mem: MemoryInterface,
        thread_id: int = 0,
    ) -> None:
        self.program = program
        self.code = program.instructions
        self._code_len = len(program.instructions)
        self.mem = mem
        self.thread_id = thread_id
        self.regs = RegisterFile()
        self.pc = program.entry_pc
        self.inst_count = 0
        self.halted = False
        self.exit_code = 0
        self.syscall_handler: Callable[[CPU], None] = _default_syscall

    # -- fetch ---------------------------------------------------------------

    def fetch(self) -> Instruction:
        """Fetch the instruction at the current PC or raise a fault."""
        pc = self.pc
        index = (pc - CODE_BASE) >> 2
        if pc & 3 or index < 0 or index >= len(self.code):
            raise InstructionFault(
                f"instruction fetch from invalid address {pc:#010x}", pc=pc
            )
        return self.code[index]

    # -- execution -------------------------------------------------------------

    def step(self) -> Instruction:
        """Execute one instruction; returns it (for tracers).

        Raises a :class:`~repro.common.errors.Fault` subclass on
        architectural faults; ``self.pc`` still points at the faulting
        instruction in that case (fetch faults report the bad target).
        """
        # Fetch, inlined from :meth:`fetch` — this is the per-instruction
        # hot path and the call itself is measurable.
        pc = self.pc
        index = (pc - CODE_BASE) >> 2
        if pc & 3 or index < 0 or index >= self._code_len:
            raise InstructionFault(
                f"instruction fetch from invalid address {pc:#010x}", pc=pc
            )
        ins = self.code[index]
        op = ins.op
        regs = self.regs.regs
        next_pc = pc + INSTRUCTION_BYTES

        if op == "lw":
            value = self.mem.load((regs[ins.rs] + ins.imm) & MASK)
            if ins.rd:
                regs[ins.rd] = value & MASK
        elif op == "sw":
            self.mem.store((regs[ins.rs] + ins.imm) & MASK, regs[ins.rt])
        elif op == "addi":
            if ins.rd:
                regs[ins.rd] = (regs[ins.rs] + ins.imm) & MASK
        elif op == "add":
            if ins.rd:
                regs[ins.rd] = (regs[ins.rs] + regs[ins.rt]) & MASK
        elif op == "sub":
            if ins.rd:
                regs[ins.rd] = (regs[ins.rs] - regs[ins.rt]) & MASK
        elif op == "mul":
            if ins.rd:
                regs[ins.rd] = (to_signed(regs[ins.rs]) * to_signed(regs[ins.rt])) & MASK
        elif op in ("div", "rem"):
            divisor = to_signed(regs[ins.rt])
            if divisor == 0:
                raise ArithmeticFault(f"integer divide by zero at {self.pc:#010x}",
                                      pc=self.pc)
            dividend = to_signed(regs[ins.rs])
            quotient = abs(dividend) // abs(divisor)
            if (dividend < 0) != (divisor < 0):
                quotient = -quotient
            if op == "div":
                result = quotient
            else:
                result = dividend - quotient * divisor
            if ins.rd:
                regs[ins.rd] = result & MASK
        elif op in ("divu", "remu"):
            divisor = regs[ins.rt]
            if divisor == 0:
                raise ArithmeticFault(f"integer divide by zero at {self.pc:#010x}",
                                      pc=self.pc)
            if ins.rd:
                if op == "divu":
                    regs[ins.rd] = (regs[ins.rs] // divisor) & MASK
                else:
                    regs[ins.rd] = (regs[ins.rs] % divisor) & MASK
        elif op == "and":
            if ins.rd:
                regs[ins.rd] = regs[ins.rs] & regs[ins.rt]
        elif op == "or":
            if ins.rd:
                regs[ins.rd] = regs[ins.rs] | regs[ins.rt]
        elif op == "xor":
            if ins.rd:
                regs[ins.rd] = regs[ins.rs] ^ regs[ins.rt]
        elif op == "nor":
            if ins.rd:
                regs[ins.rd] = ~(regs[ins.rs] | regs[ins.rt]) & MASK
        elif op == "andi":
            if ins.rd:
                regs[ins.rd] = regs[ins.rs] & (ins.imm & 0xFFFF)
        elif op == "ori":
            if ins.rd:
                regs[ins.rd] = regs[ins.rs] | (ins.imm & 0xFFFF)
        elif op == "xori":
            if ins.rd:
                regs[ins.rd] = regs[ins.rs] ^ (ins.imm & 0xFFFF)
        elif op == "sll":
            if ins.rd:
                regs[ins.rd] = (regs[ins.rs] << ins.imm) & MASK
        elif op == "srl":
            if ins.rd:
                regs[ins.rd] = regs[ins.rs] >> ins.imm
        elif op == "sra":
            if ins.rd:
                regs[ins.rd] = (to_signed(regs[ins.rs]) >> ins.imm) & MASK
        elif op == "sllv":
            if ins.rd:
                regs[ins.rd] = (regs[ins.rs] << (regs[ins.rt] & 31)) & MASK
        elif op == "srlv":
            if ins.rd:
                regs[ins.rd] = regs[ins.rs] >> (regs[ins.rt] & 31)
        elif op == "srav":
            if ins.rd:
                regs[ins.rd] = (to_signed(regs[ins.rs]) >> (regs[ins.rt] & 31)) & MASK
        elif op == "slt":
            if ins.rd:
                regs[ins.rd] = 1 if to_signed(regs[ins.rs]) < to_signed(regs[ins.rt]) else 0
        elif op == "sltu":
            if ins.rd:
                regs[ins.rd] = 1 if regs[ins.rs] < regs[ins.rt] else 0
        elif op == "slti":
            if ins.rd:
                regs[ins.rd] = 1 if to_signed(regs[ins.rs]) < ins.imm else 0
        elif op == "sltiu":
            if ins.rd:
                regs[ins.rd] = 1 if regs[ins.rs] < (ins.imm & MASK) else 0
        elif op == "lui":
            if ins.rd:
                regs[ins.rd] = (ins.imm << 16) & MASK
        elif op == "beq":
            if regs[ins.rs] == regs[ins.rt]:
                next_pc = ins.imm
        elif op == "bne":
            if regs[ins.rs] != regs[ins.rt]:
                next_pc = ins.imm
        elif op == "blt":
            if to_signed(regs[ins.rs]) < to_signed(regs[ins.rt]):
                next_pc = ins.imm
        elif op == "bge":
            if to_signed(regs[ins.rs]) >= to_signed(regs[ins.rt]):
                next_pc = ins.imm
        elif op == "bltu":
            if regs[ins.rs] < regs[ins.rt]:
                next_pc = ins.imm
        elif op == "bgeu":
            if regs[ins.rs] >= regs[ins.rt]:
                next_pc = ins.imm
        elif op == "j":
            next_pc = ins.imm
        elif op == "jal":
            regs[31] = next_pc
            next_pc = ins.imm
        elif op == "jr":
            next_pc = regs[ins.rs]
        elif op == "jalr":
            target = regs[ins.rs]
            if ins.rd:
                regs[ins.rd] = next_pc
            next_pc = target
        elif op == "syscall":
            self.syscall_handler(self)
        elif op == "nop":
            pass
        elif op == "break":
            raise InstructionFault(f"break trap at {self.pc:#010x}", pc=self.pc)
        else:  # pragma: no cover - assembler only emits known ops
            raise InstructionFault(f"undecodable instruction {op!r}", pc=self.pc)

        self.pc = next_pc
        self.inst_count += 1
        return ins

    # -- context switching -------------------------------------------------------

    def context(self) -> tuple[int, tuple[int, ...]]:
        """Architectural context: (pc, registers) — what the kernel saves."""
        return self.pc, self.regs.snapshot()

    def restore_context(self, pc: int, regs: tuple[int, ...]) -> None:
        """Restore a context saved by :meth:`context`."""
        self.pc = pc
        self.regs.restore(regs)
