"""BN32 disassembler.

Renders :class:`~repro.arch.isa.Instruction` objects back to readable
assembly for the replay debugger, crash reports and diagnostics.  Round
trips through the assembler for all non-pseudo instructions (tests
verify this).
"""

from __future__ import annotations

from repro.arch.isa import (
    BRANCH_OPS,
    I_OPS,
    J_OPS,
    JR_OPS,
    MEM_OPS,
    R_OPS,
    U_OPS,
    Instruction,
)
from repro.arch.program import Program
from repro.arch.registers import reg_name


def disassemble(ins: Instruction, symbols: dict[int, str] | None = None) -> str:
    """One instruction as assembly text.

    *symbols* optionally maps code addresses to label names so branch
    and jump targets read symbolically.
    """
    def target(addr: int) -> str:
        if symbols and addr in symbols:
            return symbols[addr]
        return f"{addr:#x}"

    op = ins.op
    if op in R_OPS:
        return (f"{op} {reg_name(ins.rd)}, {reg_name(ins.rs)}, "
                f"{reg_name(ins.rt)}")
    if op in I_OPS:
        return f"{op} {reg_name(ins.rd)}, {reg_name(ins.rs)}, {ins.imm}"
    if op in U_OPS:
        return f"{op} {reg_name(ins.rd)}, {ins.imm:#x}"
    if op == "lw":
        return f"lw {reg_name(ins.rd)}, {ins.imm}({reg_name(ins.rs)})"
    if op == "sw":
        return f"sw {reg_name(ins.rt)}, {ins.imm}({reg_name(ins.rs)})"
    if op in BRANCH_OPS:
        return (f"{op} {reg_name(ins.rs)}, {reg_name(ins.rt)}, "
                f"{target(ins.imm)}")
    if op in J_OPS:
        return f"{op} {target(ins.imm)}"
    if op == "jr":
        return f"jr {reg_name(ins.rs)}"
    if op == "jalr":
        return f"jalr {reg_name(ins.rd)}, {reg_name(ins.rs)}"
    return op  # syscall / break / nop


def symbol_map(program: Program) -> dict[int, str]:
    """Invert a program's symbol table (first label per address wins)."""
    table: dict[int, str] = {}
    for name, addr in program.symbols.items():
        table.setdefault(addr, name)
    return table


def listing(program: Program, start: int | None = None,
            count: int = 16, annotate: bool = False) -> str:
    """A disassembly listing around *start* (defaults to the entry).

    With *annotate*, each basic-block leader is marked with its block
    id and successor blocks (from the static CFG) — the
    ``bugnet disasm --annotate`` view.  The default output is
    unchanged.
    """
    symbols = symbol_map(program)
    leaders: dict[int, str] = {}
    if annotate:
        from repro.analysis.static.cfg import CFG

        cfg = CFG(program)
        for block in cfg.blocks:
            succ = ", ".join(f"B{s}" for s in block.successors) or "exit"
            leaders[block.pc] = f"block B{block.bid} -> {succ}"
    pc = program.entry_pc if start is None else start
    lines = []
    for _ in range(count):
        ins = program.fetch(pc)
        if ins is None:
            break
        if pc in leaders:
            lines.append(f"  ; {leaders[pc]}")
        label = symbols.get(pc)
        if label:
            lines.append(f"{label}:")
        lines.append(f"  {pc:#010x}:  {disassemble(ins, symbols)}")
        pc += 4
    return "\n".join(lines)
