"""The BN32 instruction set.

BN32 is deliberately MIPS-flavored: 32 general registers (r0 hardwired to
zero), word-aligned 32-bit loads and stores, absolute branch/jump targets
(this is a simulator, not an encoder), and a ``syscall`` instruction that
traps into the kernel substrate.

Memory map (see DESIGN.md):

========  ==========  =====================================
segment   base        notes
========  ==========  =====================================
code      0x00400000  separate instruction store, 4 B/slot
data      0x10000000  globals from ``.data``
heap      0x20000000  grows up via ``sbrk``
stacks    0x7FFF0000  grow down, one region per thread
mmio      0xA0000000  memory-mapped device registers
========  ==========  =====================================

Page zero is never mapped, so null-pointer dereferences fault exactly
like they would on a real OS.
"""

from __future__ import annotations

from enum import IntEnum

CODE_BASE = 0x00400000
DATA_BASE = 0x10000000
HEAP_BASE = 0x20000000
STACK_TOP = 0x7FFF0000
MMIO_BASE = 0xA0000000

INSTRUCTION_BYTES = 4


class Syscall(IntEnum):
    """Syscall numbers, passed in ``v0`` with arguments in ``a0``-``a3``."""

    EXIT = 1
    PRINT_INT = 2
    PRINT_CHAR = 3
    READ_INPUT = 4
    YIELD = 5
    SBRK = 6
    WRITE_OUT = 7
    LOCK = 8
    UNLOCK = 9
    CURRENT_TID = 10


# Register-register ALU operations: ``op rd, rs, rt``.
R_OPS = frozenset({
    "add", "sub", "mul", "div", "divu", "rem", "remu",
    "and", "or", "xor", "nor",
    "sllv", "srlv", "srav",
    "slt", "sltu",
})

# Register-immediate ALU operations: ``op rd, rs, imm``.
I_OPS = frozenset({
    "addi", "andi", "ori", "xori", "slti", "sltiu",
    "sll", "srl", "sra",
})

# ``lui rd, imm`` loads ``imm << 16``.
U_OPS = frozenset({"lui"})

# Memory operations: ``lw rd, off(rs)`` / ``sw rt, off(rs)``.
MEM_OPS = frozenset({"lw", "sw"})

# Conditional branches: ``op rs, rt, label`` (absolute resolved target).
BRANCH_OPS = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu"})

# Jumps.
J_OPS = frozenset({"j", "jal"})
JR_OPS = frozenset({"jr", "jalr"})

SYS_OPS = frozenset({"syscall", "break", "nop"})

ALL_OPS = R_OPS | I_OPS | U_OPS | MEM_OPS | BRANCH_OPS | J_OPS | JR_OPS | SYS_OPS


class Instruction:
    """One decoded BN32 instruction.

    Fields not used by an opcode are zero.  ``imm`` holds shift amounts,
    immediates, memory offsets and resolved absolute branch/jump targets.
    ``line`` is the 1-based source line for diagnostics and for mapping
    crash PCs back to "source" in the bug studies.
    """

    __slots__ = ("op", "rd", "rs", "rt", "imm", "line")

    def __init__(
        self,
        op: str,
        rd: int = 0,
        rs: int = 0,
        rt: int = 0,
        imm: int = 0,
        line: int = 0,
    ) -> None:
        self.op = op
        self.rd = rd
        self.rs = rs
        self.rt = rt
        self.imm = imm
        self.line = line

    def __repr__(self) -> str:
        return (
            f"Instruction({self.op!r}, rd={self.rd}, rs={self.rs}, "
            f"rt={self.rt}, imm={self.imm:#x}, line={self.line})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.op == other.op
            and self.rd == other.rd
            and self.rs == other.rs
            and self.rt == other.rt
            and self.imm == other.imm
        )

    def __hash__(self) -> int:
        return hash((self.op, self.rd, self.rs, self.rt, self.imm))


def pc_to_index(pc: int) -> int:
    """Convert a code address to an instruction-store index."""
    return (pc - CODE_BASE) // INSTRUCTION_BYTES


def index_to_pc(index: int) -> int:
    """Convert an instruction-store index to a code address."""
    return CODE_BASE + index * INSTRUCTION_BYTES
