"""Program loading: address-space setup for a fresh process.

Maps the data segment, an initial heap page and a stack region, copies
initialized data words, and positions ``sp``/``gp``.  Used identically by
the full-system machine (recording side) and the replayer — the paper
requires the replayer to lay the binary out at the same virtual
addresses (Section 5.3).
"""

from __future__ import annotations

from repro.arch.isa import DATA_BASE, HEAP_BASE, STACK_TOP
from repro.arch.memory import PAGE_SIZE, Memory
from repro.arch.program import Program

DEFAULT_STACK_BYTES = 64 * 1024
DEFAULT_HEAP_BYTES = 64 * 1024


def stack_top_for_thread(thread_id: int, stack_bytes: int = DEFAULT_STACK_BYTES) -> int:
    """Top-of-stack address for *thread_id* (regions never overlap)."""
    region = stack_bytes + PAGE_SIZE  # one guard page between stacks
    return STACK_TOP - thread_id * region


def load_program(
    program: Program,
    memory: Memory,
    thread_id: int = 0,
    stack_bytes: int = DEFAULT_STACK_BYTES,
    heap_bytes: int = DEFAULT_HEAP_BYTES,
) -> int:
    """Map segments and copy initialized data; returns the initial ``sp``.

    Safe to call once per thread sharing the same :class:`Memory`: the
    data/heap mappings are idempotent and each thread gets its own stack
    region.
    """
    data_len = max(program.data_limit - DATA_BASE, 4)
    memory.map_range(DATA_BASE, data_len)
    memory.map_range(HEAP_BASE, heap_bytes)
    top = stack_top_for_thread(thread_id, stack_bytes)
    memory.map_range(top - stack_bytes, stack_bytes)
    for addr, value in program.data_words.items():
        memory.poke(addr, value)
    return top - 16  # small red zone below the very top
