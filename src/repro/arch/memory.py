"""Sparse paged data memory.

Addresses are byte-granular but all accesses are aligned 32-bit words —
matching the paper's per-word first-load bits.  Pages (4 KB) must be
mapped before use; reads or writes to unmapped pages raise
:class:`~repro.common.errors.MemoryFault`, which is how null-pointer
dereferences and wild stores crash the simulated programs.

The backing store is a dict keyed by word index, so multi-gigabyte
address spaces cost only what is touched.
"""

from __future__ import annotations

from repro.common.errors import AlignmentFault, MemoryFault

PAGE_SIZE = 4096
PAGE_SHIFT = 12


class Memory:
    """Word-granular sparse memory with page-validity protection."""

    __slots__ = ("_words", "_pages", "fault_checks")

    def __init__(self, fault_checks: bool = True) -> None:
        self._words: dict[int, int] = {}
        self._pages: set[int] = set()
        self.fault_checks = fault_checks

    # -- page management -------------------------------------------------

    def map_page(self, addr: int) -> None:
        """Make the page containing *addr* valid."""
        self._pages.add(addr >> PAGE_SHIFT)

    def map_range(self, base: int, length: int) -> None:
        """Map all pages overlapping ``[base, base+length)``."""
        if length <= 0:
            return
        first = base >> PAGE_SHIFT
        last = (base + length - 1) >> PAGE_SHIFT
        self._pages.update(range(first, last + 1))

    def unmap_page(self, addr: int) -> None:
        """Invalidate the page containing *addr* (its contents remain)."""
        self._pages.discard(addr >> PAGE_SHIFT)

    def is_mapped(self, addr: int) -> bool:
        """True if *addr* lies in a mapped page."""
        return (addr >> PAGE_SHIFT) in self._pages

    @property
    def mapped_pages(self) -> frozenset[int]:
        """Page numbers currently mapped (for core-dump sizing)."""
        return frozenset(self._pages)

    @property
    def footprint_bytes(self) -> int:
        """Bytes of mapped address space — the FDR core-dump size model."""
        return len(self._pages) * PAGE_SIZE

    # -- word access ------------------------------------------------------

    def _check(self, addr: int) -> None:
        if addr & 3:
            raise AlignmentFault(f"unaligned word access at {addr:#010x}")
        if (addr >> PAGE_SHIFT) not in self._pages:
            raise MemoryFault(f"access to unmapped address {addr:#010x}")

    def load(self, addr: int) -> int:
        """Read the aligned word at *addr*."""
        if self.fault_checks:
            self._check(addr)
        return self._words.get(addr >> 2, 0)

    def store(self, addr: int, value: int) -> None:
        """Write the aligned word at *addr*."""
        if self.fault_checks:
            self._check(addr)
        self._words[addr >> 2] = value & 0xFFFFFFFF

    def peek(self, addr: int) -> int:
        """Read without fault checks (debugger/replayer access)."""
        return self._words.get(addr >> 2, 0)

    def poke(self, addr: int, value: int) -> None:
        """Write without fault checks (loader/DMA/kernel access)."""
        self._words[addr >> 2] = value & 0xFFFFFFFF

    def load_block(self, base: int, words: int) -> list[int]:
        """Read *words* consecutive words starting at *base* (no checks)."""
        get = self._words.get
        start = base >> 2
        return [get(start + i, 0) for i in range(words)]

    def clear(self) -> None:
        """Drop all contents and mappings."""
        self._words.clear()
        self._pages.clear()

    def touched_words(self) -> int:
        """Number of distinct words ever written (diagnostics)."""
        return len(self._words)
