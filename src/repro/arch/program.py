"""Assembled BN32 binaries.

A :class:`Program` is what the assembler produces and what both the
full-system machine *and* the replayer load.  The replayer requirement
comes straight from the paper (Section 5.1): "our replayer has to have
access to the exact same binaries for the application and shared
libraries used when creating the FLL."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.isa import CODE_BASE, DATA_BASE, INSTRUCTION_BYTES, Instruction


@dataclass
class Program:
    """An assembled binary: code, initialized data, and symbols."""

    instructions: list[Instruction]
    data_words: dict[int, int] = field(default_factory=dict)
    data_base: int = DATA_BASE
    data_limit: int = DATA_BASE
    symbols: dict[str, int] = field(default_factory=dict)
    name: str = "a.out"

    @property
    def entry_pc(self) -> int:
        """Address of the first instruction executed (``main`` if defined)."""
        return self.symbols.get("main", CODE_BASE)

    @property
    def code_limit(self) -> int:
        """One past the last valid code address."""
        return CODE_BASE + len(self.instructions) * INSTRUCTION_BYTES

    def pc_of(self, label: str) -> int:
        """Address of a code label (raises ``KeyError`` if undefined)."""
        return self.symbols[label]

    def source_line_of(self, pc: int) -> int:
        """Source line of the instruction at *pc* (0 if out of range)."""
        index = (pc - CODE_BASE) // INSTRUCTION_BYTES
        if 0 <= index < len(self.instructions):
            return self.instructions[index].line
        return 0

    def fetch(self, pc: int) -> Instruction | None:
        """Instruction at *pc*, or ``None`` for invalid code addresses."""
        if pc & 3 or pc < CODE_BASE:
            return None
        index = (pc - CODE_BASE) >> 2
        if index >= len(self.instructions):
            return None
        return self.instructions[index]

    @property
    def data_size(self) -> int:
        """Bytes of initialized+reserved data segment."""
        return self.data_limit - self.data_base
