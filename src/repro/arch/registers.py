"""The BN32 register file.

MIPS-style conventions so the assembly in :mod:`repro.workloads.bugs`
reads naturally:

====== ======== =========================================
name   number   role
====== ======== =========================================
zero   r0       hardwired zero
at     r1       assembler temporary (pseudo expansion)
v0-v1  r2-r3    syscall number / return values
a0-a3  r4-r7    arguments
t0-t9  r8-15,24-25  caller-saved temporaries
s0-s7  r16-23   callee-saved
k0-k1  r26-27   kernel scratch
gp     r28      globals pointer
sp     r29      stack pointer
fp     r30      frame pointer
ra     r31      return address
====== ======== =========================================
"""

from __future__ import annotations

NUM_REGS = 32

REG_ALIASES: dict[str, int] = {"zero": 0, "at": 1}
REG_ALIASES.update({f"v{i}": 2 + i for i in range(2)})
REG_ALIASES.update({f"a{i}": 4 + i for i in range(4)})
REG_ALIASES.update({f"t{i}": 8 + i for i in range(8)})
REG_ALIASES.update({f"s{i}": 16 + i for i in range(8)})
REG_ALIASES.update({"t8": 24, "t9": 25, "k0": 26, "k1": 27})
REG_ALIASES.update({"gp": 28, "sp": 29, "fp": 30, "ra": 31})

_NUM_TO_NAME = {num: name for name, num in REG_ALIASES.items()}


def reg_num(name: str) -> int:
    """Resolve a register name (``t0``, ``$sp``, ``r5``) to its number."""
    name = name.lower().lstrip("$")
    if name in REG_ALIASES:
        return REG_ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        num = int(name[1:])
        if 0 <= num < NUM_REGS:
            return num
    raise KeyError(f"unknown register {name!r}")


def reg_name(num: int) -> str:
    """Conventional name for register *num* (for disassembly/diagnostics)."""
    return _NUM_TO_NAME.get(num, f"r{num}")


class RegisterFile:
    """32 general-purpose 32-bit registers with r0 hardwired to zero."""

    __slots__ = ("regs",)

    def __init__(self, values: list[int] | None = None) -> None:
        if values is None:
            self.regs = [0] * NUM_REGS
        else:
            if len(values) != NUM_REGS:
                raise ValueError(f"expected {NUM_REGS} register values")
            self.regs = [v & 0xFFFFFFFF for v in values]
            self.regs[0] = 0

    def read(self, num: int) -> int:
        """Read register *num* as an unsigned 32-bit word."""
        return self.regs[num]

    def write(self, num: int, value: int) -> None:
        """Write register *num*; writes to r0 are discarded."""
        if num:
            self.regs[num] = value & 0xFFFFFFFF

    def snapshot(self) -> tuple[int, ...]:
        """Immutable copy of all 32 registers (checkpoint headers)."""
        return tuple(self.regs)

    def restore(self, values: tuple[int, ...] | list[int]) -> None:
        """Overwrite all registers from a snapshot (replay initialization)."""
        if len(values) != NUM_REGS:
            raise ValueError(f"expected {NUM_REGS} register values")
        self.regs[:] = [v & 0xFFFFFFFF for v in values]
        self.regs[0] = 0

    def __getitem__(self, name: str) -> int:
        return self.regs[reg_num(name)]

    def __setitem__(self, name: str, value: int) -> None:
        self.write(reg_num(name), value)

    def __repr__(self) -> str:
        live = {reg_name(i): v for i, v in enumerate(self.regs) if v}
        return f"RegisterFile({live})"
