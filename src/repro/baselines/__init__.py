"""The FDR comparison baseline (paper Sections 3 and 6.4).

FDR (Xu, Bodik & Hill, ISCA 2003) is the system BugNet defines itself
against: full-system replay built on SafetyNet checkpointing plus logs
of every external input.  We implement the pieces whose *sizes* Table 2
compares:

* :mod:`repro.baselines.safetynet` — undo-log checkpointing (the
  cache/memory checkpoint logs),
* :mod:`repro.baselines.fdr` — the complete FDR log-size model:
  checkpoint logs, interrupt/input/DMA logs, memory race logs and the
  final core dump, with zlib standing in for FDR's hardware LZ
  compressor.
"""

from repro.baselines.fdr import FDRConfig, FDRLogSizes, FDRTraceRecorder, fdr_sizes_from_run
from repro.baselines.safetynet import SafetyNetCheckpointer

__all__ = [
    "SafetyNetCheckpointer",
    "FDRConfig",
    "FDRLogSizes",
    "FDRTraceRecorder",
    "fdr_sizes_from_run",
]
