"""The FDR log-size model (paper Table 2's comparison column).

FDR records everything needed to replay the *full system* for its last
second of execution:

* SafetyNet cache/memory checkpoint logs (undo logging, whole blocks),
* an interrupt log (every interrupt/trap with enough context to
  re-deliver it),
* a program-input log (every word crossing the I/O boundary),
* a DMA log (every word any DMA engine writes),
* memory race logs (same mechanism BugNet adopts), and
* the final core dump of physical memory — without which the undo logs
  have nothing to roll back from.

We measure all of these on the *same* executions our BugNet recorder
sees: trace-driven for the SPEC personalities
(:class:`FDRTraceRecorder`), and derived from a finished
:class:`~repro.mp.machine.Machine` run for the full-system programs
(:func:`fdr_sizes_from_run`).  zlib models FDR's hardware LZ compressor
(the paper assumes LZ [28]); block payloads are batched per interval the
way the hardware compresses buffered blocks.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.baselines.safetynet import SafetyNetCheckpointer, SafetyNetStats


@dataclass(frozen=True)
class FDRConfig:
    """FDR design constants (from the FDR paper, as quoted by BugNet)."""

    checkpoint_interval: int = 1_000_000  # scaled 1/3-second equivalent
    block_size: int = 64
    interrupt_record_bytes: int = 16   # vector, timing, minimal context
    race_entry_bytes: int = 8
    lz_level: int = 6


@dataclass
class FDRLogSizes:
    """Everything FDR would ship to the developer, in bytes."""

    cache_checkpoint_log: int = 0
    memory_checkpoint_log: int = 0
    race_log: int = 0
    interrupt_log: int = 0
    input_log: int = 0
    dma_log: int = 0
    core_dump: int = 0

    @property
    def logs_total(self) -> int:
        """All logs except the core dump."""
        return (self.cache_checkpoint_log + self.memory_checkpoint_log
                + self.race_log + self.interrupt_log + self.input_log
                + self.dma_log)

    @property
    def shipped_total(self) -> int:
        """Total developer shipment including the core dump."""
        return self.logs_total + self.core_dump


class FDRTraceRecorder:
    """Measures FDR's checkpoint-log sizes over a synthetic event stream.

    The undo log dominates FDR's continuously-generated data; this
    recorder runs SafetyNet bookkeeping and models LZ compression by
    compressing representative undo payloads per interval.
    """

    def __init__(self, config: FDRConfig | None = None) -> None:
        self.config = config or FDRConfig()
        self.safetynet = SafetyNetCheckpointer(
            block_size=self.config.block_size,
            checkpoint_interval=self.config.checkpoint_interval,
        )
        self.compressed_undo_bytes = 0
        self._pending_blocks: list[bytes] = []

    def on_store(self, addr: int, block_payload: bytes | None = None) -> None:
        """Account one store (with an optional representative payload)."""
        if self.safetynet.on_store(addr):
            payload = block_payload or addr.to_bytes(8, "little") * (
                self.config.block_size // 8
            )
            self._pending_blocks.append(payload)
            if len(self._pending_blocks) >= 64:
                self._flush()

    def on_commit(self, count: int = 1) -> None:
        """Advance the instruction clock."""
        self.safetynet.on_commit(count)

    def _flush(self) -> None:
        if not self._pending_blocks:
            return
        raw = b"".join(self._pending_blocks)
        self.compressed_undo_bytes += len(
            zlib.compress(raw, self.config.lz_level)
        )
        self._pending_blocks = []

    def close(self) -> SafetyNetStats:
        """Finalize and return the SafetyNet statistics."""
        self._flush()
        return self.safetynet.close()


def fdr_sizes_from_run(
    machine,
    result,
    config: FDRConfig | None = None,
) -> FDRLogSizes:
    """Derive FDR's log sizes for a finished full-system machine run.

    Uses the per-thread trace collectors for the store stream (enable
    ``collect_traces=True``), the kernel/DMA counters for interrupt and
    input traffic, and the memory footprint for the core dump — all
    measured from the same execution BugNet recorded.
    """
    config = config or FDRConfig()
    sizes = FDRLogSizes()
    checkpointer = SafetyNetCheckpointer(
        block_size=config.block_size,
        checkpoint_interval=config.checkpoint_interval,
    )
    for collector in machine.collectors.values():
        if collector.digest_only:
            raise ValueError("FDR derivation needs full traces, not digests")
        for record in collector.records:
            if record.store is not None:
                checkpointer.on_store(record.store[0])
            checkpointer.on_commit()
    stats = checkpointer.close()
    # The paper splits SafetyNet logging into a cache-level and a
    # memory-level log (~1:5 in Table 2); we attribute undo entries by
    # that published split since our one-level model does not distinguish
    # where the old block was captured.
    sizes.cache_checkpoint_log = stats.undo_bytes // 6 + stats.register_snapshot_bytes
    sizes.memory_checkpoint_log = stats.undo_bytes - stats.undo_bytes // 6

    # Every syscall is a synchronous interrupt FDR must log; timer
    # preemptions and DMA completion interrupts too.
    interrupts = machine.kernel.syscalls_serviced + machine.dma.transfers_completed
    sizes.interrupt_log = interrupts * config.interrupt_record_bytes
    sizes.input_log = machine.dma.words_transferred * 4
    sizes.dma_log = machine.dma.words_transferred * 4

    if result.log_store is not None:
        # FDR's race log is the same mechanism BugNet adopts.
        bugnet_config = machine.bugnet
        sizes.race_log = sum(
            cp.mrl.byte_size(bugnet_config)
            for tid in result.log_store.threads()
            for cp in result.log_store.checkpoints(tid)
        )
    sizes.core_dump = machine.memory.footprint_bytes
    return sizes
