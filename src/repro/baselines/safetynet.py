"""SafetyNet-style undo-log checkpointing (Sorin et al., ISCA 2002).

FDR retrieves a consistent full-system state by logging, for every
cache block, the *old* contents the first time the block is written in
a checkpoint interval (copy-on-write undo logging), plus a register
snapshot per interval.  Rolling the undo log backwards over the final
core image reconstructs memory at the checkpoint boundary.

BugNet's pointed contrast (Section 2.1): this recovers *state*, not
*inputs* — so FDR additionally needs interrupt/input/DMA logs, and its
log entries carry whole cache blocks where BugNet carries load values.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SafetyNetStats:
    """Undo-log accounting for one recording."""

    intervals: int = 0
    undo_entries: int = 0
    undo_bytes: int = 0
    register_snapshot_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """Checkpoint log bytes (cache + memory checkpoint logs)."""
        return self.undo_bytes + self.register_snapshot_bytes


class SafetyNetCheckpointer:
    """Tracks first-store-per-block undo logging over an access stream."""

    # An undo entry stores the block address plus the old block contents.
    _ADDR_BYTES = 8

    def __init__(self, block_size: int = 64, checkpoint_interval: int = 1_000_000,
                 num_registers: int = 32) -> None:
        self.block_size = block_size
        self.block_shift = block_size.bit_length() - 1
        self.checkpoint_interval = checkpoint_interval
        self.register_bytes = num_registers * 4 + 8  # regs + pc/ids
        self.stats = SafetyNetStats()
        self._logged_blocks: set[int] = set()
        self._ic = 0
        self._open = False

    def _begin(self) -> None:
        """Open a new interval; the instruction clock carries over."""
        self._logged_blocks.clear()
        self._open = True
        self.stats.intervals += 1
        self.stats.register_snapshot_bytes += self.register_bytes

    def on_store(self, addr: int) -> bool:
        """Account one store; True if it produced an undo entry."""
        if not self._open:
            self._begin()
        block = addr >> self.block_shift
        if block in self._logged_blocks:
            return False
        self._logged_blocks.add(block)
        self.stats.undo_entries += 1
        self.stats.undo_bytes += self.block_size + self._ADDR_BYTES
        return True

    def on_commit(self, count: int = 1) -> None:
        """Advance the instruction clock, rolling intervals as needed."""
        if not self._open:
            self._begin()
        self._ic += count
        while self._ic >= self.checkpoint_interval:
            self._ic -= self.checkpoint_interval
            self._open = False
            if self._ic:
                self._begin()

    def close(self) -> SafetyNetStats:
        """Finish the recording and return the accumulated stats."""
        self._open = False
        return self.stats
