"""Cache substrate: where BugNet's first-load bits live.

The paper (Section 4.3) associates one *first-load bit* with every
32-bit word in the L1 and L2 caches.  A load is logged only when the bit
for its word is clear; loads and stores both set the bit.  Eviction from
the L2 clears the block's bits (forcing re-logging on re-access), L1
evictions merge bits back into the L2, and L2→L1 fills copy them down.
Coherence invalidations (remote writers, DMA) drop the block — and with
it the bits — which is exactly how externally-modified values get
re-logged.

* :mod:`repro.cache.cache` — a set-associative LRU tag array,
* :mod:`repro.cache.hierarchy` — the two-level first-load hierarchy,
* :mod:`repro.cache.coherence` — a directory MSI protocol whose replies
  drive the Memory Race Log.
"""

from repro.cache.cache import Cache, CacheBlock, CacheStats
from repro.cache.coherence import Directory
from repro.cache.hierarchy import FirstLoadHierarchy

__all__ = ["Cache", "CacheBlock", "CacheStats", "Directory", "FirstLoadHierarchy"]
