"""A set-associative, LRU, tag-only cache.

The functional simulator keeps data in :class:`~repro.arch.memory.Memory`
(sequential consistency makes the memory image authoritative at every
instruction boundary), so caches track *presence*, *coherence state*,
*dirtiness* and the per-word *first-load bits* — everything BugNet's
mechanism observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import CacheConfig

# Coherence states (MSI; tag-only data makes E unnecessary).
INVALID = 0
SHARED = 1
MODIFIED = 2


class CacheBlock:
    """One resident cache block."""

    __slots__ = ("block_addr", "state", "dirty", "first_load_bits")

    def __init__(self, block_addr: int, state: int = SHARED) -> None:
        self.block_addr = block_addr
        self.state = state
        self.dirty = False
        self.first_load_bits = 0  # bit i set => word i already logged/observed

    def __repr__(self) -> str:
        return (
            f"CacheBlock({self.block_addr:#x}, state={self.state}, "
            f"flb={self.first_load_bits:#x})"
        )


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss fraction (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """Set-associative tag array with true-LRU replacement.

    Sets are kept as dicts keyed by block address; Python dicts preserve
    insertion order, so "move to end" gives exact LRU at O(1).
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.block_shift = config.block_size.bit_length() - 1
        self.num_sets = config.num_sets
        self.assoc = config.associativity
        self.stats = CacheStats()
        self._sets: list[dict[int, CacheBlock]] = [{} for _ in range(self.num_sets)]

    def block_addr_of(self, addr: int) -> int:
        """Block-aligned address containing byte address *addr*."""
        return addr >> self.block_shift

    def _set_for(self, block_addr: int) -> dict[int, CacheBlock]:
        return self._sets[block_addr % self.num_sets]

    def lookup(self, block_addr: int, update_lru: bool = True) -> CacheBlock | None:
        """Find a resident block; optionally promote it to MRU."""
        # _set_for inlined: this is the per-access hot path.
        cache_set = self._sets[block_addr % self.num_sets]
        block = cache_set.get(block_addr)
        if block is not None and update_lru:
            del cache_set[block_addr]
            cache_set[block_addr] = block
        return block

    def insert(self, block: CacheBlock) -> CacheBlock | None:
        """Insert a block, returning the LRU victim if the set was full."""
        # _set_for inlined: this is the per-fill hot path.
        cache_set = self._sets[block.block_addr % self.num_sets]
        victim = None
        if block.block_addr not in cache_set and len(cache_set) >= self.assoc:
            lru_addr = next(iter(cache_set))
            victim = cache_set.pop(lru_addr)
            self.stats.evictions += 1
        cache_set[block.block_addr] = block
        return victim

    def remove(self, block_addr: int) -> CacheBlock | None:
        """Remove a block without counting it as an eviction (coherence)."""
        block = self._set_for(block_addr).pop(block_addr, None)
        if block is not None:
            self.stats.invalidations += 1
        return block

    def clear_first_load_bits(self) -> None:
        """Clear every first-load bit (start of a checkpoint interval)."""
        for cache_set in self._sets:
            for block in cache_set.values():
                block.first_load_bits = 0

    def resident_blocks(self) -> list[CacheBlock]:
        """All resident blocks (tests and invariant checks)."""
        return [b for s in self._sets for b in s.values()]

    def __contains__(self, block_addr: int) -> bool:
        return block_addr in self._set_for(block_addr)

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)
