"""Two-level private cache hierarchy carrying first-load bits.

Implements Section 4.3 of the paper exactly:

* a first-load bit per 32-bit word in both L1 and L2;
* a load whose bit is clear is a *first access* → it must be logged, and
  the bit is set;
* a store sets the bit without logging (replay regenerates stores);
* L2 eviction clears the block's bits (re-logging on return);
* "The first-load bits in the L2 cache are used to initialize the
  first-load bits in the L1 cache when bringing in a block"; and
* "When an L1 block is evicted, its first-load bits are stored into the
  first-load bits of the L2 cache."

The hierarchy is inclusive: evicting an L2 block back-invalidates the
L1 copy so no stale bits survive.
"""

from __future__ import annotations

from repro.cache.cache import Cache, CacheBlock, MODIFIED, SHARED
from repro.common.config import CacheConfig


class FirstLoadHierarchy:
    """Private L1+L2 for one core, tracking per-word first-load bits."""

    def __init__(self, l1: CacheConfig, l2: CacheConfig, core_id: int = 0) -> None:
        if l1.block_size != l2.block_size:
            raise ValueError("L1/L2 block sizes must match for bit migration")
        self.core_id = core_id
        self.l1 = Cache(l1, name=f"core{core_id}.L1")
        self.l2 = Cache(l2, name=f"core{core_id}.L2")
        self.block_shift = self.l1.block_shift
        self.words_per_block = l1.words_per_block
        self.word_mask = l1.words_per_block - 1
        # Memory-traffic counters for the bus/overhead model.
        self.memory_fills = 0
        self.writebacks = 0

    # -- internal plumbing -------------------------------------------------

    def _evict_l1(self, victim: CacheBlock) -> None:
        """Merge an evicted L1 block's bits (and dirtiness) into the L2."""
        l2_block = self.l2.lookup(victim.block_addr, update_lru=False)
        if l2_block is not None:
            l2_block.first_load_bits |= victim.first_load_bits
            l2_block.dirty = l2_block.dirty or victim.dirty
            if victim.state == MODIFIED:
                l2_block.state = MODIFIED

    def _evict_l2(self, victim: CacheBlock) -> None:
        """Handle an L2 eviction: back-invalidate L1, write back if dirty.

        The victim's first-load bits are simply dropped — the paper's
        "cleared on replacement" rule — so re-referencing those words
        after the block returns re-logs them.
        """
        l1_block = self.l1.remove(victim.block_addr)
        if (l1_block is not None and l1_block.dirty) or victim.dirty:
            self.writebacks += 1

    def _fill(self, block_addr: int, state: int) -> CacheBlock:
        """Bring a block into L2 (from memory) and then into L1."""
        l2_block = self.l2.lookup(block_addr)
        if l2_block is None:
            l2_block = CacheBlock(block_addr, state)
            l2_victim = self.l2.insert(l2_block)
            if l2_victim is not None:
                self._evict_l2(l2_victim)
            self.memory_fills += 1
        l1_block = CacheBlock(block_addr, l2_block.state)
        l1_block.first_load_bits = l2_block.first_load_bits
        l1_victim = self.l1.insert(l1_block)
        if l1_victim is not None:
            self._evict_l1(l1_victim)
        return l1_block

    # -- the recorder-facing operation ----------------------------------------

    def access(self, addr: int, is_store: bool) -> bool:
        """Perform one word access; returns True if it is a *first access*.

        "First access" means the word's first-load bit was clear before
        this access — i.e. for a load, the value must be logged in the
        FLL.  The bit is set afterwards either way (a store's value is
        regenerated during replay, so first-store also suppresses future
        logging of that word, per Section 4.3).
        """
        block_addr = addr >> self.block_shift
        block = self.l1.lookup(block_addr)
        if block is None:
            block = self._fill(block_addr, SHARED)
        word_bit = 1 << ((addr >> 2) & self.word_mask)
        first = not (block.first_load_bits & word_bit)
        block.first_load_bits |= word_bit
        if is_store:
            block.dirty = True
            block.state = MODIFIED
            l2_block = self.l2.lookup(block_addr, update_lru=False)
            if l2_block is not None:
                l2_block.state = MODIFIED
        return first

    def access_many(self, addrs, is_stores) -> list[bool]:
        """Batched :meth:`access`; returns one first-access flag per event.

        Equivalent to ``[self.access(a, s) for a, s in zip(addrs,
        is_stores)]`` — the L1-load-hit case (the overwhelmingly common
        one) is inlined here with the same side effects (LRU promotion,
        first-load bit set); everything else falls through to
        :meth:`access`.
        """
        l1 = self.l1
        sets = l1._sets
        num_sets = l1.num_sets
        shift = self.block_shift
        word_mask = self.word_mask
        access = self.access
        out = []
        out_append = out.append
        for addr, is_store in zip(addrs, is_stores):
            if is_store:
                out_append(access(addr, True))
                continue
            block_addr = addr >> shift
            # Cache._set_for + lookup inlined (the L1-load-hit hot path).
            cache_set = sets[block_addr % num_sets]
            block = cache_set.get(block_addr)
            if block is None:
                out_append(access(addr, False))
                continue
            del cache_set[block_addr]
            cache_set[block_addr] = block
            word_bit = 1 << ((addr >> 2) & word_mask)
            bits = block.first_load_bits
            if bits & word_bit:
                out_append(False)
            else:
                block.first_load_bits = bits | word_bit
                out_append(True)
        return out

    def holds_modified(self, block_addr: int) -> bool:
        """True if this core holds the block in M state (coherence)."""
        block = self.l1.lookup(block_addr, update_lru=False)
        if block is not None and block.state == MODIFIED:
            return True
        block = self.l2.lookup(block_addr, update_lru=False)
        return block is not None and block.state == MODIFIED

    # -- interval / coherence entry points ----------------------------------

    def clear_first_load_bits(self) -> None:
        """New checkpoint interval: every first-load bit is cleared."""
        self.l1.clear_first_load_bits()
        self.l2.clear_first_load_bits()

    def invalidate_block(self, block_addr: int) -> bool:
        """Coherence/DMA invalidation; True if any copy was present.

        Dropping the block drops its first-load bits, so the next load of
        any word in it re-logs the (externally written) value — the
        paper's handling of DMA and remote-thread stores.
        """
        l1_block = self.l1.remove(block_addr)
        l2_block = self.l2.remove(block_addr)
        if (l1_block is not None and l1_block.dirty) or (
            l2_block is not None and l2_block.dirty
        ):
            self.writebacks += 1
        return l1_block is not None or l2_block is not None

    def downgrade_block(self, block_addr: int) -> bool:
        """M→S downgrade (remote read of our modified block).

        The block stays resident and keeps its first-load bits — only
        ownership changes, data is unchanged.
        """
        found = False
        for level in (self.l1, self.l2):
            block = level.lookup(block_addr, update_lru=False)
            if block is not None and block.state == MODIFIED:
                block.state = SHARED
                if block.dirty:
                    self.writebacks += 1
                    block.dirty = False
                found = True
        return found

    def holds(self, block_addr: int) -> bool:
        """True if either level holds the block."""
        return block_addr in self.l1 or block_addr in self.l2
