"""The ``bugnet`` command line: record, ship, replay, debug.

The full production workflow from the paper, as a tool::

    # user site: run the program; on a crash the logs are shipped
    bugnet run app.s --input "AAAA..." --output crash.bugnet

    # developer site: same binary + the shipment
    bugnet report crash.bugnet
    bugnet replay app.s crash.bugnet --tail 15
    bugnet debug  app.s crash.bugnet --watch 0x10001000
    bugnet disasm app.s --start main
"""

from __future__ import annotations

import argparse
import sys

from repro.arch.assembler import assemble
from repro.arch.disasm import disassemble, listing, symbol_map
from repro.common.config import BugNetConfig, MachineConfig
from repro.mp.machine import Machine
from repro.replay.debugger import ReplayDebugger
from repro.replay.replayer import Replayer
from repro.tracing.serialize import read_crash_report, save_crash_report


def _load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return assemble(handle.read(), name=path)


def _cmd_run(args) -> int:
    program = _load_program(args.source)
    machine = Machine(
        program,
        MachineConfig(num_cores=args.cores, timer_interval=args.timer),
        BugNetConfig(checkpoint_interval=args.interval),
        dma_delay=args.dma_delay,
    )
    if args.input:
        machine.input.push_string(args.input)
    for index in range(args.threads):
        entry = args.entry[index] if index < len(args.entry) else "main"
        machine.spawn(entry=entry)
    result = machine.run(max_instructions=args.max_instructions)
    if result.console_text:
        print(f"[console] {result.console_text}")
    if result.timed_out:
        print(f"timed out after {result.global_steps} instructions",
              file=sys.stderr)
        return 2
    if result.crashed:
        print(result.crash.summary())
        if args.output:
            written = save_crash_report(args.output, result.crash,
                                        machine.bugnet)
            print(f"crash report written to {args.output} ({written} bytes)")
        return 1
    codes = ", ".join(f"t{tid}={code}" for tid, code in
                      sorted(result.exit_codes.items()))
    print(f"exited cleanly ({codes}); {result.global_steps} instructions")
    return 0


def _cmd_report(args) -> int:
    report, config = read_crash_report(args.report)
    print(report.summary())
    print(f"  recorder interval : {config.checkpoint_interval}")
    print(f"  shipment size     : {report.total_bytes(config)} bytes "
          f"(FLL {report.fll_bytes(config)}, MRL {report.mrl_bytes(config)})")
    return 0


def _cmd_replay(args) -> int:
    program = _load_program(args.source)
    report, config = read_crash_report(args.report)
    tid = report.faulting_tid if args.tid is None else args.tid
    flls = report.flls_for(tid)
    replayer = Replayer(program, config)
    replays = replayer.replay(flls)
    events = [event for replay in replays for event in replay.events]
    symbols = symbol_map(program)
    print(f"replayed {len(events)} instructions for thread {tid} across "
          f"{len(flls)} checkpoint(s)")
    tail = events[-args.tail:] if args.tail else []
    for event in tail:
        ins = program.fetch(event.pc)
        text = disassemble(ins, symbols) if ins else "???"
        extra = ""
        if event.load:
            mark = "*" if event.from_log else ""
            extra = f"   ; load{mark} [{event.load[0]:#x}] = {event.load[1]:#x}"
        elif event.store:
            extra = f"   ; store [{event.store[0]:#x}] <- {event.store[1]:#x}"
        print(f"  {event.ic:>8}  {event.pc:#010x}  {text}{extra}")
    if replays and replays[-1].fll.fault_pc is not None:
        print(f"execution faults next at pc={replays[-1].fll.fault_pc:#010x} "
              f"({report.fault_kind}: {report.fault_message})")
    return 0


def _cmd_debug(args) -> int:
    program = _load_program(args.source)
    report, config = read_crash_report(args.report)
    tid = report.faulting_tid if args.tid is None else args.tid
    debugger = ReplayDebugger(program, config, report.flls_for(tid))
    for label in args.breakpoints:
        debugger.add_breakpoint(label)
    for addr in args.watch:
        debugger.add_watchpoint(int(addr, 0))
    stops = 0
    while stops < args.stops:
        stop = debugger.run()
        print(stop)
        print(f"  {debugger.where()}")
        if stop.kind == "end":
            break
        stops += 1
        if stop.kind == "watchpoint":
            event = debugger.last_event()
            addr = (event.store or event.load)[0]
            writer = debugger.last_writer(addr)
            if writer is not None:
                line = program.source_line_of(writer.pc)
                print(f"  last writer: pc={writer.pc:#010x} "
                      f"(line {line}) value={writer.store[1]:#x}")
    return 0


def _cmd_disasm(args) -> int:
    program = _load_program(args.source)
    start = program.pc_of(args.start) if args.start else None
    print(listing(program, start=start, count=args.count))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``bugnet`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="bugnet",
        description="BugNet (ISCA 2005) reproduction: record, replay, debug.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a BN32 program under the recorder")
    run.add_argument("source")
    run.add_argument("--interval", type=int, default=100_000)
    run.add_argument("--threads", type=int, default=1)
    run.add_argument("--cores", type=int, default=1)
    run.add_argument("--timer", type=int, default=0)
    run.add_argument("--entry", action="append", default=[],
                     help="entry label per thread (repeatable)")
    run.add_argument("--input", default="",
                     help="string pushed to the input device")
    run.add_argument("--dma-delay", type=int, default=0)
    run.add_argument("--max-instructions", type=int, default=10_000_000)
    run.add_argument("--output", "-o", default=None,
                     help="write the crash report here on a fault")
    run.set_defaults(func=_cmd_run)

    report = sub.add_parser("report", help="summarize a crash report")
    report.add_argument("report")
    report.set_defaults(func=_cmd_report)

    replay = sub.add_parser("replay", help="replay a crash report")
    replay.add_argument("source")
    replay.add_argument("report")
    replay.add_argument("--tid", type=int, default=None)
    replay.add_argument("--tail", type=int, default=10,
                        help="disassembled instructions to print from the end")
    replay.set_defaults(func=_cmd_replay)

    debug = sub.add_parser("debug", help="breakpoint/watchpoint session")
    debug.add_argument("source")
    debug.add_argument("report")
    debug.add_argument("--tid", type=int, default=None)
    debug.add_argument("--break", dest="breakpoints", action="append",
                       default=[], help="label or pc to break on")
    debug.add_argument("--watch", action="append", default=[],
                       help="memory address to watch")
    debug.add_argument("--stops", type=int, default=5,
                       help="maximum stops to report")
    debug.set_defaults(func=_cmd_debug)

    disasm = sub.add_parser("disasm", help="disassemble a program")
    disasm.add_argument("source")
    disasm.add_argument("--start", default=None)
    disasm.add_argument("--count", type=int, default=24)
    disasm.set_defaults(func=_cmd_disasm)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
