"""The ``bugnet`` command line: record, ship, ingest, triage, replay,
debug, autopsy.

The full production workflow from the paper, as a tool::

    # user site: run the program; on a crash the logs are shipped
    bugnet run app.s --input "AAAA..." --output crash.bugnet

    # developer site: same binary + the shipment
    bugnet report crash.bugnet [--json]
    bugnet replay app.s crash.bugnet --tail 15
    bugnet debug  app.s crash.bugnet --watch 0x10001000 --why t0
    bugnet autopsy app.s crash.bugnet      # automated root cause
    bugnet disasm app.s --start main

    # fleet site: validate + dedup floods of shipments, then triage
    bugnet ingest --store ./fleet --source app.s crash.bugnet ...
    bugnet triage --store ./fleet --limit 10 [--autopsy]
    bugnet fleet-sim --runs 50          # synthesize realistic traffic
    bugnet autopsy --store ./fleet --json   # root-cause every bucket

    # live fleet site: a long-running ingestion endpoint + load driver
    bugnet serve --store ./fleet --port 7077
    bugnet load-sim --port 7077 --runs 200 --concurrency 8
    curl http://127.0.0.1:7077/stats
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

from repro.arch.assembler import assemble
from repro.arch.disasm import disassemble, listing, symbol_map
from repro.common.config import BugNetConfig, MachineConfig
from repro.fleet.ingest import IngestPipeline, resolver_from_sources
from repro.fleet.store import ReportStore
from repro.fleet.triage import build_buckets, render_triage
from repro.mp.machine import Machine
from repro.replay.debugger import ReplayDebugger
from repro.replay.replayer import Replayer
from repro.tracing.serialize import read_crash_report, save_crash_report


def _load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return assemble(handle.read(), name=path)


def _cmd_run(args) -> int:
    program = _load_program(args.source)
    machine = Machine(
        program,
        MachineConfig(num_cores=args.cores, timer_interval=args.timer),
        BugNetConfig(checkpoint_interval=args.interval),
        dma_delay=args.dma_delay,
    )
    if args.input:
        machine.input.push_string(args.input)
    for index in range(args.threads):
        entry = args.entry[index] if index < len(args.entry) else "main"
        machine.spawn(entry=entry)
    result = machine.run(max_instructions=args.max_instructions)
    if result.console_text:
        print(f"[console] {result.console_text}")
    if result.timed_out:
        print(f"timed out after {result.global_steps} instructions",
              file=sys.stderr)
        return 2
    if result.crashed:
        print(result.crash.summary())
        if args.output:
            written = save_crash_report(args.output, result.crash,
                                        machine.bugnet)
            print(f"crash report written to {args.output} ({written} bytes)")
        return 1
    codes = ", ".join(f"t{tid}={code}" for tid, code in
                      sorted(result.exit_codes.items()))
    print(f"exited cleanly ({codes}); {result.global_steps} instructions")
    return 0


def _report_dict(report, config) -> dict:
    """The machine-readable ``bugnet report --json`` shape (consumed by
    the ingestion tooling and the CI smoke step)."""
    return {
        "program": report.program_name,
        "pid": report.pid,
        "fault": {
            "kind": report.fault_kind,
            "message": report.fault_message,
            "pc": report.fault_pc,
            "source_line": report.fault_source_line,
            "tid": report.faulting_tid,
        },
        "threads": {
            str(tid): {
                "checkpoints": len(report.checkpoints[tid]),
                # The grounded window `bugnet replay`/ingest can actually
                # deliver; resident_window additionally counts any
                # ungrounded prefix left behind by eviction.
                "replay_window": sum(
                    fll.end_ic for fll in report.replay_chain(tid)
                ),
                "resident_window": report.replay_window(tid),
                "fll_bytes": report.fll_bytes(config, tid),
                "mrl_bytes": report.mrl_bytes(config, tid),
                "total_instructions": report.total_instructions.get(tid, 0),
            }
            for tid in report.thread_ids
        },
        "shipment_bytes": report.total_bytes(config),
        "recorder": {
            "checkpoint_interval": config.checkpoint_interval,
            "reduced_lcount_bits": config.reduced_lcount_bits,
            "dictionary_entries": config.dictionary.entries,
            "log_memory_budget": config.log_memory_budget,
            "bit_clear_period": config.bit_clear_period,
        },
    }


def _cmd_report(args) -> int:
    report, config = read_crash_report(args.report)
    if args.json:
        print(json.dumps(_report_dict(report, config), indent=2))
        return 0
    print(report.summary())
    print(f"  recorder interval : {config.checkpoint_interval}")
    print(f"  shipment size     : {report.total_bytes(config)} bytes "
          f"(FLL {report.fll_bytes(config)}, MRL {report.mrl_bytes(config)})")
    return 0


def _cmd_replay(args) -> int:
    program = _load_program(args.source)
    report, config = read_crash_report(args.report)
    tid = report.faulting_tid if args.tid is None else args.tid
    # The grounded chain (earliest resident major checkpoint onward) —
    # the same sequence ingest-time validation proved replayable.
    flls = report.replay_chain(tid)
    if not flls:
        available = ", ".join(str(t) for t in report.thread_ids) or "none"
        print(f"error: no replayable logs for thread {tid} "
              f"(threads with logs: {available})", file=sys.stderr)
        return 3
    replayer = Replayer(program, config)
    replays = replayer.replay(flls)
    events = [event for replay in replays for event in replay.events]
    symbols = symbol_map(program)
    print(f"replayed {len(events)} instructions for thread {tid} across "
          f"{len(flls)} checkpoint(s)")
    tail = events[-args.tail:] if args.tail else []
    for event in tail:
        ins = program.fetch(event.pc)
        text = disassemble(ins, symbols) if ins else "???"
        extra = ""
        if event.load:
            mark = "*" if event.from_log else ""
            extra = f"   ; load{mark} [{event.load[0]:#x}] = {event.load[1]:#x}"
        elif event.store:
            extra = f"   ; store [{event.store[0]:#x}] <- {event.store[1]:#x}"
        print(f"  {event.ic:>8}  {event.pc:#010x}  {text}{extra}")
    if replays and replays[-1].fll.fault_pc is not None:
        print(f"execution faults next at pc={replays[-1].fll.fault_pc:#010x} "
              f"({report.fault_kind}: {report.fault_message})")
    return 0


def _parse_watch(spec: str) -> tuple[int, int]:
    """``ADDR`` or ``ADDR:SIZE`` → (addr, size) for a sized watchpoint."""
    if ":" in spec:
        addr, size = spec.split(":", 1)
        return int(addr, 0), int(size, 0)
    return int(spec, 0), 4


def _cmd_debug(args) -> int:
    program = _load_program(args.source)
    report, config = read_crash_report(args.report)
    tid = report.faulting_tid if args.tid is None else args.tid
    debugger = ReplayDebugger(program, config, report.replay_chain(tid))
    for label in args.breakpoints:
        debugger.add_breakpoint(label)
    for spec in args.watch:
        debugger.add_watchpoint(*_parse_watch(spec))
    stops = 0
    while stops < args.stops:
        stop = debugger.run()
        print(stop)
        print(f"  {debugger.where()}")
        if stop.kind == "end":
            break
        stops += 1
        if stop.kind == "watchpoint":
            event = debugger.last_event()
            addr = (event.store or event.load)[0]
            writer = debugger.last_writer(addr)
            if writer is not None:
                line = program.source_line_of(writer.pc)
                print(f"  last writer: pc={writer.pc:#010x} "
                      f"(line {line}) value={writer.store[1]:#x}")
    for what in args.why:
        try:
            target = int(what, 0)
        except ValueError:
            target = what
        print(f"why {what}:")
        print(debugger.why(target))
    return 0


def _print_ingest_results(results, store, elapsed, as_json) -> None:
    from repro.analysis.report import format_rate

    accepted = [r for r in results if r.accepted]
    rejected = [r for r in results if not r.accepted]
    if as_json:
        print(json.dumps({
            "ingested": len(results),
            "accepted": len(accepted),
            "rejected": [
                {"label": r.label, "reason": r.reason} for r in rejected
            ],
            "signatures": sorted({r.digest for r in accepted}),
            "store_reports": len(store),
            "store_bytes": store.total_bytes,
            "evicted_reports": store.evicted_reports,
            "reports_per_sec": round(len(results) / elapsed, 1) if elapsed else None,
        }, indent=2))
        return
    for result in results:
        if result.accepted:
            print(f"  + {result.label}: signature {result.signature.short} "
                  f"(replayed {result.instructions_replayed} instructions)")
        else:
            print(f"  - {result.label}: REJECTED ({result.reason})",
                  file=sys.stderr)
    print(f"ingested {len(accepted)}/{len(results)} report(s) in "
          f"{elapsed:.2f}s ({format_rate(len(results), elapsed, 'reports')}); "
          f"store holds {len(store)} report(s), "
          f"{store.evicted_reports} evicted")


def _expand_report_paths(specs) -> "tuple[list, list[str], list[str]]":
    """Expand report arguments: files stay files, directories expand to
    their ``*.bugnet`` contents.  Returns (paths, notes, errors):
    notes describe routine empty/missing *directories* (a fleet
    drop-off with nothing in it); errors name explicitly-given report
    *files* that do not exist (a typo'd path must not exit 0)."""
    from pathlib import Path

    paths = []
    notes = []
    errors = []
    for spec in specs:
        path = Path(spec)
        if path.is_dir():
            found = sorted(path.glob("*.bugnet"))
            if not found:
                notes.append(f"directory {spec} contains no .bugnet reports")
            paths.extend(found)
        elif path.exists():
            paths.append(path)
        elif spec.endswith(".bugnet"):
            errors.append(f"no such report file: {spec}")
        else:
            notes.append(f"no such report directory: {spec}")
    return paths, notes, errors


def _cmd_ingest(args) -> int:
    if args.cluster is None and args.store is None:
        print("error: --store is required (or --cluster to upload to a "
              "live cluster)", file=sys.stderr)
        return 2
    if args.cluster is None:
        sources = [(path, _load_program(path)) for path in args.source]
        if not sources:
            print("error: at least one --source binary is required",
                  file=sys.stderr)
            return 2
    paths, notes, errors = _expand_report_paths(args.reports)
    for note in notes:
        print(f"note: {note}", file=sys.stderr)
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        return 2
    if not paths:
        # Empty fleet drop-offs are routine, not an error — and not a
        # reason to create or touch the store.
        if args.json:
            print(json.dumps({"ingested": 0, "accepted": 0, "rejected": [],
                              "signatures": []}))
        else:
            print("0 reports to ingest")
        return 0
    if args.cluster is not None:
        return _ingest_into_cluster(args, paths)
    store = ReportStore(args.store, num_shards=args.shards,
                        byte_budget=args.budget)
    pipeline = IngestPipeline(
        store, resolver_from_sources(sources),
        workers=args.workers, probe=not args.no_probe,
        admit_cache=_admit_cache_for(args, args.store),
    )
    start = time.perf_counter()
    results = pipeline.ingest_paths(paths)
    elapsed = time.perf_counter() - start
    _print_ingest_results(results, store, elapsed, args.json)
    return 1 if pipeline.rejected else 0


def _admit_cache_for(args, store_dir):
    """The dedup-before-validate cache a batch command shares with any
    service on the same store (``--no-admit-cache`` disables it)."""
    if getattr(args, "no_admit_cache", False):
        return None
    from pathlib import Path

    from repro.fleet.admitcache import AdmitCache

    return AdmitCache(
        Path(store_dir) / "admit-cache.json",
        seed=getattr(args, "admit_seed", 0) or 0,
        reverify_fraction=getattr(args, "reverify_fraction", 0.05),
    )


def _ingest_into_cluster(args, paths) -> int:
    """``bugnet ingest --cluster``: upload report files ring-routed to
    a live serve cluster (the server side validates and resolves
    programs; no local store is touched)."""
    import asyncio

    from repro.fleet.cluster.router import run_cluster_load_sim
    from repro.fleet.cluster.topology import ClusterSpec

    spec = ClusterSpec.load(args.cluster)
    # Empty upload_id: the receiving node synthesizes a blob-hash id,
    # so re-running the same drop-off directory stays idempotent.
    items = [(str(path), path.read_bytes(), "") for path in paths]
    report = asyncio.run(run_cluster_load_sim(
        spec, items, concurrency=max(args.workers, 1),
    ))
    if args.json:
        print(json.dumps({
            "ingested": len(items),
            "accepted": len(report.accepted),
            "duplicates": sum(1 for o in report.outcomes if o.duplicate),
            "rejected": [
                {"label": o.label, "reason": o.reason}
                for o in report.rejected + report.failed
            ],
            "signatures": sorted({
                o.signature for o in report.accepted if o.signature
            }),
        }, indent=2))
    else:
        print(f"cluster ingest: {len(report.accepted)} accepted, "
              f"{len(report.rejected)} rejected, "
              f"{len(report.failed)} failed "
              f"across {len(spec.nodes)} node(s)")
        for outcome in report.rejected + report.failed:
            print(f"  - {outcome.label}: {outcome.status} "
                  f"({outcome.reason})")
    return 1 if (report.rejected or report.failed) else 0


def _store_resolver(binaries):
    """Program resolver for store-wide analyses: explicit ``--binary``
    sources first, then the Table-1 bug suite (fleet-sim traffic names
    programs by bug name, so whole-fleet autopsies run unattended)."""
    from repro.forensics.autopsy import bug_suite_resolver

    extra = {}
    for path in binaries:
        program = _load_program(path)
        extra[path] = program
        extra[path.rsplit("/", 1)[-1]] = program
    return bug_suite_resolver(extra)


def _cmd_triage(args) -> int:
    from pathlib import Path

    store_path = Path(args.store)
    if not (store_path / "store.json").exists():
        if store_path.is_dir():
            # An existing-but-empty store directory is the routine
            # "nothing has been ingested yet" case, not an error.
            if args.json:
                print(json.dumps({"buckets": [], "store_reports": 0,
                                  "store_bytes": 0, "evicted_reports": 0}))
            else:
                print(f"store {args.store} is empty: 0 reports to triage")
            return 0
        print(f"error: no fleet store at {args.store} "
              f"(create one with `bugnet ingest` or `bugnet fleet-sim`)",
              file=sys.stderr)
        return 2
    store = ReportStore(args.store)
    buckets = build_buckets(store)
    autopsies = None
    if args.autopsy:
        from repro.forensics.autopsy import autopsy_store

        results = autopsy_store(
            store, _store_resolver(args.binary),
            workers=args.workers, limit=args.limit,
        )
        autopsies = {result.digest: result for result in results}
    if args.json:
        payload = []
        for bucket in buckets:
            entry = bucket.to_dict()
            if autopsies is not None and bucket.digest in autopsies:
                entry["autopsy"] = autopsies[bucket.digest].to_dict()
            payload.append(entry)
        print(json.dumps({
            "buckets": payload,
            "store_reports": len(store),
            "store_bytes": store.total_bytes,
            "evicted_reports": store.evicted_reports,
        }, indent=2))
        return 0
    if not buckets:
        print("store is empty: 0 reports to triage")
        return 0
    print(render_triage(buckets, limit=args.limit, autopsies=autopsies))
    return 0


def _cmd_autopsy(args) -> int:
    from repro.forensics.autopsy import autopsy_store, perform_autopsy

    if args.store:
        from pathlib import Path

        if args.source or args.report:
            print("error: give either --store or a source+report pair, "
                  "not both", file=sys.stderr)
            return 2
        if not (Path(args.store) / "store.json").exists():
            print(f"error: no fleet store at {args.store}", file=sys.stderr)
            return 2
        store = ReportStore(args.store)
        results = autopsy_store(
            store, _store_resolver(args.binary),
            workers=args.workers, limit=args.limit,
            races=not args.no_races,
        )
        failed = [r for r in results if r.autopsy is None]
        if args.json:
            print(json.dumps({
                "buckets": [result.to_dict() for result in results],
                "store_reports": len(store),
                "analyzed": len(results) - len(failed),
                "failed": len(failed),
            }, indent=2))
        else:
            for result in results:
                if result.autopsy is not None:
                    print(f"== bucket {result.digest[:12]} "
                          f"({result.count} report(s))")
                    print(result.autopsy.render())
                else:
                    print(f"== bucket {result.digest[:12]}: {result.error}",
                          file=sys.stderr)
                print()
        return 1 if failed else 0
    if not args.source or not args.report:
        print("error: need a source and a crash report (or --store)",
              file=sys.stderr)
        return 2
    program = _load_program(args.source)
    report, config = read_crash_report(args.report)
    autopsy = perform_autopsy(report, config, program,
                              races=not args.no_races)
    if args.json:
        print(json.dumps(autopsy.to_dict(), indent=2))
    else:
        print(autopsy.render())
    return 0


def _parse_bug_names(spec: "str | None") -> "list[str] | None":
    """Validate a ``--bugs`` list against the suite; None on error.

    Two aliases expand in place: ``mt`` — the paper's multithreaded
    programs (multi-core racy traffic), ``default`` — the fast
    single-thread subset.  ``--bugs default,gaim-0.82.1`` mixes both
    traffic classes in one corpus.
    """
    from repro.fleet.loadsim import DEFAULT_BUGS, MT_BUGS
    from repro.workloads.bugs import BUGS_BY_NAME

    names = []
    for name in (spec.split(",") if spec else ["default"]):
        if name == "mt":
            names.extend(MT_BUGS)
        elif name == "default":
            names.extend(DEFAULT_BUGS)
        else:
            names.append(name)
    unknown = [name for name in names if name not in BUGS_BY_NAME]
    if unknown:
        print(f"error: unknown bug(s): {', '.join(unknown)} "
              f"(see workloads/bugs.py)", file=sys.stderr)
        return None
    return names


def _cmd_fleet_sim(args) -> int:
    """Synthesize fleet traffic from the Table-1 bug suite and ingest it."""
    from repro.fleet.loadsim import synthesize_corpus

    names = _parse_bug_names(args.bugs)
    if names is None:
        return 2
    if args.nodes is not None:
        return _fleet_sim_cluster(args, names)
    programs, corpus, failures = synthesize_corpus(
        args.runs, names, seed=args.seed, corrupt=args.corrupt,
        duplicate_fraction=args.duplicate_fraction,
    )
    # observed_at None: store-monotonic, survives store reuse.
    items = [(label, blob, None) for label, blob, _upload_id in corpus]
    crashes = sum(1 for label, _b, _u in corpus
                  if not label.startswith("corrupt-"))
    corrupted = len(corpus) - crashes
    store_dir = args.store or tempfile.mkdtemp(prefix="bugnet-fleet-")
    store = ReportStore(store_dir, num_shards=args.shards,
                        byte_budget=args.budget)
    pipeline = IngestPipeline(store, programs.get, workers=args.workers,
                              admit_cache=_admit_cache_for(args, store_dir))
    start = time.perf_counter()
    results = pipeline.ingest_many(items)
    elapsed = time.perf_counter() - start
    buckets = build_buckets(store)
    if args.json:
        print(json.dumps({
            "runs": args.runs,
            "crashes": crashes,
            "non_crashing_runs": failures,
            "corrupt_injected": corrupted,
            "accepted": pipeline.accepted,
            "rejected": pipeline.rejected,
            "cache_hits": pipeline.cache_hits,
            "reverified": pipeline.reverified,
            "buckets": [bucket.to_dict() for bucket in buckets],
            "store": store_dir,
        }, indent=2))
        return 0
    print(f"fleet-sim: {args.runs} run(s), {crashes} crash report(s), "
          f"{corrupted} corrupted blob(s) injected")
    print(f"ingest: {pipeline.accepted} accepted, {pipeline.rejected} "
          f"rejected in {elapsed:.2f}s"
          + (f" ({pipeline.cache_hits} cache hit(s), "
             f"{pipeline.reverified} reverified)"
             if pipeline.cache_hits or pipeline.reverified else ""))
    for result in results:
        if not result.accepted:
            print(f"  - {result.label}: rejected ({result.reason})")
    print()
    print(render_triage(buckets))
    print(f"\nstore: {store_dir} ({len(store)} report(s) in "
          f"{store.num_shards} shard(s))")
    return 0


def _fleet_sim_cluster(args, names) -> int:
    """``bugnet fleet-sim --nodes N``: the whole-cluster scenario —
    real serve subprocesses, ring-routed load, a mid-run kill -9, and
    the zero-loss/convergence/reconciliation contract checks.  With
    ``--elastic``: a mid-load add-node and decommission instead of the
    kill, plus the epoch/quorum contract checks."""
    from repro.fleet.cluster.harness import run_cluster_sim

    if args.elastic:
        return _fleet_sim_elastic(args, names)
    store_dir = args.store or tempfile.mkdtemp(prefix="bugnet-cluster-")
    try:
        summary = run_cluster_sim(
            store_dir,
            runs=args.runs,
            nodes=args.nodes,
            replication=args.replication,
            bug_names=names,
            seed=args.seed,
            corrupt=args.corrupt,
            kill=not args.no_kill,
            concurrency=args.concurrency,
            workers=args.workers if args.workers else 0,
            retain=args.retain,
        )
    except AssertionError as error:
        print(f"error: cluster contract violated: {error}",
              file=sys.stderr)
        return 1
    if args.json:
        summary["store"] = store_dir
        print(json.dumps(summary, indent=2))
        return 0
    print(f"fleet-sim: {args.nodes}-node cluster "
          f"(replication {args.replication}), {args.runs} run(s)")
    killed = summary["killed_node"]
    if killed is not None:
        print(f"  killed {killed} with SIGKILL mid-load; "
              f"it rejoined and converged")
    print(f"  accepted {summary['accepted']} "
          f"(duplicates {summary['duplicates']}), "
          f"rejected {summary['rejected']}, failed {summary['failed']}, "
          f"lost {summary['lost']}")
    print(f"  every accepted report on >= {summary['min_copies']} "
          f"node(s); per node: "
          + ", ".join(f"{node}={count}" for node, count
                      in summary["per_node_reports"].items()))
    print(f"  /metrics vs /stats: "
          f"{'reconciled' if summary['reconciled'] else 'MISMATCH'}")
    print(f"  cluster root: {store_dir}")
    return 0


def _fleet_sim_elastic(args, names) -> int:
    """``bugnet fleet-sim --nodes 3 --elastic``: topology change under
    load (add-node mid-load, then decommission an original member)."""
    from repro.fleet.cluster.harness import run_elasticity_sim

    store_dir = args.store or tempfile.mkdtemp(prefix="bugnet-elastic-")
    try:
        summary = run_elasticity_sim(
            store_dir,
            runs=args.runs,
            replication=args.replication,
            bug_names=names,
            seed=args.seed,
            corrupt=args.corrupt,
            concurrency=args.concurrency,
            workers=args.workers if args.workers else 0,
        )
    except AssertionError as error:
        print(f"error: elasticity contract violated: {error}",
              file=sys.stderr)
        return 1
    except (TimeoutError, RuntimeError) as error:
        print(f"error: topology change did not converge: {error}",
              file=sys.stderr)
        return 1
    if args.json:
        summary["store"] = store_dir
        print(json.dumps(summary, indent=2))
        return 0
    epochs = summary["epochs"]
    print(f"fleet-sim --elastic: {summary['nodes_initial']}-node cluster "
          f"(replication {summary['replication']}), {args.runs} run(s)")
    print(f"  added {summary['added_node']} mid-load: streamed "
          f"{summary['streamed']} report(s) "
          f"(~{summary['range_span_added']:.1%} of the keyspace) before "
          f"the epoch-{epochs['after_add']} routing flip")
    print(f"  decommissioned {summary['decommissioned_node']}: drained "
          f"{summary['drained']} report(s), dropped at epoch "
          f"{epochs['final']}")
    print(f"  accepted {summary['accepted']} "
          f"(duplicates {summary['duplicates']}), "
          f"rejected {summary['rejected']}, failed {summary['failed']}, "
          f"lost {summary['lost']}")
    print(f"  every accepted report on >= {summary['min_copies']} "
          f"final member(s); per node: "
          + ", ".join(f"{node}={count}" for node, count
                      in summary["per_node_reports"].items()))
    print(f"  quorum read: epoch {summary['quorum']['epoch']}, stale "
          f"answer from {summary['decommissioned_node']} "
          f"{'flagged' if summary['stale_flagged'] else 'NOT flagged'}")
    print(f"  /metrics vs /stats: "
          f"{'reconciled' if summary['reconciled'] else 'MISMATCH'}")
    print(f"  cluster root: {store_dir}")
    return 0


def _cmd_serve(args) -> int:
    """Run the live ingestion endpoint until SIGINT/SIGTERM."""
    import asyncio
    import signal

    from repro.fleet.service import (
        FleetService,
        ServiceConfig,
        default_workers,
    )
    from repro.fleet.validate import ResolverSpec

    if (args.cluster is None) != (args.node_id is None):
        print("error: --cluster and --node-id go together",
              file=sys.stderr)
        return 2
    spec = ResolverSpec.from_paths(
        args.source, include_bug_suite=not args.no_bug_suite,
    )
    workers = default_workers() if args.workers is None else args.workers
    config = ServiceConfig(
        host=args.host, port=args.port,
        queue_limit=args.queue_limit,
        workers=workers,
        validate_chunk=args.validate_chunk,
        commit_batch=args.commit_batch,
        probe=not args.no_probe,
        log_json=args.log_json,
        admit_cache=not args.no_admit_cache,
        reverify_fraction=args.reverify_fraction,
        admit_seed=args.admit_seed,
    )
    cluster_banner = ""
    if args.cluster is not None:
        from repro.fleet.cluster.node import ClusterNodeService
        from repro.fleet.cluster.topology import ClusterSpec

        cluster_spec = ClusterSpec.load(args.cluster)
        try:
            member = cluster_spec.node(args.node_id)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        # The spec is the cluster's single source of addressing truth:
        # this member listens where every peer expects to find it.
        config.host, config.port = member.host, member.port
        service = ClusterNodeService(
            args.store, spec, cluster_spec, args.node_id, config,
            num_shards=args.shards,
            byte_budget=args.budget,
            fsync=args.fsync,
            retention_window=args.retain,
        )
        cluster_banner = (
            f", cluster member {args.node_id} of "
            f"{len(cluster_spec.nodes)} (replication "
            f"{cluster_spec.replication})"
        )
    else:
        service = FleetService(
            args.store, spec, config,
            num_shards=args.shards,
            byte_budget=args.budget,
            fsync=args.fsync,
            retention_window=args.retain,
        )

    async def _run() -> None:
        host, port = await service.start()
        print(f"bugnet serve: listening on {host}:{port} "
              f"(store {args.store}, {workers} validation "
              f"worker{'s' if workers != 1 else ''}, "
              f"queue {args.queue_limit}{cluster_banner})", flush=True)
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, stop_event.set)
        except NotImplementedError:
            # Non-POSIX event loops (Windows) have no signal handlers;
            # fall back to the KeyboardInterrupt that asyncio.run
            # delivers on Ctrl-C.
            pass
        await stop_event.wait()
        print("bugnet serve: draining and shutting down", flush=True)
        await service.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        # Windows path (no loop signal handlers): Ctrl-C lands here
        # after asyncio.run tore the loop down; nothing left to drain.
        print("bugnet serve: interrupted", file=sys.stderr)
        return 130
    return 0


def _cmd_load_sim(args) -> int:
    """Drive a running ``bugnet serve`` with synthesized fleet traffic."""
    import asyncio

    from repro.fleet.loadsim import (
        ServiceClient,
        crosscheck_metrics,
        fetch_metrics,
        run_load_sim,
        synthesize_corpus,
    )
    from repro.fleet.wire import FrameError

    names = _parse_bug_names(args.bugs)
    if names is None:
        return 2
    _programs, items, failures = synthesize_corpus(
        args.runs, names, seed=args.seed, corrupt=args.corrupt,
        id_prefix=args.id_prefix,
        duplicate_fraction=args.duplicate_fraction,
    )
    check_metrics = not args.no_metrics_check
    cluster_spec = None
    if args.cluster is not None:
        from repro.fleet.cluster.topology import ClusterSpec

        cluster_spec = ClusterSpec.load(args.cluster)

    async def _scrape():
        """Parsed /metrics — one node's, or the cluster-wide sum."""
        if cluster_spec is None:
            return await fetch_metrics(args.host, args.port)
        from repro.fleet.cluster.admin import (
            aggregate_metrics,
            cluster_metrics,
        )

        return aggregate_metrics(await cluster_metrics(cluster_spec))

    async def _run():
        before = None
        if check_metrics:
            try:
                before = await _scrape()
            except (ConnectionError, OSError):
                before = None
        if cluster_spec is not None:
            from repro.fleet.cluster.router import run_cluster_load_sim

            report = await run_cluster_load_sim(
                cluster_spec, items,
                concurrency=args.concurrency,
                max_attempts=args.max_attempts,
                seed=args.seed,
            )
        else:
            report = await run_load_sim(
                args.host, args.port, items,
                concurrency=args.concurrency,
                max_attempts=args.max_attempts,
                seed=args.seed,
            )
        stats = after = None
        if cluster_spec is not None:
            from repro.fleet.cluster.admin import (
                aggregate_stats,
                cluster_stats,
            )

            stats = aggregate_stats(await cluster_stats(cluster_spec))
        else:
            client = ServiceClient(args.host, args.port)
            try:
                stats = await client.stats()
            except (ConnectionError, OSError, FrameError):
                # Best-effort epilogue: the service may have gone away
                # (or cut the reply short) after the uploads finished;
                # the load report itself still stands.
                pass
            finally:
                await client.close()
        if before is not None:
            try:
                after = await _scrape()
            except (ConnectionError, OSError):
                after = None
        return report, stats, before, after

    report, stats, before, after = asyncio.run(_run())
    payload = report.to_dict()
    payload["non_crashing_runs"] = failures
    mismatches: "list[str]" = []
    if check_metrics:
        # Cross-check the client's tallies against the server's
        # /metrics counter deltas: the two bookkeepers counted the same
        # run independently, so any disagreement is a lost-update bug
        # (or a scrape that couldn't happen — reported, not fatal).
        if before is None or after is None:
            payload["metrics_check"] = "unavailable (no /metrics scrape)"
        else:
            mismatches, note = crosscheck_metrics(before, after, report)
            payload["metrics_check"] = (
                note or ("mismatch" if mismatches else "ok"))
            if mismatches:
                payload["metrics_mismatches"] = mismatches
    if args.json:
        payload["service_stats"] = stats
        print(json.dumps(payload, indent=2))
    else:
        print(f"load-sim: {payload['uploads']} upload(s) over "
              f"{args.concurrency} connection(s) in "
              f"{payload['elapsed_sec']}s "
              f"({payload['reports_per_sec']} reports/s)")
        print(f"  accepted {payload['accepted']} "
              f"(duplicates {payload['duplicates']}), "
              f"rejected {payload['rejected']}, "
              f"failed {payload['failed']}")
        print(f"  backpressure retries {payload['backpressure_retries']}, "
              f"reconnects {payload['reconnects']}")
        print(f"  ack latency p50 {payload['latency_p50_ms']}ms, "
              f"p90 {payload['latency_p90_ms']}ms, "
              f"p99 {payload['latency_p99_ms']}ms")
        if "metrics_check" in payload:
            print(f"  metrics cross-check: {payload['metrics_check']}")
            for mismatch in mismatches:
                print(f"    {mismatch}", file=sys.stderr)
        if stats:
            store = stats["store"]
            if cluster_spec is not None:
                reach = stats.get("reachable", [])
                print(f"  cluster: {len(reach)}/{len(cluster_spec.nodes)} "
                      f"node(s) reachable, {store['reports']} stored "
                      f"report(s) fleet-wide (replica copies included)")
            else:
                print(f"  service: queue depth {stats['queue_depth']}, "
                      f"store {store['reports']} report(s) across "
                      f"{store['num_shards']} shard(s)")
    if mismatches:
        print("error: client tallies disagree with server /metrics "
              "counters", file=sys.stderr)
        return 1
    return 1 if report.failed else 0


def _cmd_route(args) -> int:
    """Run the thin forwarding proxy until SIGINT/SIGTERM."""
    import asyncio
    import signal

    from repro.fleet.cluster.router import RouterService
    from repro.fleet.cluster.topology import ClusterSpec

    spec = ClusterSpec.load(args.cluster)
    service = RouterService(spec, host=args.host, port=args.port)

    async def _run() -> None:
        host, port = await service.start()
        print(f"bugnet route: listening on {host}:{port} "
              f"(forwarding into {len(spec.nodes)} node(s), "
              f"replication {spec.replication})", flush=True)
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, stop_event.set)
        except NotImplementedError:
            pass
        await stop_event.wait()
        print("bugnet route: shutting down", flush=True)
        await service.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("bugnet route: interrupted", file=sys.stderr)
        return 130
    return 0


def _metrics_to_jsonable(samples: dict) -> dict:
    """Parsed-Prometheus samples with tuple label keys flattened for
    JSON output."""
    return {
        name: [
            {"labels": dict(labels), "value": value}
            for labels, value in sorted(series.items())
        ]
        for name, series in sorted(samples.items())
    }


def _cmd_cluster(args) -> int:
    """Cluster-wide reads (quorum stats/metrics/triage/autopsy) and
    planned topology change (add-node/decommission)."""
    import asyncio

    from repro.fleet.cluster import admin
    from repro.fleet.cluster.topology import ClusterSpec

    try:
        spec = ClusterSpec.load(args.spec)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.action == "add-node":
        return _cluster_add_node(args, spec)
    if args.action == "decommission":
        return _cluster_decommission(args)
    if args.action == "stats":
        read = asyncio.run(admin.cluster_stats_quorum(spec))
        aggregate = read["aggregate"]
        quorum = read["quorum"]
        status = 0
        if args.check and (quorum["unreachable"] or not quorum["ok"]):
            status = 1
        if args.json:
            print(json.dumps({"aggregate": aggregate,
                              "quorum": quorum,
                              "per_node": read["per_node"]}, indent=2))
            if status:
                if quorum["unreachable"]:
                    print(f"error: unreachable node(s): "
                          f"{', '.join(quorum['unreachable'])}",
                          file=sys.stderr)
                if not quorum["ok"]:
                    print(f"error: quorum not met: "
                          f"{len(quorum['consistent'])} epoch-consistent "
                          f"answer(s), need {quorum['required']}",
                          file=sys.stderr)
            return status
        counters = aggregate["counters"]
        print(f"cluster: epoch {quorum['epoch']}, "
              f"{len(quorum['consistent'])}/{aggregate['nodes']} node(s) "
              f"answering at quorum epoch "
              f"(quorum {'met' if quorum['ok'] else 'NOT met'}: "
              f"needs {quorum['required']})")
        if quorum["stale"]:
            print(f"  stale epoch (answers excluded): "
                  f"{', '.join(quorum['stale'])}")
        if quorum["unreachable"]:
            print(f"  unreachable: {', '.join(quorum['unreachable'])}")
        print(f"  uploads: {counters['received']} received, "
              f"{counters['accepted']} accepted, "
              f"{counters['rejected']} rejected, "
              f"{counters['duplicates']} duplicate(s)")
        cluster_counters = aggregate["cluster"]
        print(f"  cluster: {cluster_counters['forwarded']} forwarded, "
              f"{cluster_counters['replicated_out']} replicated, "
              f"{cluster_counters['handoff_reports']} handed off, "
              f"{cluster_counters['spec_updates']} spec update(s)")
        store = aggregate["store"]
        print(f"  store: {store['reports']} resident report(s) "
              f"fleet-wide ({store['evicted_reports']} evicted)")
        if status:
            if quorum["unreachable"]:
                print(f"error: unreachable node(s): "
                      f"{', '.join(quorum['unreachable'])}",
                      file=sys.stderr)
            if not quorum["ok"]:
                print(f"error: quorum not met: "
                      f"{len(quorum['consistent'])} epoch-consistent "
                      f"answer(s), need {quorum['required']}",
                      file=sys.stderr)
        return status
    if args.action == "metrics":
        per_node = asyncio.run(admin.cluster_metrics(spec))
        aggregate = admin.aggregate_metrics(per_node)
        status = 0
        check_note = None
        mismatches: "list[str]" = []
        if args.check:
            stats = admin.aggregate_stats(
                asyncio.run(admin.cluster_stats(spec))
            )
            mismatches = admin.reconcile(aggregate, stats)
            check_note = "ok" if not mismatches else "mismatch"
            status = 1 if mismatches else 0
        if args.json:
            payload = {"metrics": _metrics_to_jsonable(aggregate)}
            if check_note is not None:
                payload["check"] = check_note
                payload["mismatches"] = mismatches
            print(json.dumps(payload, indent=2))
            return status
        for name, series in sorted(aggregate.items()):
            for labels, value in sorted(series.items()):
                rendered = ",".join(
                    f'{key}="{val}"' for key, val in labels
                )
                suffix = f"{{{rendered}}}" if rendered else ""
                print(f"{name}{suffix} {value:g}")
        if check_note is not None:
            print(f"# reconciliation vs summed /stats: {check_note}")
            for mismatch in mismatches:
                print(f"#   {mismatch}", file=sys.stderr)
        return status
    # triage / autopsy: both start from the quorum-read bucket merge
    read = asyncio.run(admin.cluster_triage(spec))
    buckets = read["buckets"]
    quorum = read["quorum"]
    if args.action == "autopsy":
        return _cluster_autopsy(args, spec, buckets, quorum)
    shown = buckets if args.limit is None else buckets[:args.limit]
    if args.json:
        print(json.dumps({"buckets": shown,
                          "total_buckets": len(buckets),
                          "quorum": quorum}, indent=2))
        return 0 if quorum["ok"] else 1
    if not quorum["ok"]:
        print(f"error: quorum not met at epoch {quorum['epoch']}: "
              f"{len(quorum['consistent'])} consistent answer(s), need "
              f"{quorum['required']}"
              + (f" (stale: {', '.join(quorum['stale'])})"
                 if quorum["stale"] else "")
              + (f" (unreachable: {', '.join(quorum['unreachable'])})"
                 if quorum["unreachable"] else ""),
              file=sys.stderr)
        return 1
    if not buckets:
        print("cluster stores are empty: 0 reports to triage")
        return 0
    print(f"Cluster triage at epoch {quorum['epoch']} "
          f"(distinct uploads, replicas deduplicated)")
    if quorum["stale"]:
        print(f"  [stale-epoch answers excluded: "
              f"{', '.join(quorum['stale'])}]")
    for rank, bucket in enumerate(shown, start=1):
        racy = " [racy]" if bucket.get("racy") else ""
        count = str(bucket["count"])
        if bucket.get("rolled_up"):
            count = (f"{bucket['total_count']} "
                     f"({bucket['rolled_up']} evicted)")
        rep = bucket.get("representative")
        where = (f"shard-{rep['shard']:02d}/{rep['filename']}"
                 if rep else "(all blobs evicted)")
        print(f"  {rank:>2}. {bucket['signature'][:12]} "
              f"{bucket['program']} {bucket['fault_kind']}{racy} "
              f"count={count} {where}")
    if args.limit is not None and len(buckets) > args.limit:
        print(f"  ... and {len(buckets) - args.limit} more bucket(s)")
    return 0


def _cluster_autopsy(args, spec, buckets, quorum) -> int:
    """Root-cause cluster buckets: pull each representative report from
    a quorum-consistent replica and autopsy it locally."""
    import asyncio

    from repro.fleet.cluster import admin
    from repro.forensics.autopsy import bug_suite_resolver, perform_autopsy
    from repro.tracing.serialize import load_crash_report

    if not quorum["ok"]:
        print(f"error: quorum not met at epoch {quorum['epoch']}: "
              f"cannot trust the bucket merge", file=sys.stderr)
        return 1
    consistent = set(quorum["consistent"])
    members = [m for m in spec.nodes if m.node_id in consistent]
    resolver = bug_suite_resolver()
    shown = buckets if args.limit is None else buckets[:args.limit]
    results = []
    rendered: "dict[str, str]" = {}
    failed = 0
    for bucket in shown:
        upload_ids = bucket.get("upload_ids", ())
        fetched = None
        for upload_id in upload_ids:
            for member in members:
                fetched = asyncio.run(
                    admin.fetch_report_blob(member, upload_id)
                )
                if fetched is not None:
                    break
            if fetched is not None:
                break
        entry = {"signature": bucket["signature"],
                 "program": bucket.get("program", ""),
                 "count": bucket.get("count", 0)}
        if fetched is None:
            entry["error"] = "no quorum replica served the report"
            failed += 1
            results.append(entry)
            continue
        _meta, blob = fetched
        program = resolver(bucket.get("program", ""))
        if program is None:
            entry["error"] = (f"unknown program "
                              f"{bucket.get('program', '')!r}")
            failed += 1
            results.append(entry)
            continue
        try:
            report, config = load_crash_report(blob)
            autopsy = perform_autopsy(report, config, program)
        except Exception as error:  # noqa: BLE001 — per-bucket isolation
            entry["error"] = f"autopsy failed: {error}"
            failed += 1
            results.append(entry)
            continue
        entry["autopsy"] = autopsy.to_dict()
        rendered[bucket["signature"]] = autopsy.render()
        results.append(entry)
    if args.json:
        print(json.dumps({"buckets": results, "failed": failed,
                          "quorum": quorum}, indent=2))
        return 1 if failed else 0
    print(f"Cluster autopsy at epoch {quorum['epoch']} "
          f"({len(results)} bucket(s))")
    for entry in results:
        if "error" in entry:
            print(f"== bucket {entry['signature'][:12]}: {entry['error']}",
                  file=sys.stderr)
            continue
        print(f"== bucket {entry['signature'][:12]} "
              f"({entry['count']} report(s))")
        print(rendered[entry["signature"]])
        print()
    return 1 if failed else 0


def _cluster_add_node(args, spec) -> int:
    """``bugnet cluster add-node``: joining epoch → stream → flip."""
    import asyncio

    from repro.fleet.cluster import admin

    if not args.node_id or not args.node_port:
        print("error: add-node needs --node-id and --node-port",
              file=sys.stderr)
        return 2
    if spec.has_node(args.node_id):
        print(f"error: node {args.node_id!r} is already a member",
              file=sys.stderr)
        return 2
    print(f"add-node {args.node_id}: minting joining epoch "
          f"{spec.epoch + 1} and pushing it to "
          f"{len(spec.nodes)} member(s)")
    print(f"  start the new node now (it may also already be running):")
    print(f"    bugnet serve --store <store> --cluster {args.spec} "
          f"--node-id {args.node_id}")
    try:
        summary = asyncio.run(admin.add_node(
            args.spec, args.node_id, args.node_host, args.node_port,
            poll_interval=args.poll, timeout=args.timeout,
        ))
    except (TimeoutError, ValueError, RuntimeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"  streamed {summary['streamed']} report(s) across "
          f"{summary['ranges']} remapped range(s) "
          f"(~{summary['range_span']:.1%} of the keyspace)")
    print(f"  committed epoch {summary['epochs']['final']}: "
          f"{args.node_id} is active")
    return 0


def _cluster_decommission(args) -> int:
    """``bugnet cluster decommission``: draining epoch → drain → drop."""
    import asyncio

    from repro.fleet.cluster import admin

    if not args.node_id:
        print("error: decommission needs --node-id", file=sys.stderr)
        return 2
    try:
        summary = asyncio.run(admin.decommission(
            args.spec, args.node_id,
            poll_interval=args.poll, timeout=args.timeout,
        ))
    except (TimeoutError, ValueError, RuntimeError, KeyError) as error:
        detail = error.args[0] if error.args else error
        print(f"error: {detail}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"decommission {args.node_id}: drained {summary['drained']} "
          f"report(s) off the node "
          f"(~{summary['range_span']:.1%} of the keyspace re-homed)")
    print(f"  committed epoch {summary['epochs']['final']}: "
          f"{args.node_id} dropped from the spec "
          f"(stop its process when convenient)")
    return 0


def _cmd_profile(args) -> int:
    from repro.fleet.profile import profile_blob, render_profile
    from repro.fleet.signature import DEFAULT_TAIL_DEPTH

    tail_depth = args.tail if args.tail is not None else DEFAULT_TAIL_DEPTH
    targets: "list[tuple[str, bytes]]" = []
    if args.store is not None:
        if args.reports:
            print("error: give report files or --store, not both",
                  file=sys.stderr)
            return 2
        store = ReportStore(args.store)
        entries = store.entries()
        if args.bucket:
            entries = [e for e in entries
                       if e.digest.startswith(args.bucket)]
            if not entries:
                print(f"error: no stored report matches bucket prefix "
                      f"{args.bucket!r}", file=sys.stderr)
                return 2
        # Deterministic pick: most recent first (commonly the report
        # whose slowness prompted the profiling).
        entries = sorted(entries, key=lambda e: e.order_key, reverse=True)
        for entry in entries[:max(args.limit, 1)]:
            label = f"{entry.digest[:12]}/{entry.filename}"
            targets.append((label, store.path_of(entry).read_bytes()))
    else:
        paths, notes, errors = _expand_report_paths(args.reports)
        for note in notes:
            print(f"note: {note}", file=sys.stderr)
        if errors:
            for error in errors:
                print(f"error: {error}", file=sys.stderr)
            return 2
        if not paths:
            print("error: nothing to profile (give report files or "
                  "--store)", file=sys.stderr)
            return 2
        targets = [(str(path), path.read_bytes()) for path in paths]
    resolver = _store_resolver(args.source)
    results = [
        profile_blob(label, blob, resolver, tail_depth=tail_depth,
                     probe=not args.no_probe, repeat=args.repeat)
        for label, blob in targets
    ]
    if args.json:
        print(json.dumps([result.to_dict() for result in results], indent=2))
    else:
        print("\n\n".join(render_profile(result) for result in results))
    return 0 if all(result.accepted for result in results) else 1


def _cmd_disasm(args) -> int:
    program = _load_program(args.source)
    start = program.pc_of(args.start) if args.start else None
    print(listing(program, start=start, count=args.count,
                  annotate=args.annotate))
    return 0


def _lint_one(args) -> int:
    """``bugnet lint app.s``: findings for one program; exit 1 if any."""
    from repro.analysis.static.lint import lint_program

    program = _load_program(args.source)
    if args.entry:
        program.thread_entries = tuple(args.entry)
    findings = lint_program(program)
    if args.json:
        print(json.dumps({
            "program": program.name,
            "findings": [finding.to_dict() for finding in findings],
        }, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        print(f"{len(findings)} finding(s) in {args.source}")
    return 1 if findings else 0


def _verify_race_candidates() -> "tuple[int, list[str]]":
    """Run every multithreaded bug to its crash and check each
    dynamically inferred race lies in the static candidate set.

    Returns ``(races_checked, escapes)`` — an escape is a dynamic race
    the lockset analysis *proved* impossible, i.e. an analysis bug.
    """
    from repro.analysis.static.lockset import cached_race_candidates
    from repro.replay.races import ReportLogs, infer_races, replay_all_threads
    from repro.workloads.bugs import BUG_SUITE, run_bug

    checked = 0
    escapes: list[str] = []
    for bug in BUG_SUITE:
        if not bug.multithreaded:
            continue
        run = run_bug(bug, BugNetConfig(checkpoint_interval=20_000))
        report = run.result.crash
        if report is None:
            escapes.append(f"{bug.name}: did not crash")
            continue
        replay = replay_all_threads(
            ReportLogs(report),
            {tid: run.program for tid in report.thread_ids},
            run.machine.bugnet, fast=True,
        )
        races = infer_races(replay, sync=[])
        candidates = cached_race_candidates(run.program)
        if candidates is None:
            escapes.append(f"{bug.name}: static analysis failed")
            continue
        for race in races:
            checked += 1
            if not candidates.may_race(race.first[2], race.second[2]):
                escapes.append(f"{bug.name}: {race}")
    return checked, escapes


def _cmd_lint(args) -> int:
    """Static lint: one program, or the whole built-in corpus.

    Corpus mode is the CI gate: every clean SPEC-personality workload
    must produce zero findings, every bug annotated with an expected
    check must be flagged with it, and (with ``--verify-races``) every
    dynamically inferred race must lie inside the static race-candidate
    set.
    """
    if args.source:
        return _lint_one(args)
    from repro.analysis.static.lint import lint_program
    from repro.workloads.bugs import BUG_SUITE
    from repro.workloads.clean import CLEAN_SUITE

    programs = []
    failures: list[str] = []
    for clean in CLEAN_SUITE:
        findings = lint_program(clean.program())
        ok = not findings
        if not ok:
            failures.append(f"clean workload {clean.name} has "
                            f"{len(findings)} finding(s)")
        programs.append({
            "name": clean.name, "kind": "clean", "expected": None,
            "findings": [f.to_dict() for f in findings], "ok": ok,
        })
    for bug in BUG_SUITE:
        findings = lint_program(bug.program())
        checks = {finding.check for finding in findings}
        ok = bug.expected_lint is None or bug.expected_lint in checks
        if not ok:
            failures.append(
                f"bug {bug.name}: expected a {bug.expected_lint} "
                f"finding, got {sorted(checks) or 'none'}"
            )
        programs.append({
            "name": bug.name, "kind": "bug", "expected": bug.expected_lint,
            "findings": [f.to_dict() for f in findings], "ok": ok,
        })
    race_check = None
    if args.verify_races:
        checked, escapes = _verify_race_candidates()
        race_check = {"races_checked": checked, "escapes": escapes}
        failures.extend(f"race escape: {escape}" for escape in escapes)
    if args.json:
        payload = {"programs": programs, "ok": not failures,
                   "failures": failures}
        if race_check is not None:
            payload["race_check"] = race_check
        print(json.dumps(payload, indent=2))
    else:
        for entry in programs:
            status = "ok" if entry["ok"] else "FAIL"
            expected = (f" (expected {entry['expected']})"
                        if entry["expected"] else "")
            print(f"  {status:>4}  {entry['kind']:<5} {entry['name']}: "
                  f"{len(entry['findings'])} finding(s){expected}")
        if race_check is not None:
            print(f"  race candidates: {race_check['races_checked']} "
                  f"dynamic race(s) checked, "
                  f"{len(race_check['escapes'])} escape(s)")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    """The ``bugnet`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="bugnet",
        description="BugNet (ISCA 2005) reproduction: record, replay, debug.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a BN32 program under the recorder")
    run.add_argument("source")
    run.add_argument("--interval", type=int, default=100_000)
    run.add_argument("--threads", type=int, default=1)
    run.add_argument("--cores", type=int, default=1)
    run.add_argument("--timer", type=int, default=0)
    run.add_argument("--entry", action="append", default=[],
                     help="entry label per thread (repeatable)")
    run.add_argument("--input", default="",
                     help="string pushed to the input device")
    run.add_argument("--dma-delay", type=int, default=0)
    run.add_argument("--max-instructions", type=int, default=10_000_000)
    run.add_argument("--output", "-o", default=None,
                     help="write the crash report here on a fault")
    run.set_defaults(func=_cmd_run)

    report = sub.add_parser("report", help="summarize a crash report")
    report.add_argument("report")
    report.add_argument("--json", action="store_true",
                        help="machine-readable output")
    report.set_defaults(func=_cmd_report)

    ingest = sub.add_parser(
        "ingest", help="validate crash reports into a fleet store")
    ingest.add_argument("reports", nargs="+",
                        help="crash report file(s) to ingest")
    ingest.add_argument("--store", default=None,
                        help="fleet store directory (created if missing); "
                             "required unless --cluster")
    ingest.add_argument("--cluster", default=None,
                        help="cluster spec JSON: upload the reports to a "
                             "live cluster (ring-routed) instead of a "
                             "local store")
    ingest.add_argument("--source", action="append", default=[],
                        help="program binary the reports name (repeatable)")
    ingest.add_argument("--shards", type=int, default=None,
                        help="consistent-hash shards for a NEW store "
                             "(default 8); an existing store's ring shape "
                             "is inherited and immutable")
    ingest.add_argument("--budget", type=int, default=None,
                        help="store byte budget (oldest reports evicted)")
    ingest.add_argument("--workers", type=int, default=1,
                        help="validation worker threads (overlaps decode "
                             "I/O; replay itself is GIL-bound)")
    ingest.add_argument("--no-probe", action="store_true",
                        help="skip re-executing the faulting instruction")
    ingest.add_argument("--no-admit-cache", action="store_true",
                        help="fully validate every report (skip the "
                             "dedup-before-validate admission cache)")
    ingest.add_argument("--reverify-fraction", type=float, default=0.05,
                        help="deterministic fraction of cache-hit repeats "
                             "that still replay in full (trust-but-verify; "
                             "default 0.05)")
    ingest.add_argument("--json", action="store_true")
    ingest.set_defaults(func=_cmd_ingest)

    triage = sub.add_parser(
        "triage", help="rank a fleet store's crash buckets")
    triage.add_argument("--store", required=True)
    triage.add_argument("--limit", type=int, default=None,
                        help="show only the top N buckets")
    triage.add_argument("--autopsy", action="store_true",
                        help="link each bucket to its automated root cause")
    triage.add_argument("--binary", action="append", default=[],
                        help="program source for autopsy resolution "
                             "(repeatable; bug-suite names resolve "
                             "automatically)")
    triage.add_argument("--workers", type=int, default=1,
                        help="autopsy worker threads")
    triage.add_argument("--json", action="store_true")
    triage.set_defaults(func=_cmd_triage)

    autopsy = sub.add_parser(
        "autopsy",
        help="automated root-cause analysis (one report, or a whole store)",
    )
    autopsy.add_argument("source", nargs="?", default=None,
                         help="program source (single-report mode)")
    autopsy.add_argument("report", nargs="?", default=None,
                         help="crash report file (single-report mode)")
    autopsy.add_argument("--store", default=None,
                         help="fleet store: autopsy every triage bucket")
    autopsy.add_argument("--binary", action="append", default=[],
                         help="program source for store mode (repeatable; "
                              "bug-suite names resolve automatically)")
    autopsy.add_argument("--workers", type=int, default=1,
                         help="analysis worker threads (store mode)")
    autopsy.add_argument("--limit", type=int, default=None,
                         help="autopsy only the top N buckets")
    autopsy.add_argument("--no-races", action="store_true",
                         help="skip race inference on multithreaded reports")
    autopsy.add_argument("--json", action="store_true")
    autopsy.set_defaults(func=_cmd_autopsy)

    fleet = sub.add_parser(
        "fleet-sim",
        help="synthesize fleet crash traffic from the Table-1 bug suite",
    )
    fleet.add_argument("--runs", type=int, default=50)
    fleet.add_argument("--bugs", default=None,
                       help="comma-separated bug names; aliases: "
                            "'default' (fast subset), 'mt' (multithreaded "
                            "racy traffic)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--corrupt", type=int, default=2,
                       help="corrupted blobs to inject (must be rejected)")
    fleet.add_argument("--store", default=None,
                       help="fleet store directory (default: fresh temp dir)")
    fleet.add_argument("--shards", type=int, default=None,
                       help="consistent-hash shards for a NEW store "
                            "(default 8); an existing store's ring shape "
                            "is inherited and immutable")
    fleet.add_argument("--budget", type=int, default=None)
    fleet.add_argument("--workers", type=int, default=1)
    fleet.add_argument("--nodes", type=int, default=None,
                       help="run the corpus against a real N-node "
                            "subprocess cluster (ring routing, "
                            "replication, kill -9 mid-load) instead of "
                            "the in-process batch pipeline")
    fleet.add_argument("--replication", type=int, default=2,
                       help="cluster mode: replica copies per report")
    fleet.add_argument("--no-kill", action="store_true",
                       help="cluster mode: skip the mid-load kill -9")
    fleet.add_argument("--elastic", action="store_true",
                       help="cluster mode: mid-load add-node + "
                            "decommission instead of the kill "
                            "(epoch/quorum contract checks)")
    fleet.add_argument("--concurrency", type=int, default=4,
                       help="cluster mode: concurrent uploader connections")
    fleet.add_argument("--retain", type=int, default=None,
                       help="cluster mode: per-node retention window "
                            "(logical observed_at units)")
    fleet.add_argument("--duplicate-fraction", type=float, default=0.0,
                       help="fraction of runs that re-upload an earlier "
                            "blob under a fresh upload id "
                            "(duplicate-dominated fleet traffic)")
    fleet.add_argument("--no-admit-cache", action="store_true",
                       help="fully validate every report (skip the "
                            "dedup-before-validate admission cache)")
    fleet.add_argument("--reverify-fraction", type=float, default=0.05,
                       help="deterministic fraction of cache-hit repeats "
                            "that still replay in full (default 0.05)")
    fleet.add_argument("--json", action="store_true")
    fleet.set_defaults(func=_cmd_fleet_sim)

    serve = sub.add_parser(
        "serve", help="run the live crash-report ingestion endpoint")
    serve.add_argument("--store", required=True,
                       help="fleet store directory (created if missing)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7077,
                       help="TCP port (0: pick a free one)")
    serve.add_argument("--source", action="append", default=[],
                       help="program binary uploads may name (repeatable; "
                            "bug-suite names always resolve unless "
                            "--no-bug-suite)")
    serve.add_argument("--no-bug-suite", action="store_true",
                       help="do not resolve Table-1 bug-suite programs")
    serve.add_argument("--workers", type=int, default=None,
                       help="validation processes (default: cores-1, "
                            "capped; 0 = validate in-process, best on "
                            "single-core hosts)")
    serve.add_argument("--queue-limit", type=int, default=128,
                       help="admission bound; beyond it uploads get an "
                            "explicit retry-later")
    serve.add_argument("--validate-chunk", type=int, default=8,
                       help="max uploads per validation handoff")
    serve.add_argument("--commit-batch", type=int, default=16,
                       help="max accepted reports per store commit")
    serve.add_argument("--shards", type=int, default=None,
                       help="consistent-hash shards for a NEW store "
                            "(default 8); an existing store's ring shape "
                            "is inherited and immutable")
    serve.add_argument("--budget", type=int, default=None,
                       help="store byte budget (oldest reports evicted)")
    serve.add_argument("--retain", type=int, default=None,
                       help="retention window in logical observed_at "
                            "units; older blobs are compacted away, "
                            "their counts surviving in rollups")
    serve.add_argument("--cluster", default=None,
                       help="cluster spec JSON: serve as a cluster member "
                            "(ring ownership, replication, gossip, "
                            "anti-entropy) — requires --node-id; the "
                            "member's host/port come from the spec")
    serve.add_argument("--node-id", default=None,
                       help="this node's id in the --cluster spec")
    serve.add_argument("--fsync", action="store_true",
                       help="fsync commits (survive OS crash, not just "
                            "process death)")
    serve.add_argument("--no-probe", action="store_true",
                       help="skip re-executing the faulting instruction")
    serve.add_argument("--no-admit-cache", action="store_true",
                       help="fully validate every upload (skip the "
                            "dedup-before-validate admission cache)")
    serve.add_argument("--reverify-fraction", type=float, default=0.05,
                       help="deterministic fraction of cache-hit repeats "
                            "that still replay in full (trust-but-verify; "
                            "default 0.05)")
    serve.add_argument("--admit-seed", type=int, default=0,
                       help="seed of the reverify sample (every cluster "
                            "node must share it)")
    serve.add_argument("--log-json", action="store_true",
                       help="emit one structured JSON log line per "
                            "admission outcome (and service lifecycle "
                            "events) on stdout")
    serve.set_defaults(func=_cmd_serve)

    loadsim = sub.add_parser(
        "load-sim",
        help="drive a running `bugnet serve` with synthetic fleet traffic",
    )
    loadsim.add_argument("--host", default="127.0.0.1")
    loadsim.add_argument("--port", type=int, default=7077)
    loadsim.add_argument("--cluster", default=None,
                         help="cluster spec JSON: ring-route uploads "
                              "across the members (with node-death "
                              "failover) instead of one host:port")
    loadsim.add_argument("--runs", type=int, default=50,
                         help="crashing runs to synthesize and upload")
    loadsim.add_argument("--bugs", default=None,
                         help="comma-separated bug names; aliases: "
                              "'default' (fast subset), 'mt' "
                              "(multithreaded racy traffic)")
    loadsim.add_argument("--seed", type=int, default=0)
    loadsim.add_argument("--corrupt", type=int, default=2,
                         help="corrupted blobs to inject (must be rejected)")
    loadsim.add_argument("--duplicate-fraction", type=float, default=0.0,
                         help="fraction of runs that re-upload an earlier "
                              "blob under a fresh upload id "
                              "(duplicate-dominated fleet traffic)")
    loadsim.add_argument("--concurrency", type=int, default=8,
                         help="concurrent uploader connections")
    loadsim.add_argument("--max-attempts", type=int, default=60,
                         help="attempts per upload before giving up "
                              "(covers backpressure and reconnects)")
    loadsim.add_argument("--id-prefix", default="sim",
                         help="upload-id prefix (stable ids make retries "
                              "idempotent across service restarts)")
    loadsim.add_argument("--no-metrics-check", action="store_true",
                         help="skip scraping /metrics and cross-checking "
                              "client tallies against server counters")
    loadsim.add_argument("--json", action="store_true")
    loadsim.set_defaults(func=_cmd_load_sim)

    route = sub.add_parser(
        "route",
        help="run a thin forwarding proxy into a serve cluster "
             "(for clients that cannot load the cluster spec)",
    )
    route.add_argument("--cluster", required=True,
                       help="cluster spec JSON")
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=7070,
                       help="TCP port the proxy listens on (0: pick one)")
    route.set_defaults(func=_cmd_route)

    cluster = sub.add_parser(
        "cluster",
        help="cluster-wide views and planned topology change over a "
             "running serve cluster",
    )
    cluster.add_argument("action",
                         choices=("stats", "metrics", "triage", "autopsy",
                                  "add-node", "decommission"),
                         help="stats: quorum-read aggregated /stats; "
                              "metrics: aggregated /metrics; triage: "
                              "quorum-read buckets merged by signature; "
                              "autopsy: root-cause each quorum bucket's "
                              "representative; add-node: grow the ring "
                              "(stream, then flip); decommission: drain "
                              "a node and drop it")
    cluster.add_argument("--cluster", required=True, dest="spec",
                         help="cluster spec JSON")
    cluster.add_argument("--check", action="store_true",
                         help="stats: exit 1 naming unreachable nodes or "
                              "a failed quorum; metrics: reconcile "
                              "aggregated /metrics against summed "
                              "per-node /stats (exit 1 on mismatch)")
    cluster.add_argument("--limit", type=int, default=None,
                         help="triage/autopsy: only the top N buckets")
    cluster.add_argument("--node-id", default=None,
                         help="add-node/decommission: the member to add "
                              "or drain")
    cluster.add_argument("--node-host", default="127.0.0.1",
                         help="add-node: host of the new member")
    cluster.add_argument("--node-port", type=int, default=None,
                         help="add-node: port of the new member")
    cluster.add_argument("--timeout", type=float, default=60.0,
                         help="add-node/decommission: seconds to wait "
                              "for range streaming to converge")
    cluster.add_argument("--poll", type=float, default=0.25,
                         help="add-node/decommission: convergence poll "
                              "interval")
    cluster.add_argument("--json", action="store_true")
    cluster.set_defaults(func=_cmd_cluster)

    profile = sub.add_parser(
        "profile",
        help="replay a report (or stored bucket) under the span recorder "
             "and print a per-stage validation breakdown",
    )
    profile.add_argument("reports", nargs="*", default=[],
                         help="crash report file(s) (file mode)")
    profile.add_argument("--source", action="append", default=[],
                         help="program binary the report(s) may name "
                              "(repeatable; bug-suite names resolve "
                              "automatically)")
    profile.add_argument("--store", default=None,
                         help="fleet store: profile stored reports instead "
                              "of files")
    profile.add_argument("--bucket", default=None,
                         help="store mode: only reports whose signature "
                              "digest starts with this prefix")
    profile.add_argument("--limit", type=int, default=1,
                         help="store mode: profile at most N reports "
                              "(default 1)")
    profile.add_argument("--tail", type=int, default=None,
                         help="replay tail depth (default: ingest default)")
    profile.add_argument("--repeat", type=int, default=1,
                         help="validate N times, report the fastest "
                              "(warm compiled-plan cache = steady-state "
                              "fleet cost)")
    profile.add_argument("--no-probe", action="store_true",
                         help="skip re-executing the faulting instruction")
    profile.add_argument("--json", action="store_true")
    profile.set_defaults(func=_cmd_profile)

    replay = sub.add_parser("replay", help="replay a crash report")
    replay.add_argument("source")
    replay.add_argument("report")
    replay.add_argument("--tid", type=int, default=None)
    replay.add_argument("--tail", type=int, default=10,
                        help="disassembled instructions to print from the end")
    replay.set_defaults(func=_cmd_replay)

    debug = sub.add_parser("debug", help="breakpoint/watchpoint session")
    debug.add_argument("source")
    debug.add_argument("report")
    debug.add_argument("--tid", type=int, default=None)
    debug.add_argument("--break", dest="breakpoints", action="append",
                       default=[], help="label or pc to break on")
    debug.add_argument("--watch", action="append", default=[],
                       help="memory range to watch: ADDR or ADDR:SIZE")
    debug.add_argument("--stops", type=int, default=5,
                       help="maximum stops to report")
    debug.add_argument("--why", action="append", default=[],
                       help="explain a register or address value at the "
                            "final stop (repeatable)")
    debug.set_defaults(func=_cmd_debug)

    disasm = sub.add_parser("disasm", help="disassemble a program")
    disasm.add_argument("source")
    disasm.add_argument("--start", default=None)
    disasm.add_argument("--count", type=int, default=24)
    disasm.add_argument("--annotate", action="store_true",
                        help="mark basic-block leaders and successors")
    disasm.set_defaults(func=_cmd_disasm)

    lint = sub.add_parser(
        "lint",
        help="static analysis findings for a program (or the whole "
             "built-in corpus)",
    )
    lint.add_argument("source", nargs="?", default=None,
                      help="BN32 source file; omit to lint the bug suite "
                           "and the clean SPEC workloads")
    lint.add_argument("--entry", action="append", default=[],
                      help="declare a thread entry label (repeatable; "
                           "single-program mode)")
    lint.add_argument("--verify-races", action="store_true",
                      help="corpus mode: additionally run every "
                           "multithreaded bug and check each dynamic race "
                           "lies in the static candidate set")
    lint.add_argument("--json", action="store_true")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
