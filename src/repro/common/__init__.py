"""Shared low-level utilities: bit-exact log encoding, word arithmetic,
configuration dataclasses and the error hierarchy.

Everything in :mod:`repro` builds on these primitives.  They are kept
dependency-free (pure standard library) so the tracing and replay layers
can rely on them without import cycles.
"""

from repro.common.bits import BitReader, BitWriter, bits_for, sign_extend, to_signed, to_unsigned
from repro.common.config import (
    BugNetConfig,
    CacheConfig,
    DictionaryConfig,
    MachineConfig,
)
from repro.common.errors import (
    AlignmentFault,
    ArithmeticFault,
    AssemblerError,
    Fault,
    InstructionFault,
    LogDecodeError,
    MemoryFault,
    ReplayDivergence,
    ReproError,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "bits_for",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "BugNetConfig",
    "CacheConfig",
    "DictionaryConfig",
    "MachineConfig",
    "Fault",
    "MemoryFault",
    "AlignmentFault",
    "ArithmeticFault",
    "InstructionFault",
    "AssemblerError",
    "LogDecodeError",
    "ReplayDivergence",
    "ReproError",
]
