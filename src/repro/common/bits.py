"""Bit-exact stream encoding used by the BugNet log formats.

The paper's First-Load Log packs entries at bit granularity:
``(LC-Type: 1 bit, L-Count: 5 or log2(interval) bits, LV-Type: 1 bit,
value: 6 or 32 bits)``.  :class:`BitWriter` and :class:`BitReader`
implement an MSB-first bit stream so the encoded sizes we measure are
exactly the sizes the hardware would produce.
"""

from __future__ import annotations

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF


def to_unsigned(value: int) -> int:
    """Wrap *value* into an unsigned 32-bit word (two's complement)."""
    return value & WORD_MASK


def to_signed(value: int) -> int:
    """Interpret a 32-bit word as a signed two's-complement integer."""
    value &= WORD_MASK
    if value & 0x80000000:
        return value - 0x100000000
    return value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low *bits* of *value* to a Python int."""
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def bits_for(maximum: int) -> int:
    """Number of bits needed to represent values in ``[0, maximum]``.

    This is the paper's ``log(checkpoint interval length)`` sizing rule
    for full L-Count and IC fields.
    """
    if maximum < 0:
        raise ValueError("maximum must be non-negative")
    return max(1, maximum.bit_length())


class BitWriter:
    """Append-only MSB-first bit stream.

    >>> w = BitWriter()
    >>> w.write(0b101, 3)
    >>> w.write(0x3, 2)
    >>> w.bit_length
    5
    """

    def __init__(self) -> None:
        self._chunks: list[tuple[int, int]] = []
        self._bits = 0

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return self._bits

    @property
    def byte_length(self) -> int:
        """Size in bytes if the stream were flushed now (rounded up)."""
        return (self._bits + 7) // 8

    def write(self, value: int, bits: int) -> None:
        """Append the low *bits* of *value* (must be non-negative)."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        if value < 0:
            raise ValueError("value must be non-negative; wrap signed values first")
        if value >> bits:
            raise ValueError(f"value {value} does not fit in {bits} bits")
        self._chunks.append((value, bits))
        self._bits += bits

    def write_bool(self, flag: bool) -> None:
        """Append a single flag bit."""
        self.write(1 if flag else 0, 1)

    def extend(self, chunks: list[tuple[int, int]]) -> None:
        """Bulk-append ``(value, bits)`` pairs (the batched fast path).

        Produces exactly the stream that calling :meth:`write` once per
        pair would, at a fraction of the dispatch cost.  Adjacent fields
        may be pre-fused by the caller (``write(a, m); write(b, n)`` ==
        ``write((a << n) | b, m + n)``) — the MSB-first stream is
        invariant under such fusion.
        """
        total = 0
        for value, bits in chunks:
            if bits <= 0:
                raise ValueError("bits must be positive")
            if value < 0:
                raise ValueError(
                    "value must be non-negative; wrap signed values first"
                )
            if value >> bits:
                raise ValueError(f"value {value} does not fit in {bits} bits")
            total += bits
        self._chunks.extend(chunks)
        self._bits += total

    def write_word(self, value: int) -> None:
        """Append a full 32-bit word."""
        self.write(value & WORD_MASK, WORD_BITS)

    def getvalue(self) -> bytes:
        """Flush to bytes, zero-padding the final partial byte."""
        out = bytearray()
        acc = 0
        acc_bits = 0
        for value, bits in self._chunks:
            acc = (acc << bits) | value
            acc_bits += bits
            while acc_bits >= 8:
                acc_bits -= 8
                out.append((acc >> acc_bits) & 0xFF)
                acc &= (1 << acc_bits) - 1
        if acc_bits:
            out.append((acc << (8 - acc_bits)) & 0xFF)
        return bytes(out)


class BitReader:
    """MSB-first reader over bytes produced by :class:`BitWriter`."""

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = data
        self._pos = 0
        self._limit = len(data) * 8 if bit_length is None else bit_length
        if self._limit > len(data) * 8:
            raise ValueError("bit_length exceeds available data")

    @property
    def position(self) -> int:
        """Current bit offset from the start of the stream."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return self._limit - self._pos

    def read(self, bits: int) -> int:
        """Read *bits* bits and return them as an unsigned int."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        if self._pos + bits > self._limit:
            raise EOFError(f"bit stream exhausted reading {bits} bits")
        value = 0
        pos = self._pos
        end = pos + bits
        while pos < end:
            byte = self._data[pos >> 3]
            bit_in_byte = pos & 7
            take = min(8 - bit_in_byte, end - pos)
            shift = 8 - bit_in_byte - take
            piece = (byte >> shift) & ((1 << take) - 1)
            value = (value << take) | piece
            pos += take
        self._pos = end
        return value

    def read_bool(self) -> bool:
        """Read a single flag bit."""
        return bool(self.read(1))

    def read_word(self) -> int:
        """Read a full 32-bit word."""
        return self.read(WORD_BITS)
