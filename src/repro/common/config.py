"""Configuration dataclasses shared across the simulator and the recorder.

The defaults mirror the paper's evaluated design point: a 64-entry
dictionary, 5-bit reduced L-Count, 16 KB Checkpoint Buffer, 32 KB Memory
Race Buffer, and a 10 M-instruction checkpoint interval (most of our
experiments run the 1:100-scaled 100 K interval; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.bits import bits_for


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Sizes are in bytes.  ``block_size`` must be a power-of-two multiple
    of the 4-byte word, because first-load bits are tracked per word.
    """

    size: int
    associativity: int
    block_size: int = 64

    def __post_init__(self) -> None:
        if self.block_size % 4 or self.block_size & (self.block_size - 1):
            raise ValueError("block_size must be a power-of-two multiple of 4")
        if self.size % (self.block_size * self.associativity):
            raise ValueError("size must divide evenly into sets")

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size // (self.block_size * self.associativity)

    @property
    def words_per_block(self) -> int:
        """Number of 32-bit words in a block (= first-load bits per block)."""
        return self.block_size // 4


@dataclass(frozen=True)
class DictionaryConfig:
    """Dictionary compressor parameters (Section 4.3.1)."""

    entries: int = 64
    counter_bits: int = 3

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ValueError("dictionary needs at least one entry")
        if self.counter_bits < 1:
            raise ValueError("counter needs at least one bit")

    @property
    def index_bits(self) -> int:
        """Bits used for an encoded (dictionary-hit) value."""
        return bits_for(self.entries - 1)

    @property
    def counter_max(self) -> int:
        """Saturation value of the per-entry frequency counter."""
        return (1 << self.counter_bits) - 1


@dataclass(frozen=True)
class BugNetConfig:
    """BugNet recorder parameters.

    ``checkpoint_interval`` is the maximum number of committed
    instructions per interval; ``reduced_lcount_bits`` is the short
    L-Count encoding (values < 32 fit in 5 bits per the paper).
    ``log_memory_budget`` bounds the main-memory region holding FLLs;
    when it fills, the oldest checkpoint's logs are discarded
    (Section 4.1), which determines the replay window.

    ``bit_clear_period`` implements the paper's Section 4.4 "more
    aggressive solution" (left there as future work): with period N > 1,
    first-load bits survive interval and interrupt boundaries and are
    only cleared at every Nth ("major") checkpoint.  Loads already
    logged in an earlier retained interval are then not re-logged after
    a syscall — at the cost that replay must start from a major
    checkpoint and carry memory state forward (which
    :meth:`repro.replay.replayer.Replayer.replay` does).  Period 1 is
    the paper's evaluated basic scheme.
    """

    checkpoint_interval: int = 10_000_000
    reduced_lcount_bits: int = 5
    dictionary: DictionaryConfig = field(default_factory=DictionaryConfig)
    checkpoint_buffer_bytes: int = 16 * 1024
    race_buffer_bytes: int = 32 * 1024
    log_memory_budget: int | None = None
    max_live_threads: int = 64
    max_resident_checkpoints: int = 256
    bit_clear_period: int = 1

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be positive")
        if not 1 <= self.reduced_lcount_bits < 32:
            raise ValueError("reduced_lcount_bits out of range")
        if self.bit_clear_period < 1:
            raise ValueError("bit_clear_period must be >= 1")

    @property
    def full_lcount_bits(self) -> int:
        """Bits for a full L-Count: log2(checkpoint interval length)."""
        return bits_for(self.checkpoint_interval)

    @property
    def ic_bits(self) -> int:
        """Bits for an instruction count within an interval."""
        return bits_for(self.checkpoint_interval)

    @property
    def tid_bits(self) -> int:
        """Bits for a thread id in MRL entries: log2(max live threads)."""
        return bits_for(self.max_live_threads - 1)

    @property
    def cid_bits(self) -> int:
        """Bits for a checkpoint id: log2(max resident checkpoints)."""
        return bits_for(self.max_resident_checkpoints - 1)


@dataclass(frozen=True)
class MachineConfig:
    """Full-system simulator parameters."""

    num_cores: int = 1
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(size=16 * 1024, associativity=4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(size=256 * 1024, associativity=8))
    timer_interval: int = 0
    interleave_seed: int = 0
    stack_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.l1.block_size != self.l2.block_size:
            raise ValueError("L1 and L2 must share a block size (bit migration)")
        if self.timer_interval < 0:
            raise ValueError("timer_interval must be >= 0 (0 disables)")
