"""Error hierarchy for the reproduction.

Two families matter:

* :class:`Fault` — architectural faults raised by the simulated machine
  (the events the OS turns into a crash report and a BugNet log dump).
* :class:`ReproError` — host-level errors in our own tooling (assembler
  misuse, corrupt logs, replay divergence).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for host-level errors raised by the library itself."""


class AssemblerError(ReproError):
    """Raised for malformed BN32 assembly source."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class LogDecodeError(ReproError):
    """Raised when an FLL or MRL byte stream cannot be decoded."""


class ReplayDivergence(ReproError):
    """Raised when a replay produces state that differs from the recording.

    This should never happen for logs produced by this library; it exists
    so validation utilities and tests can assert determinism loudly.
    """


class Fault(Exception):
    """An architectural fault detected by the simulated machine.

    Faults terminate the faulting thread; the kernel's fault handler
    finalizes the current checkpoint interval (recording the faulting PC
    and instruction count, per Section 4.8 of the paper) and collects the
    logs for "shipping to the developer".
    """

    kind = "fault"

    def __init__(self, message: str, pc: int | None = None) -> None:
        super().__init__(message)
        self.pc = pc


class MemoryFault(Fault):
    """Access to an unmapped or protected address (e.g. null deref)."""

    kind = "memory"


class AlignmentFault(MemoryFault):
    """Unaligned word access."""

    kind = "alignment"


class ArithmeticFault(Fault):
    """Integer divide (or remainder) by zero."""

    kind = "arithmetic"


class InstructionFault(Fault):
    """Fetch from an invalid code address or an undecodable instruction.

    This is how corrupted return addresses (stack smashes) and corrupted
    function pointers manifest as crashes.
    """

    kind = "instruction"
