"""Developer-site fleet infrastructure: ingest, dedup, and triage.

The paper's workflow ends with the OS shipping one crash report "to the
developer".  At the ROADMAP's production scale the developer side
receives *floods* of reports, and the bottleneck moves from recording to
handling them.  This package is that missing half:

* :mod:`repro.fleet.signature` — deterministic crash signatures from the
  fault metadata plus the replayed tail of PCs, so two reports of the
  same bug bucket together even when their replay windows differ;
* :mod:`repro.fleet.store` — a sharded on-disk report store
  (consistent-hash of signature → shard directory, per-shard binary
  index, bounded retention with oldest-first eviction mirroring
  :class:`~repro.tracing.backing.LogStore`);
* :mod:`repro.fleet.ingest` — a batched ingestion pipeline that
  *validates* every report by replaying its faulting-thread tail before
  accepting it (iReplayer's in-situ-validation argument: never act on a
  recording that does not replay);
* :mod:`repro.fleet.triage` — signature bucketing, occurrence/recency
  ranking, and a representative-report picker;
* :mod:`repro.fleet.validate` — the pure decode→replay→fault-probe
  validation function shared by the batch pipeline and the service,
  plus its process-pool plumbing;
* :mod:`repro.fleet.service` — the live asyncio ingestion endpoint
  (``bugnet serve``): bounded admission with explicit backpressure,
  chunked parallel validation, deterministic batched commits,
  idempotent retries, a ``/stats`` endpoint;
* :mod:`repro.fleet.wire` — the length-prefixed upload protocol;
* :mod:`repro.fleet.loadsim` — fleet-traffic synthesis and the
  concurrent load-generator client (``bugnet load-sim``).

CLI: ``bugnet ingest``, ``bugnet triage``, ``bugnet fleet-sim``,
``bugnet serve``, ``bugnet load-sim``.
"""

from repro.fleet.ingest import IngestPipeline, IngestResult
from repro.fleet.signature import CrashSignature, compute_signature
from repro.fleet.store import ReportStore, StoredEntry
from repro.fleet.triage import Bucket, build_buckets, render_triage

__all__ = [
    "Bucket",
    "CrashSignature",
    "IngestPipeline",
    "IngestResult",
    "ReportStore",
    "StoredEntry",
    "build_buckets",
    "compute_signature",
    "render_triage",
]
