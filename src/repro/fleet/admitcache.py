"""Dedup-before-validate admission: the validated-signature cache.

BugNet's fleet premise is that millions of deployed machines ship
crash reports and the collector dedups them into a handful of buckets
— but validate-before-commit replays *every* upload in full, so
duplicate-dominated racy traffic pays the expensive multi-thread
replay once per copy.  This module is the first admission tier: a
bounded, persistent cache mapping a report blob's fingerprint (sha256
of the raw bytes) to the **validated outcome** a previous full
validation produced — everything a commit needs (the signature
preimage, the replay window, the routing key), so a repeat upload
commits byte-identically to a full validation without replaying a
single instruction.

Three properties keep the shortcut honest:

* **Integrity cross-check on every hit.**  A probe decodes the blob
  (cheap — no replay) and requires the cached entry to agree with the
  report's own claims: program, fault kind, faulting PC, and the
  replay-free :func:`~repro.fleet.signature.route_digest`.  An entry
  that disagrees with its own blob is dropped, not trusted.
* **Trust-but-verify sampling.**  A deterministic, seeded fraction of
  repeats (:meth:`AdmitCache.should_reverify`) still takes the full
  validation path; the outcome is compared against the cache.  The
  sample is a pure function of ``(seed, fingerprint, upload_id)``, so
  every service worker, restart, and cluster node draws the *same*
  sample — reverification cannot be dodged by retrying an upload.
* **Quarantine on mismatch.**  If a sampled re-validation disagrees
  with the cached outcome, the bucket's digest is quarantined: its
  entries are evicted, future outcomes for that digest are refused
  admission to the cache, and every subsequent upload of that bucket
  takes the full validation path.  The quarantine set persists with
  the cache and replicates through the same file.

Persistence is flock-safe like the store: a read-merge-write cycle
under an exclusive lock, so concurrent writer processes (batch ingest
beside a live service, two services on one store) never lose each
other's entries.  Readers pick up foreign writes by mtime.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.fleet.signature import CrashSignature, route_digest
from repro.fleet.validate import DECODE_ERRORS, ValidatedReport
from repro.obs import REGISTRY
from repro.tracing.serialize import load_report_header

try:  # pragma: no cover - fcntl is present on every POSIX target
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

_CACHE_PROBES = REGISTRY.counter(
    "bugnet_admit_cache_total",
    "Admission-cache probe outcomes (hit = commit without replay).",
    ("result",),  # hit | miss | quarantined | integrity-drop
)
_REVERIFY = REGISTRY.counter(
    "bugnet_admit_reverify_total",
    "Sampled trust-but-verify re-validations of cache hits.",
    ("result",),  # match | mismatch
)
_QUARANTINES = REGISTRY.counter(
    "bugnet_admit_quarantine_total",
    "Buckets quarantined after a reverify mismatch (poisoned cache).",
)

#: On-disk format version; bump when the entry shape changes.
_FORMAT = 1


def blob_fingerprint(blob: bytes) -> str:
    """Cache key of a report blob: sha256 over the raw upload bytes.

    Byte-identical uploads — the fleet's duplicate-dominated common
    case — share a fingerprint; a single flipped bit misses and takes
    the full validation path, so the cache can never launder a corrupt
    variant of a known-good report."""
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class CachedOutcome:
    """One validated admission outcome, keyed by blob fingerprint.

    Carries the full :class:`~repro.fleet.signature.CrashSignature`
    preimage (not just the digest) so a cache-hit commit reconstructs
    the signature and every store field byte-identically to the full
    validation that seeded the entry — and so the digest itself is
    recomputable as an integrity check on entries that arrive from
    disk or replication."""

    fingerprint: str
    program_name: str
    fault_kind: str
    fault_pc: int
    tail_pcs: "tuple[int, ...]"
    race_pcs: "tuple[int, ...]"
    instructions: int
    route_key: str

    @property
    def signature(self) -> CrashSignature:
        """The signature this outcome commits under (recomputed)."""
        return CrashSignature(
            program_name=self.program_name,
            fault_kind=self.fault_kind,
            fault_pc=self.fault_pc,
            tail_pcs=self.tail_pcs,
            race_pcs=self.race_pcs,
        )

    @property
    def digest(self) -> str:
        """Bucket digest (recomputed from the preimage)."""
        return self.signature.digest

    def validated(self, label: str, blob: bytes,
                  observed_at: "int | None") -> ValidatedReport:
        """Materialize the commit-ready :class:`ValidatedReport` a full
        validation of *blob* would have produced."""
        return ValidatedReport(
            label=label,
            blob=blob,
            observed_at=observed_at,
            signature=self.signature,
            fault_kind=self.fault_kind,
            program_name=self.program_name,
            instructions=self.instructions,
            route_key=self.route_key,
        )

    def to_json(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "program_name": self.program_name,
            "fault_kind": self.fault_kind,
            "fault_pc": self.fault_pc,
            "tail_pcs": list(self.tail_pcs),
            "race_pcs": list(self.race_pcs),
            "instructions": self.instructions,
            "route_key": self.route_key,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CachedOutcome | None":
        try:
            return cls(
                fingerprint=str(data["fingerprint"]),
                program_name=str(data["program_name"]),
                fault_kind=str(data["fault_kind"]),
                fault_pc=int(data["fault_pc"]),
                tail_pcs=tuple(int(pc) for pc in data["tail_pcs"]),
                race_pcs=tuple(int(pc) for pc in data["race_pcs"]),
                instructions=int(data["instructions"]),
                route_key=str(data["route_key"]),
            )
        except (KeyError, TypeError, ValueError):
            return None  # a corrupt record drops; it cannot poison

    @classmethod
    def from_validated(cls, fingerprint: str,
                       validated: ValidatedReport) -> "CachedOutcome":
        signature = validated.signature
        return cls(
            fingerprint=fingerprint,
            program_name=signature.program_name,
            fault_kind=signature.fault_kind,
            fault_pc=signature.fault_pc,
            tail_pcs=tuple(signature.tail_pcs),
            race_pcs=tuple(signature.race_pcs),
            instructions=validated.instructions,
            route_key=validated.route_key,
        )


class AdmitCache:
    """Bounded, persistent, flock-safe validated-signature cache.

    *path* is the cache file (conventionally ``admit-cache.json`` in
    the store root, beside ``store.lock``).  *capacity* bounds the
    entry count — least-recently-used entries evict first, which under
    fleet traffic keeps the hot buckets resident.  *seed* and
    *reverify_fraction* parameterize the deterministic
    trust-but-verify sample; every node of a cluster must share the
    seed for the sample to be cluster-consistent."""

    def __init__(self, path, capacity: int = 4096, seed: int = 0,
                 reverify_fraction: float = 0.05) -> None:
        self.path = Path(path)
        self.capacity = max(int(capacity), 1)
        self.seed = int(seed)
        self.reverify_fraction = float(reverify_fraction)
        self._entries: "OrderedDict[str, CachedOutcome]" = OrderedDict()
        self._quarantined: "set[str]" = set()
        self._loaded_mtime: "float | None" = None
        # One cache instance is shared by every in-process consumer
        # (service chunk tasks run on executor threads); the flock only
        # serializes *processes*.
        self._mutex = threading.RLock()
        self._load(merge=False)

    # -- probes --------------------------------------------------------------

    def probe(self, blob: bytes) -> "CachedOutcome | None":
        """First admission tier: return the cached validated outcome
        for *blob*, or ``None`` (take the full validation path).

        A hit requires the signature-prefix cross-check to pass: the
        blob must decode, and its own (program, fault kind, fault PC,
        route digest) must match the entry.  Since the fingerprint is
        a hash of the full blob this only fails when the *cache entry*
        is wrong — corrupt or poisoned — and such entries are dropped
        and counted rather than trusted."""
        with self._mutex:
            self._maybe_reload()
            fingerprint = blob_fingerprint(blob)
            entry = self._entries.get(fingerprint)
            if entry is None:
                _CACHE_PROBES.labels("miss").inc()
                return None
            if entry.digest in self._quarantined:
                _CACHE_PROBES.labels("quarantined").inc()
                return None
        # The decode cross-check runs outside the mutex — it is pure
        # CPU work on the blob and the entry is immutable.  Header-only
        # decode: the probe needs the report's *claims*, not its logs.
        try:
            report = load_report_header(blob)
        except DECODE_ERRORS:
            with self._mutex:
                self._entries.pop(fingerprint, None)
            _CACHE_PROBES.labels("integrity-drop").inc()
            return None
        if (report.program_name != entry.program_name
                or report.fault_kind != entry.fault_kind
                or report.fault_pc != entry.fault_pc
                or route_digest(report.program_name, report.fault_kind,
                                report.fault_pc) != entry.route_key):
            with self._mutex:
                self._entries.pop(fingerprint, None)
            _CACHE_PROBES.labels("integrity-drop").inc()
            return None
        with self._mutex:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
        _CACHE_PROBES.labels("hit").inc()
        return entry

    def should_reverify(self, fingerprint: str, upload_id: str) -> bool:
        """Deterministic trust-but-verify sample membership.

        A pure function of ``(seed, fingerprint, upload_id)`` — the
        same upload draws the same verdict on every worker, across
        restarts, and on every cluster node, so the sample cannot be
        dodged and the drill in CI is reproducible."""
        fraction = self.reverify_fraction
        if fraction <= 0.0:
            return False
        if fraction >= 1.0:
            return True
        hasher = hashlib.sha256()
        hasher.update(b"reverify-v1\x00")
        hasher.update(str(self.seed).encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(fingerprint.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(upload_id.encode("utf-8"))
        draw = int.from_bytes(hasher.digest()[:8], "big") / float(1 << 64)
        return draw < fraction

    # -- mutation ------------------------------------------------------------

    def record(self, fingerprint: str,
               validated: ValidatedReport) -> "CachedOutcome | None":
        """Admit a full-validation outcome into the cache (in memory;
        call :meth:`flush` to persist).  Quarantined buckets are
        refused — once a digest misbehaved, every upload of it
        revalidates until an operator clears the quarantine."""
        entry = CachedOutcome.from_validated(fingerprint, validated)
        with self._mutex:
            if entry.digest in self._quarantined:
                return None
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return entry

    def seed_entry(self, entry: CachedOutcome) -> bool:
        """Admit an entry that arrived from cluster replication.

        The digest is recomputed from the preimage by construction
        (:attr:`CachedOutcome.digest`), so a replication message
        cannot claim a digest its fields do not hash to."""
        with self._mutex:
            if entry.digest in self._quarantined:
                return False
            self._entries[entry.fingerprint] = entry
            self._entries.move_to_end(entry.fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return True

    def reverify_outcome(self, expected: CachedOutcome,
                         outcome) -> bool:
        """Compare a sampled full re-validation against its cache
        entry; on mismatch quarantine the bucket.  Returns ``True``
        when the cache told the truth."""
        matches = (
            isinstance(outcome, ValidatedReport)
            and outcome.signature.digest == expected.digest
            and outcome.instructions == expected.instructions
            and outcome.route_key == expected.route_key
        )
        if matches:
            _REVERIFY.labels("match").inc()
            return True
        _REVERIFY.labels("mismatch").inc()
        self.quarantine(expected.digest)
        return False

    def quarantine(self, digest: str) -> None:
        """Quarantine a bucket: evict its entries, refuse new ones,
        persist the ban."""
        with self._mutex:
            if digest not in self._quarantined:
                self._quarantined.add(digest)
                _QUARANTINES.inc()
            stale = [fp for fp, entry in self._entries.items()
                     if entry.digest == digest]
            for fingerprint in stale:
                del self._entries[fingerprint]
            self.flush()

    # -- persistence ---------------------------------------------------------

    def _lock(self):
        """Exclusive advisory flock on the cache's sidecar lock file
        (mirrors the store's discipline; no-op where fcntl is
        unavailable)."""
        from contextlib import contextmanager

        @contextmanager
        def held():
            if fcntl is None:  # pragma: no cover - non-POSIX
                yield
                return
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path.with_suffix(".lock"),
                         os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
                os.close(fd)

        return held()

    def _read_file(self) -> "tuple[OrderedDict, set, float | None]":
        entries: "OrderedDict[str, CachedOutcome]" = OrderedDict()
        quarantined: "set[str]" = set()
        try:
            stat = self.path.stat()
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return entries, quarantined, None
        if not isinstance(data, dict) or data.get("format") != _FORMAT:
            return entries, quarantined, stat.st_mtime
        for raw in data.get("entries", ()):
            if isinstance(raw, dict):
                entry = CachedOutcome.from_json(raw)
                if entry is not None:
                    entries[entry.fingerprint] = entry
        for digest in data.get("quarantined", ()):
            if isinstance(digest, str):
                quarantined.add(digest)
        return entries, quarantined, stat.st_mtime

    def _load(self, merge: bool) -> None:
        disk_entries, disk_quarantined, mtime = self._read_file()
        self._loaded_mtime = mtime
        self._quarantined |= disk_quarantined
        if merge:
            # Our in-memory entries are newer: disk entries fill gaps
            # only (inserted coldest-first), preserving our LRU recency.
            for fingerprint, entry in disk_entries.items():
                if fingerprint not in self._entries:
                    self._entries[fingerprint] = entry
                    self._entries.move_to_end(fingerprint, last=False)
        else:
            self._entries = disk_entries
        self._entries = OrderedDict(
            (fp, entry) for fp, entry in self._entries.items()
            if entry.digest not in self._quarantined
        )
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def _maybe_reload(self) -> None:
        """Pick up foreign writers' entries (another service, a batch
        ingest, a replicating peer) by mtime — a stat per probe, not a
        read."""
        try:
            mtime = self.path.stat().st_mtime
        except OSError:
            return
        if mtime != self._loaded_mtime:
            self._load(merge=True)

    def flush(self) -> None:
        """Persist via read-merge-write under the flock: concurrent
        writer processes union their entries and quarantines instead
        of last-writer-wins clobbering."""
        with self._mutex, self._lock():
            disk_entries, disk_quarantined, _mtime = self._read_file()
            self._quarantined |= disk_quarantined
            merged: "OrderedDict[str, CachedOutcome]" = OrderedDict()
            for source in (disk_entries, self._entries):
                for fingerprint, entry in source.items():
                    merged.pop(fingerprint, None)
                    merged[fingerprint] = entry
            merged = OrderedDict(
                (fp, entry) for fp, entry in merged.items()
                if entry.digest not in self._quarantined
            )
            while len(merged) > self.capacity:
                merged.popitem(last=False)
            payload = {
                "format": _FORMAT,
                "entries": [entry.to_json() for entry in merged.values()],
                "quarantined": sorted(self._quarantined),
            }
            temp = self.path.with_name(
                self.path.name + f".{os.getpid()}.tmp")
            temp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(temp, self.path)
            self._entries = merged
            try:
                self._loaded_mtime = self.path.stat().st_mtime
            except OSError:  # pragma: no cover - unlinked beneath us
                self._loaded_mtime = None

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def quarantined(self) -> "frozenset[str]":
        return frozenset(self._quarantined)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "quarantined": len(self._quarantined),
            "reverify_fraction": self.reverify_fraction,
            "seed": self.seed,
        }
