"""Multi-node fleet cluster: ring-routed ingestion, replication,
node-failure tolerance, and retention.

One ``bugnet serve`` process is a ceiling; a deployed BugNet fleet runs
collectors as a *cluster*.  This package promotes the consistent-hash
ring already inside :mod:`repro.fleet.store` to a real topology:

* :mod:`~repro.fleet.cluster.topology` — the static cluster spec
  (seed list of nodes + replication factor), the node hash ring that
  assigns every crash report a preference list of owner nodes, and the
  gossiped-heartbeat liveness model.
* :mod:`~repro.fleet.cluster.node` — :class:`ClusterNodeService`, a
  :class:`~repro.fleet.service.FleetService` that forwards misdirected
  uploads to their owner, synchronously replicates committed reports to
  its ring successors before acking, and runs anti-entropy so a
  rejoining node catches up on what it missed.
* :mod:`~repro.fleet.cluster.router` — client-side ring routing for
  ``load-sim``/``ingest`` plus the thin ``bugnet route`` proxy.
* :mod:`~repro.fleet.cluster.admin` — cluster-wide /stats, /metrics
  aggregation and triage (merged by signature digest, deduplicated by
  upload id across replicas).
* :mod:`~repro.fleet.cluster.harness` — the subprocess cluster harness
  behind ``bugnet fleet-sim --nodes N`` and the CI kill -9 smoke job.

Reports are placed by a **route digest** (program, fault kind, fault
PC — computable from a blob without replay), not the signature digest
(which needs a validation replay); DESIGN.md §12 walks through the
distinction and everything above.
"""

from repro.fleet.cluster.topology import (
    ClusterSpec,
    GossipState,
    NodeRing,
    NodeSpec,
)

__all__ = [
    "ClusterSpec",
    "GossipState",
    "NodeRing",
    "NodeSpec",
]
