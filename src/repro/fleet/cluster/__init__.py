"""Multi-node fleet cluster: ring-routed ingestion, replication,
node-failure tolerance, elastic membership, and retention.

One ``bugnet serve`` process is a ceiling; a deployed BugNet fleet runs
collectors as a *cluster*.  This package promotes the consistent-hash
ring already inside :mod:`repro.fleet.store` to a real topology:

* :mod:`~repro.fleet.cluster.topology` — the **epoch-versioned**
  cluster spec (members with ``active``/``joining``/``draining``
  status, replication factor, monotonic epoch), the node hash ring
  that assigns every crash report a preference list of owner nodes,
  ring diffing (the exact token ranges that change hands between two
  epochs), and the gossiped-heartbeat liveness model.
* :mod:`~repro.fleet.cluster.node` — :class:`ClusterNodeService`, a
  :class:`~repro.fleet.service.FleetService` that forwards misdirected
  uploads to their owner, synchronously replicates committed reports to
  its ring successors before acking, refuses epoch-mismatched cluster
  ops (then heals by spec exchange), and runs anti-entropy so a
  rejoining node catches up and a joining node streams its future
  ranges in before the routing flip.
* :mod:`~repro.fleet.cluster.router` — client-side ring routing for
  ``load-sim``/``ingest`` plus the thin ``bugnet route`` proxy.
* :mod:`~repro.fleet.cluster.admin` — quorum reads (cluster-wide
  /stats, /metrics, triage, autopsy — merged by signature digest,
  deduplicated by upload id across replicas, stale-epoch answers
  flagged) and planned topology change (``bugnet cluster add-node`` /
  ``decommission``).
* :mod:`~repro.fleet.cluster.harness` — the subprocess cluster harness
  behind ``bugnet fleet-sim --nodes N`` (kill -9 smoke) and
  ``--elastic`` (topology change under load).

Reports are placed by a **route digest** (program, fault kind, fault
PC — computable from a blob without replay), not the signature digest
(which needs a validation replay); DESIGN.md §12 walks through the
distinction, §14 the epoch/quorum model.
"""

from repro.fleet.cluster.topology import (
    ClusterSpec,
    GossipState,
    NodeRing,
    NodeSpec,
)

__all__ = [
    "ClusterSpec",
    "GossipState",
    "NodeRing",
    "NodeSpec",
]
