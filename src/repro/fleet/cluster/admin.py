"""Cluster administration: aggregated views, quorum reads, and planned
topology change.

Every node keeps serving its own :mod:`repro.obs` endpoints; this
module gives operators the *fleet* view on top — fan out to the
members, sum what is summable, and (the part that keeps everyone
honest) **reconcile** the two substrates against each other: summed
Prometheus admission counters must equal summed /stats counters, and
the store gauges must match the store sections.  The CI cluster smoke
job runs that reconciliation after a kill -9, where double-counting or
loss would show up first.

Cluster triage merges per-node buckets by **signature digest** — the
replay-derived identity — while the ring placed the underlying blobs
by *route* digest.  Replication means one report legitimately lives on
R nodes, so occurrence counts come from distinct ``upload_id`` sets,
never from summing per-node counts.

Reads are **quorum reads** (DESIGN.md §14): every per-node answer
carries the node's topology epoch, the quorum epoch is the newest one
observed, and a read needs ⌈(R+1)/2⌉ answers *at that epoch* before
its merge is trusted.  A partitioned minority node (or a dropped
member that was never told) still answers — with its stale epoch — so
its buckets are flagged and excluded instead of silently merged under
the wrong topology.

Planned topology change is driven from here too (:func:`add_node`,
:func:`decommission`): mint the next epoch, push it to the live
members, stream the remapped ranges over the ordinary anti-entropy
ops *while the old ring keeps serving*, and only then commit the epoch
that flips routing.  No step deletes anything, so a crash mid-change
leaves at worst a node holding extra reports — never a lost one.
"""

from __future__ import annotations

import asyncio
import time

from repro.fleet.cluster.topology import (
    ClusterSpec,
    NodeSpec,
    diff_rings,
    ranges_gained_by,
)
from repro.fleet.loadsim import ServiceClient, fetch_metrics
from repro.fleet.wire import FrameError

#: /stats counter fields that sum across nodes.
_SUMMED_COUNTERS = ("received", "accepted", "rejected", "retried",
                    "duplicates", "commit_batches", "protocol_errors")
#: Cluster-layer counters (ClusterNodeService.cluster_counters).
_SUMMED_CLUSTER = ("forwarded", "replicated_out", "replicated_in",
                   "gossip_rounds", "handoff_reports",
                   "spec_updates", "stale_epochs")


async def fetch_node_stats(member: NodeSpec) -> "dict | None":
    """One node's /stats, or None when it is unreachable."""
    client = ServiceClient(member.host, member.port)
    try:
        return await client.stats()
    except (ConnectionError, OSError, FrameError, asyncio.TimeoutError):
        return None
    finally:
        await client.close()


async def cluster_stats(spec: ClusterSpec) -> "dict[str, dict | None]":
    """/stats from every member, keyed by node id (None = unreachable)."""
    results = await asyncio.gather(*(
        fetch_node_stats(member) for member in spec.nodes
    ))
    return {
        member.node_id: stats
        for member, stats in zip(spec.nodes, results)
    }


def aggregate_stats(per_node: "dict[str, dict | None]") -> dict:
    """Sum the summable /stats fields across reachable nodes."""
    counters = {name: 0 for name in _SUMMED_COUNTERS}
    cluster = {name: 0 for name in _SUMMED_CLUSTER}
    store = {"reports": 0, "bytes": 0, "evicted_reports": 0}
    queue_depth = 0
    reachable = []
    for node_id, stats in sorted(per_node.items()):
        if stats is None:
            continue
        reachable.append(node_id)
        queue_depth += stats.get("queue_depth", 0)
        for name in _SUMMED_COUNTERS:
            counters[name] += stats.get("counters", {}).get(name, 0)
        for name in _SUMMED_CLUSTER:
            cluster[name] += (stats.get("cluster", {})
                              .get("counters", {}).get(name, 0))
        for name in store:
            store[name] += stats.get("store", {}).get(name, 0)
    return {
        "nodes": len(per_node),
        "reachable": reachable,
        "unreachable": sorted(
            node_id for node_id, stats in per_node.items() if stats is None
        ),
        "queue_depth": queue_depth,
        "counters": counters,
        "cluster": cluster,
        "store": store,
    }


async def cluster_metrics(spec: ClusterSpec) -> "dict[str, dict | None]":
    """Parsed /metrics scrape from every member (None = unreachable)."""

    async def scrape(member: NodeSpec):
        try:
            return await fetch_metrics(member.host, member.port)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            return None

    results = await asyncio.gather(*(
        scrape(member) for member in spec.nodes
    ))
    return {
        member.node_id: samples
        for member, samples in zip(spec.nodes, results)
    }


def aggregate_metrics(per_node: "dict[str, dict | None]") -> dict:
    """Pointwise sum of parsed Prometheus samples across nodes.

    Counters and occupancy gauges sum meaningfully fleet-wide; the
    result keeps the :func:`repro.obs.prom.parse_prometheus` shape so
    :func:`repro.obs.prom.sample` reads it unchanged.
    """
    merged: "dict[str, dict]" = {}
    for samples in per_node.values():
        if samples is None:
            continue
        for name, series in samples.items():
            slot = merged.setdefault(name, {})
            for labels, value in series.items():
                slot[labels] = slot.get(labels, 0.0) + value
    return merged


def reconcile(metrics: dict, stats: dict) -> "list[str]":
    """Cross-check aggregated /metrics against aggregated /stats.

    Both views are fed by the same ``_tally`` call sites on every node,
    so on a quiesced cluster the sums must agree exactly; a mismatch
    means an increment path bypassed one substrate.  Returns
    human-readable mismatch descriptions (empty = reconciled).
    """
    from repro.obs.prom import sample

    pairs = [
        ("received",
         sample(metrics, "bugnet_service_received_total")),
        ("accepted",
         sample(metrics, "bugnet_admission_total", outcome="accepted")),
        ("rejected",
         sample(metrics, "bugnet_admission_total", outcome="rejected")),
        ("retried",
         sample(metrics, "bugnet_admission_total", outcome="retry")),
        ("duplicates",
         sample(metrics, "bugnet_admission_total", outcome="duplicate")),
    ]
    mismatches = []
    for name, metric_total in pairs:
        stat_total = stats["counters"].get(name, 0)
        if metric_total != stat_total:
            mismatches.append(
                f"{name}: /metrics sums to {metric_total:g}, "
                f"/stats sums to {stat_total}"
            )
    store_reports = sample(metrics, "bugnet_store_reports")
    if store_reports != stats["store"]["reports"]:
        mismatches.append(
            f"store reports: /metrics gauge sums to {store_reports:g}, "
            f"/stats sums to {stats['store']['reports']}"
        )
    return mismatches


async def fetch_node_buckets(member: NodeSpec) -> "dict | None":
    """One node's ``buckets`` response (with its epoch), or None."""
    client = ServiceClient(member.host, member.port)
    try:
        response = await client.request({"op": "buckets"})
    except (ConnectionError, OSError, FrameError, asyncio.TimeoutError):
        return None
    finally:
        await client.close()
    if response.get("status") != "ok":
        return None
    return response


async def cluster_buckets(spec: ClusterSpec) -> "list[dict]":
    """Cluster-wide triage: per-node buckets merged by signature digest.

    Counts are **distinct upload ids**, not per-node sums — replication
    stores each accepted report on R nodes, and double-counting copies
    would rank buckets by replication factor instead of by occurrences.
    Rolled-up (evicted) counts take the per-node maximum for the same
    reason: replicas roll up the same evictions independently.

    This is the reachability-only merge; :func:`cluster_triage` is the
    quorum-read variant that excludes stale-epoch answers.
    """
    responses = await asyncio.gather(*(
        fetch_node_buckets(member) for member in spec.nodes
    ))
    return merge_buckets(
        response.get("buckets", []) for response in responses
        if response is not None
    )


def merge_buckets(per_node) -> "list[dict]":
    """Merge per-node bucket lists by signature digest (see
    :func:`cluster_buckets` for the counting rules)."""
    merged: "dict[str, dict]" = {}
    uploads: "dict[str, set]" = {}
    for node_buckets in per_node:
        if node_buckets is None:
            continue
        for bucket in node_buckets:
            digest = bucket["signature"]
            seen = uploads.setdefault(digest, set())
            seen.update(bucket.get("upload_ids", ()))
            slot = merged.get(digest)
            if slot is None:
                merged[digest] = dict(bucket)
                continue
            slot["first_seen"] = min(slot["first_seen"],
                                     bucket["first_seen"])
            slot["last_seen"] = max(slot["last_seen"], bucket["last_seen"])
            slot["rolled_up"] = max(slot.get("rolled_up", 0),
                                    bucket.get("rolled_up", 0))
            slot["racy"] = slot["racy"] or bucket["racy"]
            slot["race_pcs"] = sorted(
                set(slot.get("race_pcs", ())) | set(bucket.get("race_pcs", ()))
            )
            # The widest-window representative across replicas.
            mine, theirs = slot.get("representative"), \
                bucket.get("representative")
            if mine is None or (
                theirs is not None
                and theirs["replay_window"] > mine["replay_window"]
            ):
                slot["representative"] = theirs
    buckets = []
    for digest, slot in merged.items():
        slot["count"] = len(uploads[digest])
        slot["total_count"] = slot["count"] + slot.get("rolled_up", 0)
        slot["upload_ids"] = sorted(uploads[digest])
        buckets.append(slot)
    buckets.sort(key=lambda slot: (
        -slot["total_count"], -slot["last_seen"], slot["signature"],
    ))
    return buckets


# -- quorum reads -----------------------------------------------------------

def quorum_requirement(replication: int) -> int:
    """⌈(R+1)/2⌉ — epoch-consistent answers a cluster read requires.

    R=2 needs 2 (both replicas of any report agree on the topology),
    R=3 needs 2, R=5 needs 3: always a strict majority of a replica
    set, so two reads that both reach quorum overlap in at least one
    node and cannot disagree about an acknowledged report.
    """
    return (replication + 2) // 2


def quorum_verdict(epochs: "dict[str, int | None]",
                   replication: int) -> dict:
    """Classify per-node answers (node id → claimed epoch, None =
    unreachable) against the quorum rule.

    The quorum epoch is the **newest** observed: topology epochs only
    move forward, so any node claiming a newer epoch proves the older
    claims stale — a stale majority cannot outvote it, it can only fail
    the read until the cluster converges (which one gossip round-trip
    per stale node fixes).
    """
    known = {node_id: epoch for node_id, epoch in epochs.items()
             if isinstance(epoch, int)}
    quorum_epoch = max(known.values(), default=None)
    consistent = sorted(node_id for node_id, epoch in known.items()
                        if epoch == quorum_epoch)
    required = quorum_requirement(replication)
    return {
        "required": required,
        "epoch": quorum_epoch,
        "consistent": consistent,
        "stale": sorted(node_id for node_id, epoch in known.items()
                        if epoch != quorum_epoch),
        "unreachable": sorted(node_id for node_id, epoch in epochs.items()
                              if not isinstance(epoch, int)),
        "ok": len(consistent) >= required,
    }


def _stats_epoch(stats: "dict | None") -> "int | None":
    if stats is None:
        return None
    epoch = stats.get("cluster", {}).get("epoch", 1)
    return epoch if isinstance(epoch, int) else None


async def cluster_stats_quorum(spec: ClusterSpec) -> dict:
    """Quorum-read /stats: per-node answers, the quorum verdict, and an
    aggregate summed over the epoch-consistent nodes only."""
    per_node = await cluster_stats(spec)
    quorum = quorum_verdict(
        {node_id: _stats_epoch(stats)
         for node_id, stats in per_node.items()},
        spec.replication,
    )
    consistent = set(quorum["consistent"])
    aggregate = aggregate_stats({
        node_id: stats for node_id, stats in per_node.items()
        if node_id in consistent
    })
    aggregate["nodes"] = len(per_node)
    return {"per_node": per_node, "quorum": quorum,
            "aggregate": aggregate}


async def cluster_triage(spec: ClusterSpec) -> dict:
    """Quorum-read triage: merge buckets from epoch-consistent nodes
    only; a stale minority's answer is reported (``quorum["stale"]``)
    but never merged."""
    responses = await asyncio.gather(*(
        fetch_node_buckets(member) for member in spec.nodes
    ))
    epochs: "dict[str, int | None]" = {}
    for member, response in zip(spec.nodes, responses):
        if response is None:
            epochs[member.node_id] = None
        else:
            epoch = response.get("epoch", 1)
            epochs[member.node_id] = (
                epoch if isinstance(epoch, int) else 1
            )
    quorum = quorum_verdict(epochs, spec.replication)
    consistent = set(quorum["consistent"])
    buckets = merge_buckets(
        response.get("buckets", [])
        for member, response in zip(spec.nodes, responses)
        if response is not None and member.node_id in consistent
    )
    return {"buckets": buckets, "quorum": quorum}


async def fetch_report_blob(
    member: NodeSpec, upload_id: str,
) -> "tuple[dict, bytes] | None":
    """Pull one stored report (metadata + blob) from a node via the
    anti-entropy ``fetch-report`` op; None when unreachable/absent."""
    client = ServiceClient(member.host, member.port)
    try:
        response, body = await client.request_full(
            {"op": "fetch-report", "upload_id": upload_id}
        )
    except (ConnectionError, OSError, FrameError, asyncio.TimeoutError):
        return None
    finally:
        await client.close()
    if response.get("status") != "ok" or not body:
        return None
    return response, body


# -- planned topology change ------------------------------------------------

async def push_spec(spec: ClusterSpec,
                    members=None) -> "dict[str, bool]":
    """Push a spec epoch to members (default: all of *spec*); returns
    node id → acknowledged.  An unreachable member is fine: gossip
    epoch-stamps deliver the spec on its first contact with any peer
    that took the push."""

    async def push(member: NodeSpec) -> bool:
        client = ServiceClient(member.host, member.port)
        try:
            response = await client.request(
                {"op": "spec-update", "spec": spec.to_dict()}
            )
        except (ConnectionError, OSError, FrameError,
                asyncio.TimeoutError):
            return False
        finally:
            await client.close()
        return response.get("status") == "ok"

    members = list(spec.nodes) if members is None else list(members)
    results = await asyncio.gather(*(push(member) for member in members))
    return {member.node_id: ok
            for member, ok in zip(members, results)}


async def node_holdings(
    member: NodeSpec, ranges=None,
) -> "dict[str, str] | None":
    """upload_id → route_key held by one node (optionally restricted to
    ``(start, end]`` token *ranges*); None when unreachable."""
    client = ServiceClient(member.host, member.port)
    try:
        request: dict = {"op": "sync-digests"}
        if ranges is not None:
            request["ranges"] = [list(pair) for pair in ranges]
        response = await client.request(request)
    except (ConnectionError, OSError, FrameError, asyncio.TimeoutError):
        return None
    finally:
        await client.close()
    if response.get("status") != "ok":
        return None
    return {
        str(item["upload_id"]): str(item.get("route_key", ""))
        for item in response.get("entries", ())
        if item.get("upload_id")
    }


def _range_span(transfers) -> float:
    """Fraction of the 64-bit token space the transfers cover."""
    from repro.fleet.cluster.topology import TOKEN_SPACE

    total = 0
    for transfer in transfers:
        if transfer.start < transfer.end:
            total += transfer.end - transfer.start
        else:
            total += TOKEN_SPACE - transfer.start + transfer.end
    return total / TOKEN_SPACE


async def add_node(
    spec_path,
    node_id: str,
    host: str,
    port: int,
    start_callback=None,
    poll_interval: float = 0.25,
    timeout: float = 60.0,
) -> dict:
    """Grow the cluster by one node with zero availability dip.

    1. Mint epoch+1 with the new member **joining** (addressable, not
       routed to), write it to *spec_path*, push it to the members.
    2. *start_callback(joining_spec)* — the hook where the operator (or
       harness) starts the new node's process; CLI flow prints the
       serve command instead and the operator runs it by hand before
       invoking add-node, which also works: the push in step 1 reaches
       it then.
    3. Wait until the joining node has streamed every report in its
       remapped ranges (the ring diff's ~1/N of the keyspace) from the
       current owners — the old ring serves the whole time.
    4. Mint epoch+2 flipping the member to **active**, write + push:
       routing moves only after the data did.
    """
    spec = ClusterSpec.load(spec_path)
    joining = spec.add_member(
        NodeSpec(node_id=node_id, host=host, port=int(port),
                 status="joining")
    )
    old_ring = spec.routing_ring()
    target_ring = joining.activated(node_id).routing_ring()
    transfers = diff_rings(old_ring, target_ring, spec.replication)
    pull_ranges = ranges_gained_by(transfers, node_id)
    joining.dump(spec_path)
    await push_spec(joining, members=spec.nodes)
    if start_callback is not None:
        await start_callback(joining)
    new_member = joining.node(node_id)
    deadline = time.monotonic() + timeout
    streamed: "set[str]" = set()
    while True:
        expected: "dict[str, str]" = {}
        for member in spec.nodes:  # the *old* members hold the data
            listing = await node_holdings(member, pull_ranges)
            if listing:
                expected.update(listing)
        held = await node_holdings(new_member)
        missing = set(expected) - set(held or ())
        if held is not None and not missing:
            streamed = set(expected)
            break
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"add-node {node_id}: {len(missing)} report(s) still "
                f"unstreamed after {timeout:.0f}s "
                f"(is the new node running and gossiping?)"
            )
        await asyncio.sleep(poll_interval)
    final = joining.set_status(node_id, "active")
    final.dump(spec_path)
    pushed = await push_spec(final)
    return {
        "node": node_id,
        "epochs": {"before": spec.epoch, "joining": joining.epoch,
                   "final": final.epoch},
        "ranges": len(pull_ranges),
        "range_span": _range_span(
            [t for t in transfers if node_id in t.targets]
        ),
        "streamed": len(streamed),
        "pushed": pushed,
    }


async def decommission(
    spec_path,
    node_id: str,
    poll_interval: float = 0.25,
    timeout: float = 60.0,
) -> dict:
    """Shrink the cluster by one node with zero availability dip.

    1. Mint epoch+1 with the member **draining**: it leaves the routing
       ring immediately (new writes route to the successors; an upload
       that still lands on it is forwarded), but keeps serving reads
       and anti-entropy fetches.
    2. Wait until every report it holds is fully replicated under the
       *new* ring: each route-keyed report on all of its new preference
       list, each route-less report on at least one surviving active.
    3. Mint epoch+2 dropping the member and push it to the survivors.
       The dropped node is deliberately **not** told: a spec without
       itself is unadoptable (see ``ClusterNodeService._adopt_spec``),
       so it keeps answering with its stale epoch until the operator
       stops the process — which is exactly what quorum reads flag.
    """
    spec = ClusterSpec.load(spec_path)
    member = spec.node(node_id)
    if member.status != "active":
        raise ValueError(
            f"cannot decommission {node_id!r}: status is "
            f"{member.status!r}, not active"
        )
    try:
        draining = spec.set_status(node_id, "draining")
    except ValueError as error:
        raise ValueError(
            f"cannot decommission {node_id!r}: {error}"
        ) from error
    old_ring = spec.routing_ring()
    new_ring = draining.routing_ring()
    transfers = diff_rings(old_ring, new_ring, spec.replication)
    draining.dump(spec_path)
    await push_spec(draining)
    survivors = [m for m in draining.nodes
                 if m.node_id != node_id and m.status == "active"]
    deadline = time.monotonic() + timeout
    drained = 0
    while True:
        held = await node_holdings(member)
        if held is None:
            raise RuntimeError(
                f"decommission {node_id}: node unreachable while "
                f"draining — its reports cannot be confirmed replicated"
            )
        holdings: "dict[str, set]" = {}
        for survivor in survivors:
            listing = await node_holdings(survivor)
            holdings[survivor.node_id] = set(listing or ())
        missing = []
        for upload_id, route_key in held.items():
            if route_key:
                owners = new_ring.preference_list(
                    route_key, draining.replication
                )
                ok = all(upload_id in holdings.get(owner, ())
                         for owner in owners)
            else:
                ok = any(upload_id in ids for ids in holdings.values())
            if not ok:
                missing.append(upload_id)
        if not missing:
            drained = len(held)
            break
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"decommission {node_id}: {len(missing)} report(s) not "
                f"yet replicated off the draining node after "
                f"{timeout:.0f}s"
            )
        await asyncio.sleep(poll_interval)
    final = draining.drop_member(node_id)
    final.dump(spec_path)
    pushed = await push_spec(final)
    return {
        "node": node_id,
        "epochs": {"before": spec.epoch, "draining": draining.epoch,
                   "final": final.epoch},
        "ranges": len(transfers),
        "range_span": _range_span(transfers),
        "drained": drained,
        "pushed": pushed,
    }
