"""Cluster-wide observability: aggregated /stats, /metrics, and triage.

Every node keeps serving its own :mod:`repro.obs` endpoints; this
module gives operators the *fleet* view on top — fan out to the
members, sum what is summable, and (the part that keeps everyone
honest) **reconcile** the two substrates against each other: summed
Prometheus admission counters must equal summed /stats counters, and
the store gauges must match the store sections.  The CI cluster smoke
job runs that reconciliation after a kill -9, where double-counting or
loss would show up first.

Cluster triage merges per-node buckets by **signature digest** — the
replay-derived identity — while the ring placed the underlying blobs
by *route* digest.  Replication means one report legitimately lives on
R nodes, so occurrence counts come from distinct ``upload_id`` sets,
never from summing per-node counts.
"""

from __future__ import annotations

import asyncio

from repro.fleet.cluster.topology import ClusterSpec, NodeSpec
from repro.fleet.loadsim import ServiceClient, fetch_metrics
from repro.fleet.wire import FrameError

#: /stats counter fields that sum across nodes.
_SUMMED_COUNTERS = ("received", "accepted", "rejected", "retried",
                    "duplicates", "commit_batches", "protocol_errors")
#: Cluster-layer counters (ClusterNodeService.cluster_counters).
_SUMMED_CLUSTER = ("forwarded", "replicated_out", "replicated_in",
                   "gossip_rounds", "handoff_reports")


async def fetch_node_stats(member: NodeSpec) -> "dict | None":
    """One node's /stats, or None when it is unreachable."""
    client = ServiceClient(member.host, member.port)
    try:
        return await client.stats()
    except (ConnectionError, OSError, FrameError, asyncio.TimeoutError):
        return None
    finally:
        await client.close()


async def cluster_stats(spec: ClusterSpec) -> "dict[str, dict | None]":
    """/stats from every member, keyed by node id (None = unreachable)."""
    results = await asyncio.gather(*(
        fetch_node_stats(member) for member in spec.nodes
    ))
    return {
        member.node_id: stats
        for member, stats in zip(spec.nodes, results)
    }


def aggregate_stats(per_node: "dict[str, dict | None]") -> dict:
    """Sum the summable /stats fields across reachable nodes."""
    counters = {name: 0 for name in _SUMMED_COUNTERS}
    cluster = {name: 0 for name in _SUMMED_CLUSTER}
    store = {"reports": 0, "bytes": 0, "evicted_reports": 0}
    queue_depth = 0
    reachable = []
    for node_id, stats in sorted(per_node.items()):
        if stats is None:
            continue
        reachable.append(node_id)
        queue_depth += stats.get("queue_depth", 0)
        for name in _SUMMED_COUNTERS:
            counters[name] += stats.get("counters", {}).get(name, 0)
        for name in _SUMMED_CLUSTER:
            cluster[name] += (stats.get("cluster", {})
                              .get("counters", {}).get(name, 0))
        for name in store:
            store[name] += stats.get("store", {}).get(name, 0)
    return {
        "nodes": len(per_node),
        "reachable": reachable,
        "unreachable": sorted(
            node_id for node_id, stats in per_node.items() if stats is None
        ),
        "queue_depth": queue_depth,
        "counters": counters,
        "cluster": cluster,
        "store": store,
    }


async def cluster_metrics(spec: ClusterSpec) -> "dict[str, dict | None]":
    """Parsed /metrics scrape from every member (None = unreachable)."""

    async def scrape(member: NodeSpec):
        try:
            return await fetch_metrics(member.host, member.port)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            return None

    results = await asyncio.gather(*(
        scrape(member) for member in spec.nodes
    ))
    return {
        member.node_id: samples
        for member, samples in zip(spec.nodes, results)
    }


def aggregate_metrics(per_node: "dict[str, dict | None]") -> dict:
    """Pointwise sum of parsed Prometheus samples across nodes.

    Counters and occupancy gauges sum meaningfully fleet-wide; the
    result keeps the :func:`repro.obs.prom.parse_prometheus` shape so
    :func:`repro.obs.prom.sample` reads it unchanged.
    """
    merged: "dict[str, dict]" = {}
    for samples in per_node.values():
        if samples is None:
            continue
        for name, series in samples.items():
            slot = merged.setdefault(name, {})
            for labels, value in series.items():
                slot[labels] = slot.get(labels, 0.0) + value
    return merged


def reconcile(metrics: dict, stats: dict) -> "list[str]":
    """Cross-check aggregated /metrics against aggregated /stats.

    Both views are fed by the same ``_tally`` call sites on every node,
    so on a quiesced cluster the sums must agree exactly; a mismatch
    means an increment path bypassed one substrate.  Returns
    human-readable mismatch descriptions (empty = reconciled).
    """
    from repro.obs.prom import sample

    pairs = [
        ("received",
         sample(metrics, "bugnet_service_received_total")),
        ("accepted",
         sample(metrics, "bugnet_admission_total", outcome="accepted")),
        ("rejected",
         sample(metrics, "bugnet_admission_total", outcome="rejected")),
        ("retried",
         sample(metrics, "bugnet_admission_total", outcome="retry")),
        ("duplicates",
         sample(metrics, "bugnet_admission_total", outcome="duplicate")),
    ]
    mismatches = []
    for name, metric_total in pairs:
        stat_total = stats["counters"].get(name, 0)
        if metric_total != stat_total:
            mismatches.append(
                f"{name}: /metrics sums to {metric_total:g}, "
                f"/stats sums to {stat_total}"
            )
    store_reports = sample(metrics, "bugnet_store_reports")
    if store_reports != stats["store"]["reports"]:
        mismatches.append(
            f"store reports: /metrics gauge sums to {store_reports:g}, "
            f"/stats sums to {stats['store']['reports']}"
        )
    return mismatches


async def cluster_buckets(spec: ClusterSpec) -> "list[dict]":
    """Cluster-wide triage: per-node buckets merged by signature digest.

    Counts are **distinct upload ids**, not per-node sums — replication
    stores each accepted report on R nodes, and double-counting copies
    would rank buckets by replication factor instead of by occurrences.
    Rolled-up (evicted) counts take the per-node maximum for the same
    reason: replicas roll up the same evictions independently.
    """

    async def fetch(member: NodeSpec):
        client = ServiceClient(member.host, member.port)
        try:
            response = await client.request({"op": "buckets"})
        except (ConnectionError, OSError, FrameError):
            return None
        finally:
            await client.close()
        if response.get("status") != "ok":
            return None
        return response.get("buckets", [])

    per_node = await asyncio.gather(*(
        fetch(member) for member in spec.nodes
    ))
    merged: "dict[str, dict]" = {}
    uploads: "dict[str, set]" = {}
    for node_buckets in per_node:
        if node_buckets is None:
            continue
        for bucket in node_buckets:
            digest = bucket["signature"]
            seen = uploads.setdefault(digest, set())
            seen.update(bucket.get("upload_ids", ()))
            slot = merged.get(digest)
            if slot is None:
                merged[digest] = dict(bucket)
                continue
            slot["first_seen"] = min(slot["first_seen"],
                                     bucket["first_seen"])
            slot["last_seen"] = max(slot["last_seen"], bucket["last_seen"])
            slot["rolled_up"] = max(slot.get("rolled_up", 0),
                                    bucket.get("rolled_up", 0))
            slot["racy"] = slot["racy"] or bucket["racy"]
            slot["race_pcs"] = sorted(
                set(slot.get("race_pcs", ())) | set(bucket.get("race_pcs", ()))
            )
            # The widest-window representative across replicas.
            mine, theirs = slot.get("representative"), \
                bucket.get("representative")
            if mine is None or (
                theirs is not None
                and theirs["replay_window"] > mine["replay_window"]
            ):
                slot["representative"] = theirs
    buckets = []
    for digest, slot in merged.items():
        slot["count"] = len(uploads[digest])
        slot["total_count"] = slot["count"] + slot.get("rolled_up", 0)
        slot["upload_ids"] = sorted(uploads[digest])
        buckets.append(slot)
    buckets.sort(key=lambda slot: (
        -slot["total_count"], -slot["last_seen"], slot["signature"],
    ))
    return buckets
