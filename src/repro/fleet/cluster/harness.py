"""Subprocess cluster harness: ``bugnet fleet-sim --nodes N``.

Spawns N real ``bugnet serve --cluster`` processes (one store each,
real sockets, real flocks — the same processes an operator would run),
drives ring-routed load at them, and optionally kill -9s a node
mid-load to assert the cluster contract:

* **zero accepted-report loss** — every upload the client saw accepted
  is on disk on at least one node after the dust settles (acks wait
  for the replica set, so a single SIGKILL cannot revoke one);
* **convergence** — once the killed node rejoins, anti-entropy restores
  every report to its full replica set;
* **observability coherence** — aggregated cluster /metrics reconcile
  with summed per-node /stats.

This is the whole-node generalization of the single-service kill
harness in ``tests/test_service_restart.py``, and the engine of the CI
cluster smoke job.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.fleet.cluster.admin import (
    aggregate_metrics,
    aggregate_stats,
    cluster_metrics,
    cluster_stats,
    reconcile,
)
from repro.fleet.cluster.router import run_cluster_load_sim
from repro.fleet.cluster.topology import ClusterSpec, NodeSpec
from repro.fleet.loadsim import DEFAULT_BUGS, ServiceClient, synthesize_corpus
from repro.fleet.store import ReportStore
from repro.fleet.wire import FrameError

_REPO_SRC = Path(__file__).resolve().parents[3]


def free_ports(count: int) -> "list[int]":
    """Distinct free TCP ports, all held open until allocation ends so
    they cannot collide with each other."""
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class ClusterHarness:
    """N ``bugnet serve`` subprocesses sharing one cluster spec."""

    def __init__(self, root, spec: ClusterSpec,
                 workers: int = 0,
                 retain: "int | None" = None) -> None:
        self.root = Path(root)
        self.spec = spec
        self.workers = workers
        self.retain = retain
        self.spec_path = self.root / "cluster.json"
        self.procs: "dict[str, subprocess.Popen]" = {}

    @classmethod
    def create(cls, root, nodes: int = 3, replication: int = 2,
               workers: int = 0,
               retain: "int | None" = None) -> "ClusterHarness":
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        ports = free_ports(nodes)
        spec = ClusterSpec(
            nodes=tuple(
                NodeSpec(node_id=f"n{index}", host="127.0.0.1",
                         port=ports[index])
                for index in range(nodes)
            ),
            replication=replication,
        )
        harness = cls(root, spec, workers=workers, retain=retain)
        spec.dump(harness.spec_path)
        return harness

    def store_root(self, node_id: str) -> Path:
        return self.root / f"node-{node_id}"

    def start(self, node_id: str) -> None:
        """Spawn one member and wait for its listening banner."""
        member = self.spec.node(node_id)
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(_REPO_SRC)
            + (os.pathsep + env["PYTHONPATH"]
               if env.get("PYTHONPATH") else "")
        )
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--store", str(self.store_root(node_id)),
            "--cluster", str(self.spec_path),
            "--node-id", node_id,
            "--workers", str(self.workers),
        ]
        if self.retain is not None:
            command += ["--retain", str(self.retain)]
        # Each node gets its own process group: validation-pool workers
        # are forked children holding the node's listening socket, so a
        # "whole-node" kill must take the group or the orphans keep the
        # port bound and the node can never rejoin.
        proc = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, start_new_session=True,
        )
        lines = []
        for _ in range(64):
            line = proc.stdout.readline()
            if "listening on" in line:
                self.procs[node_id] = proc
                return
            if not line:
                break
            lines.append(line)
        self._signal_group(proc, signal.SIGKILL)
        proc.kill()
        lines.append(proc.stdout.read())
        proc.wait(timeout=10)
        raise AssertionError(
            f"node {node_id} failed to start "
            f"(exit {proc.poll()}):\n{''.join(lines)}"
        )

    def start_all(self) -> None:
        for member in self.spec.nodes:
            self.start(member.node_id)

    @staticmethod
    def _signal_group(proc: "subprocess.Popen", sig: int) -> None:
        """Signal a node's whole process group (tolerating races with
        its own exit)."""
        try:
            os.killpg(os.getpgid(proc.pid), sig)
        except (ProcessLookupError, PermissionError):
            pass

    def kill(self, node_id: str,
             sig: int = signal.SIGKILL) -> None:
        proc = self.procs.pop(node_id)
        self._signal_group(proc, sig)
        proc.wait(timeout=30)

    def stop_all(self, timeout: float = 30.0) -> None:
        for node_id, proc in list(self.procs.items()):
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for node_id, proc in list(self.procs.items()):
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self._signal_group(proc, signal.SIGKILL)
                proc.wait(timeout=timeout)
            # Reap any pool workers the node left behind.
            self._signal_group(proc, signal.SIGKILL)
            self.procs.pop(node_id, None)

    async def node_upload_ids(self, node_id: str) -> "set[str] | None":
        """One live node's committed upload ids (via sync-digests —
        never opens the store directory of a running process)."""
        member = self.spec.node(node_id)
        client = ServiceClient(member.host, member.port)
        try:
            response = await client.request({"op": "sync-digests"})
        except (ConnectionError, OSError, FrameError):
            return None
        finally:
            await client.close()
        if response.get("status") != "ok":
            return None
        return {
            entry["upload_id"] for entry in response.get("entries", ())
        }

    async def wait_converged(
        self, upload_ids: "set[str]", copies: int,
        timeout: float = 60.0,
    ) -> "dict[str, int]":
        """Poll until every id in *upload_ids* is on >= *copies* live
        nodes; returns the final id -> copy-count map."""
        deadline = time.monotonic() + timeout
        placement: "dict[str, int]" = {}
        while time.monotonic() < deadline:
            per_node = await asyncio.gather(*(
                self.node_upload_ids(member.node_id)
                for member in self.spec.nodes
            ))
            placement = {
                upload_id: sum(
                    1 for held in per_node
                    if held is not None and upload_id in held
                )
                for upload_id in upload_ids
            }
            if all(count >= copies for count in placement.values()):
                return placement
            await asyncio.sleep(0.25)
        lagging = {
            upload_id: count for upload_id, count in placement.items()
            if count < copies
        }
        raise AssertionError(
            f"cluster failed to converge to {copies} copies within "
            f"{timeout}s; lagging: {lagging}"
        )

    def postmortem_upload_ids(self) -> "dict[str, set[str]]":
        """Per-node committed upload ids read straight from disk.
        Only call after :meth:`stop_all` — opening a live node's store
        would contend on its flocks and run repair passes under it."""
        held = {}
        for member in self.spec.nodes:
            root = self.store_root(member.node_id)
            if not root.exists():
                held[member.node_id] = set()
                continue
            store = ReportStore(root)
            held[member.node_id] = {
                entry.upload_id for entry in store.entries()
                if entry.upload_id
            }
        return held


def run_cluster_sim(
    root,
    runs: int = 24,
    nodes: int = 3,
    replication: int = 2,
    bug_names=DEFAULT_BUGS,
    seed: int = 0,
    corrupt: int = 2,
    kill: bool = True,
    concurrency: int = 4,
    workers: int = 0,
    retain: "int | None" = None,
    intervals: "tuple[int, ...]" = (2_000, 5_000),
) -> dict:
    """The ``bugnet fleet-sim --nodes N`` scenario, start to finish.

    Synthesizes fleet traffic, runs it ring-routed against a real
    N-node subprocess cluster, kill -9s one node mid-load (unless
    *kill* is false), restarts it, waits for convergence, and verifies
    zero accepted-report loss plus /metrics-vs-/stats reconciliation.
    Raises ``AssertionError`` on any contract violation; returns the
    result summary (the ``--json`` payload).
    """
    _programs, items, failures = synthesize_corpus(
        runs, bug_names, seed=seed, corrupt=corrupt,
        intervals=intervals, id_prefix="cluster",
    )
    harness = ClusterHarness.create(
        root, nodes=nodes, replication=replication,
        workers=workers, retain=retain,
    )
    try:
        harness.start_all()
    except BaseException:
        harness.stop_all()
        raise
    victim = harness.spec.nodes[0].node_id
    killed = False

    async def scenario():
        nonlocal killed
        uploads = asyncio.create_task(run_cluster_load_sim(
            harness.spec, items, concurrency=concurrency,
            max_attempts=240, backoff_base=0.02, seed=seed,
        ))
        if kill:
            # Let some accepts land anywhere, then take a whole node.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                held = await harness.node_upload_ids(victim)
                total = len(held or ())
                for member in harness.spec.nodes[1:]:
                    other = await harness.node_upload_ids(member.node_id)
                    total += len(other or ())
                if total >= max(replication * 2, 4):
                    break
                await asyncio.sleep(0.05)
            harness.kill(victim, signal.SIGKILL)
            killed = True
            # Survivors absorb the dead range; restart the node so it
            # must catch up via anti-entropy (blocking spawn runs in a
            # thread: it reads the child's stdout banner).
            await asyncio.sleep(0.5)
            await asyncio.get_running_loop().run_in_executor(
                None, harness.start, victim,
            )
        report = await uploads
        accepted_ids = {
            uid for (label, _blob, uid) in items
            if label in {o.label for o in report.accepted}
        }
        placement = await harness.wait_converged(
            accepted_ids, copies=min(replication, nodes), timeout=90,
        )
        per_node = await cluster_stats(harness.spec)
        stats = aggregate_stats(per_node)
        metrics = aggregate_metrics(await cluster_metrics(harness.spec))
        return report, accepted_ids, placement, stats, metrics

    try:
        report, accepted_ids, placement, stats, metrics = asyncio.run(
            scenario()
        )
    finally:
        harness.stop_all()

    mismatches = reconcile(metrics, stats)
    # The authoritative zero-loss check, from disk after shutdown.
    held = harness.postmortem_upload_ids()
    everywhere = set().union(*held.values()) if held else set()
    lost = accepted_ids - everywhere
    assert not lost, f"accepted-then-lost reports: {sorted(lost)}"
    assert not mismatches, f"metrics/stats mismatch: {mismatches}"
    if kill:
        assert killed
    summary = report.to_dict()
    summary.update({
        "nodes": nodes,
        "replication": replication,
        "killed_node": victim if kill else None,
        "accepted_ids": len(accepted_ids),
        "min_copies": min(placement.values()) if placement else 0,
        "per_node_reports": {
            node_id: len(ids) for node_id, ids in sorted(held.items())
        },
        "reconciled": not mismatches,
        "lost": 0,
    })
    return summary


def run_elasticity_sim(
    root,
    runs: int = 24,
    replication: int = 2,
    bug_names=DEFAULT_BUGS,
    seed: int = 0,
    corrupt: int = 2,
    concurrency: int = 4,
    workers: int = 0,
    intervals: "tuple[int, ...]" = (2_000, 5_000),
    change_timeout: float = 90.0,
) -> dict:
    """The ``bugnet fleet-sim --nodes 3 --elastic`` scenario: planned
    topology change under live load, start to finish.

    A 3-node subprocess cluster takes ring-routed traffic; mid-load a
    fourth node is added (``admin.add_node``: joining epoch → range
    streaming while the old ring serves → activation flip), then an
    *original* member is decommissioned (``admin.decommission``:
    draining epoch → drain → drop).  The load client keeps routing
    under the **epoch-1** spec the whole time — deliberately stale, so
    every upload that lands on the wrong node under the newer rings
    exercises server-side forwarding.

    Contract checks (AssertionError on violation):

    * zero accepted-report loss across both topology changes;
    * every accepted report on a full replica set among the *final*
      members (the dropped node's store is not needed);
    * the dropped node — still running, pinned at its stale epoch
      because the final spec no longer names it — is flagged ``stale``
      by a quorum read and excluded from the merge, while the read
      still reaches quorum from the survivors;
    * aggregated /metrics reconcile with summed /stats at the final
      epoch.
    """
    from repro.fleet.cluster import admin

    _programs, items, _failures = synthesize_corpus(
        runs, bug_names, seed=seed, corrupt=corrupt,
        intervals=intervals, id_prefix="elastic",
    )
    harness = ClusterHarness.create(
        root, nodes=3, replication=replication, workers=workers,
    )
    initial_spec = harness.spec
    try:
        harness.start_all()
    except BaseException:
        harness.stop_all()
        raise
    new_id = f"n{len(initial_spec.nodes)}"
    (new_port,) = free_ports(1)
    victim = initial_spec.nodes[0].node_id

    async def scenario():
        uploads = asyncio.create_task(run_cluster_load_sim(
            initial_spec, items, concurrency=concurrency,
            max_attempts=240, backoff_base=0.02, seed=seed,
        ))
        # Let some accepts land on the old ring first, so the topology
        # change genuinely happens mid-load with data to remap.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            total = 0
            for member in initial_spec.nodes:
                held = await harness.node_upload_ids(member.node_id)
                total += len(held or ())
            if total >= max(replication * 2, 4):
                break
            await asyncio.sleep(0.05)

        async def start_new_node(joining_spec):
            # The joining epoch is already on disk at spec_path; the
            # new process reads it and starts streaming its ranges.
            harness.spec = joining_spec
            await asyncio.get_running_loop().run_in_executor(
                None, harness.start, new_id,
            )

        add_summary = await admin.add_node(
            harness.spec_path, new_id, "127.0.0.1", new_port,
            start_callback=start_new_node,
            poll_interval=0.25, timeout=change_timeout,
        )
        harness.spec = ClusterSpec.load(harness.spec_path)

        drop_summary = await admin.decommission(
            harness.spec_path, victim,
            poll_interval=0.25, timeout=change_timeout,
        )
        final_spec = ClusterSpec.load(harness.spec_path)

        report = await uploads
        accepted_ids = {
            uid for (label, _blob, uid) in items
            if label in {o.label for o in report.accepted}
        }

        # Full replica sets among the FINAL members: the decommissioned
        # node's store must no longer be load-bearing.
        harness.spec = final_spec
        placement = await harness.wait_converged(
            accepted_ids,
            copies=min(replication, len(final_spec.nodes)),
            timeout=change_timeout,
        )

        # The dropped node is still running, pinned at its stale epoch
        # (the final spec no longer names it, so it cannot adopt it).
        # A quorum read over a member list that still includes it must
        # flag its answer instead of merging it.
        probe_spec = ClusterSpec(
            nodes=final_spec.nodes + (initial_spec.node(victim),),
            replication=replication,
            epoch=final_spec.epoch,
        )
        quorum_read = await admin.cluster_stats_quorum(probe_spec)

        per_node = await cluster_stats(final_spec)
        stats = aggregate_stats(per_node)
        metrics = aggregate_metrics(await cluster_metrics(final_spec))
        return (report, accepted_ids, placement, stats, metrics,
                add_summary, drop_summary, quorum_read, final_spec)

    try:
        (report, accepted_ids, placement, stats, metrics,
         add_summary, drop_summary, quorum_read, final_spec) = \
            asyncio.run(scenario())
    finally:
        harness.stop_all()

    mismatches = reconcile(metrics, stats)
    # Zero loss, from disk, counting only the final members: the
    # decommissioned node's store is deliberately excluded.
    held = harness.postmortem_upload_ids()
    everywhere = set().union(*held.values()) if held else set()
    lost = accepted_ids - everywhere
    assert not lost, f"accepted-then-lost reports: {sorted(lost)}"
    assert not mismatches, f"metrics/stats mismatch: {mismatches}"
    quorum = quorum_read["quorum"]
    assert quorum["ok"], f"quorum read failed at the final epoch: {quorum}"
    assert quorum["epoch"] == final_spec.epoch, (
        f"quorum epoch {quorum['epoch']} != final {final_spec.epoch}"
    )
    assert victim in quorum["stale"] or victim in quorum["unreachable"], (
        f"dropped node {victim} answered without being flagged: {quorum}"
    )
    assert add_summary["epochs"]["final"] == initial_spec.epoch + 2
    assert drop_summary["epochs"]["final"] == initial_spec.epoch + 4
    summary = report.to_dict()
    summary.update({
        "nodes_initial": len(initial_spec.nodes),
        "nodes_final": len(final_spec.nodes),
        "replication": replication,
        "added_node": new_id,
        "decommissioned_node": victim,
        "epochs": {
            "initial": initial_spec.epoch,
            "after_add": add_summary["epochs"]["final"],
            "final": final_spec.epoch,
        },
        "streamed": add_summary["streamed"],
        "drained": drop_summary["drained"],
        "range_span_added": add_summary["range_span"],
        "accepted_ids": len(accepted_ids),
        "min_copies": min(placement.values()) if placement else 0,
        "per_node_reports": {
            node_id: len(ids) for node_id, ids in sorted(held.items())
        },
        "quorum": quorum,
        "stale_flagged": victim in quorum["stale"],
        "reconciled": not mismatches,
        "lost": 0,
    })
    return summary
