"""One member of a ``bugnet serve`` cluster: :class:`ClusterNodeService`.

A cluster node is a :class:`~repro.fleet.service.FleetService` plus
five responsibilities, each riding the existing wire protocol as new
ops (all protocol v1 — an old standalone client can still upload to a
cluster node directly):

* **Forwarding** (``fwd``-flagged uploads): a misdirected upload —
  one whose route digest this node does not own *under the current
  epoch's routing ring* — is proxied to a live owner and the owner's
  ack relayed back, never rejected.  The client does not need to know
  the topology to be served correctly; ring routing on the client
  (:mod:`~repro.fleet.cluster.router`) is an optimization, not a
  requirement.  Joining and draining members own nothing, so they
  forward everything — which is exactly what keeps the *old* ring
  serving while a topology change streams data around.
* **Synchronous replication** (``replicate``): the coordinator commits
  locally, then pushes the validated blob + metadata to every *live*
  node of the report's preference list before releasing the ack — so a
  kill -9 of any single node after an ack cannot lose the report.
  Replicas commit without re-validating (the coordinator already
  replayed the report; replication is a durability copy, idempotent
  via ``upload_id``).
* **Epoch agreement** (``spec-update`` + the ``epoch`` header field):
  every peer-to-peer op is stamped with the sender's topology epoch.
  A mismatch is *refused* with a structured ``stale-epoch`` response
  instead of served under the wrong ring — the newer side's spec rides
  the refusal (or a follow-up ``spec-update`` push), the stale side
  adopts and persists it, and the op retries under the agreed epoch.
  One round-trip heals any staleness; silent mis-routing is impossible
  (DESIGN.md §14).
* **Gossip** (``gossip``): heartbeat-counter exchange driving the
  liveness view (:class:`~repro.fleet.cluster.topology.GossipState`).
  Routing, replication and anti-entropy all consult it; epoch stamps
  on gossip frames make it double as topology-change propagation.
* **Anti-entropy / handoff / range streaming** (``sync-digests`` +
  ``fetch-report``): a periodic pull loop asks peers for their entry
  summaries and fetches whatever this node should hold but does not —
  how a rejoining node catches up, how a surviving node absorbs a dead
  peer's range, and (new) how a **joining** node streams its future
  vpoint ranges in *before* the routing flip: ``sync-digests`` accepts
  the exact ``(start, end]`` token ranges the ring diff remapped, so
  the stream moves only what the new topology needs.  Retention
  compaction (:meth:`~repro.fleet.store.ReportStore.compact`) folds
  into the same loop.

Every committed entry carries a non-empty ``upload_id``: the client's
token when given, else ``blob-<sha256(body)[:24]>`` synthesized by the
first node that touches the upload.  That single identity is what
makes replication, retries *through different nodes*, anti-entropy,
and topology-change streaming all collapse into "commit if absent" —
no vector clocks needed for an immutable-blob store.
"""

from __future__ import annotations

import asyncio
import functools
import hashlib
from pathlib import Path

from repro.fleet.cluster.topology import (
    ClusterSpec,
    GossipState,
    diff_rings,
    ranges_gained_by,
)
from repro.fleet.loadsim import ServiceClient
from repro.fleet.service import FleetService, ServiceConfig
from repro.fleet.triage import build_buckets
from repro.fleet.validate import ResolverSpec, route_key_of_blob
from repro.fleet.wire import header_epoch, is_stale_epoch, stale_epoch_error
from repro.obs import REGISTRY

_FORWARDED = REGISTRY.counter(
    "bugnet_cluster_forwarded_total",
    "Misdirected uploads proxied to their owner node.",
)
_REPLICATED = REGISTRY.counter(
    "bugnet_cluster_replicated_total",
    "Replication copies, by direction (out = pushed to peers, "
    "in = committed from a peer's push).",
    ("direction",),
)
_GOSSIP_ROUNDS = REGISTRY.counter(
    "bugnet_cluster_gossip_rounds_total",
    "Completed gossip fan-outs.",
)
_HANDOFF = REGISTRY.counter(
    "bugnet_cluster_handoff_reports_total",
    "Reports pulled by anti-entropy (rejoin catch-up, dead-node range "
    "handoff, and topology-change range streaming).",
)
_SPEC_UPDATES = REGISTRY.counter(
    "bugnet_cluster_spec_updates_total",
    "Cluster-spec epochs adopted (topology changes applied).",
)
_STALE_EPOCHS = REGISTRY.counter(
    "bugnet_cluster_stale_epoch_total",
    "Epoch mismatches on cluster ops (each refused, then healed by a "
    "spec push).",
)

#: Peer-to-peer ops that are refused under an epoch mismatch.  Client
#: ops (``upload``, ``stats``, ...) carry no epoch and are always
#: served: an upload is routed under the *receiver's* ring either way,
#: and bouncing a client over topology it cannot know about would
#: trade an internal refresh for external unavailability.
_EPOCH_GATED_OPS = frozenset(
    {"gossip", "replicate", "sync-digests", "fetch-report", "buckets"}
)


class ClusterNodeService(FleetService):
    """A FleetService that owns a range of the node ring."""

    def __init__(
        self,
        store_root,
        resolver_spec: ResolverSpec,
        spec: ClusterSpec,
        node_id: str,
        config: "ServiceConfig | None" = None,
        gossip_interval: float = 0.3,
        anti_entropy_interval: float = 1.0,
        fail_after: float = 2.0,
        **store_kwargs,
    ) -> None:
        spec.node(node_id)  # raises on an id not in the spec
        # A node that adopted a newer epoch before a restart must not
        # resurrect the seed file's stale topology: the persisted copy
        # (written on every adoption) wins by epoch.
        persisted = self._load_persisted_spec(store_root)
        if (persisted is not None and persisted.epoch > spec.epoch
                and persisted.has_node(node_id)):
            spec = persisted
        # Cluster nodes listen where the spec says, unless the caller
        # overrides (tests bind port 0 and patch the spec afterwards).
        if config is None:
            member = spec.node(node_id)
            config = ServiceConfig(host=member.host, port=member.port)
        super().__init__(store_root, resolver_spec, config, **store_kwargs)
        self.spec = spec
        self.node_id = node_id
        self.gossip = GossipState(
            self_id=node_id, node_ids=spec.node_ids, fail_after=fail_after,
        )
        self._rebuild_topology()
        self.gossip_interval = gossip_interval
        self.anti_entropy_interval = anti_entropy_interval
        self._peer_clients: "dict[str, ServiceClient]" = {}
        self._peer_locks: "dict[str, asyncio.Lock]" = {}
        self._cluster_tasks: "list[asyncio.Task]" = []
        self.cluster_counters = {
            "forwarded": 0,
            "replicated_out": 0,
            "replicated_in": 0,
            "gossip_rounds": 0,
            "handoff_reports": 0,
            "spec_updates": 0,
            "stale_epochs": 0,
        }

    # -- topology -----------------------------------------------------------

    @staticmethod
    def _spec_path(store_root) -> Path:
        return Path(store_root) / "cluster.json"

    @classmethod
    def _load_persisted_spec(cls, store_root) -> "ClusterSpec | None":
        path = cls._spec_path(store_root)
        if not path.exists():
            return None
        try:
            return ClusterSpec.load(path)
        except ValueError:
            # A torn write cannot be allowed to wedge a restart; the
            # seed spec still works and gossip re-delivers the newest
            # epoch on the first exchange.
            return None

    def _persist_spec(self) -> None:
        path = self._spec_path(self.store_root)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(path.name + ".tmp")
            self.spec.dump(tmp)
            tmp.replace(path)
        except OSError:
            pass  # persistence is an optimization; gossip re-heals

    def _rebuild_topology(self) -> None:
        """Derive routing state from ``self.spec``: the active routing
        ring, this member's status, and — while joining — the target
        ring plus the exact token ranges to stream in."""
        self.ring = self.spec.routing_ring()
        me = self.spec.node(self.node_id)
        self.status = me.status
        if me.status == "joining":
            self.target_ring = self.spec.activated(
                self.node_id
            ).routing_ring()
            self.pull_ranges = ranges_gained_by(
                diff_rings(self.ring, self.target_ring,
                           self.spec.replication),
                self.node_id,
            )
        else:
            self.target_ring = None
            self.pull_ranges = None

    def _adopt_spec(self, new_spec: ClusterSpec) -> bool:
        """Switch to a newer topology epoch; returns whether adopted.

        The final decommission epoch no longer lists this node — that
        spec is *not* adopted: the dropped member keeps its draining
        view (out of the ring, serving reads and fetches) until the
        operator stops the process, instead of ending up with a
        topology it cannot place itself in.
        """
        if new_spec.epoch <= self.spec.epoch:
            return False
        if not new_spec.has_node(self.node_id):
            return False
        old_spec = self.spec
        self.spec = new_spec
        self._rebuild_topology()
        self.gossip.update_members(new_spec.node_ids)
        for peer_id in list(self._peer_clients):
            stale = not new_spec.has_node(peer_id)
            if not stale:
                # An address change across epochs invalidates the
                # cached connection even though the id survives.
                old = old_spec.node(peer_id) if old_spec.has_node(
                    peer_id) else None
                new = new_spec.node(peer_id)
                stale = old is None or (old.host, old.port) != (
                    new.host, new.port)
            if stale:
                client = self._peer_clients.pop(peer_id)
                self._peer_locks.pop(peer_id, None)
                try:
                    asyncio.get_running_loop().create_task(client.close())
                except RuntimeError:
                    pass  # not on the loop (startup): nothing connected
        self._persist_spec()
        self._bump("spec_updates", _SPEC_UPDATES)
        return True

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "tuple[str, int]":
        host, port = await super().start()
        # Persist the adopted epoch beside the store so a restart
        # cannot regress to the seed file's topology.
        self._persist_spec()
        loop = asyncio.get_running_loop()
        for lap in (self._gossip_loop, self._anti_entropy_loop):
            task = loop.create_task(lap())
            self._cluster_tasks.append(task)
        return host, port

    async def stop(self, drain: bool = True) -> None:
        for task in self._cluster_tasks:
            task.cancel()
        if self._cluster_tasks:
            await asyncio.gather(*self._cluster_tasks,
                                 return_exceptions=True)
        self._cluster_tasks.clear()
        await super().stop(drain=drain)
        for client in self._peer_clients.values():
            await client.close()
        self._peer_clients.clear()

    # -- peer plumbing ------------------------------------------------------

    def _bump(self, name: str, metric=None, amount: int = 1) -> None:
        self.cluster_counters[name] += amount
        if metric is not None:
            metric.inc(amount)

    async def _peer_call(
        self, peer_id: str, header: dict, body: bytes = b"",
        want_body: bool = False,
        heal: bool = True,
    ):
        """One request to a peer over its persistent connection, epoch-
        stamped.

        Returns the response header (or ``(header, body)`` with
        *want_body*); ``None`` on any transport failure, which also
        marks the peer dead — routing and replication immediately stop
        counting on it, long before the heartbeat window expires.

        A ``stale-epoch`` refusal is healed in-line (adopt the peer's
        newer spec, or push ours to the stale peer) and the op retried
        once under the agreed epoch; *heal* guards the recursion.
        """
        try:
            member = self.spec.node(peer_id)
        except KeyError:
            return None  # peer left the topology mid-iteration
        client = self._peer_clients.get(peer_id)
        if client is None:
            client = ServiceClient(member.host, member.port,
                                   max_frame=self.config.max_frame)
            self._peer_clients[peer_id] = client
        stamped = {**header, "epoch": self.spec.epoch}
        lock = self._peer_locks.setdefault(peer_id, asyncio.Lock())
        async with lock:
            try:
                response, response_body = await client.request_full(
                    stamped, body
                )
            except Exception:
                # ConnectionError, OSError, IncompleteReadError,
                # FrameError: any failure means the connection is
                # unusable.  (CancelledError is BaseException and
                # propagates.)
                await client.close()
                self.gossip.mark_dead(peer_id)
                return None
        # A successful round-trip is direct proof of life.
        self.gossip.touch(peer_id)
        if heal and is_stale_epoch(response):
            if await self._heal_epoch(peer_id, response):
                return await self._peer_call(
                    peer_id, header, body, want_body=want_body, heal=False,
                )
        return (response, response_body) if want_body else response

    async def _heal_epoch(self, peer_id: str, response: dict) -> bool:
        """Converge with a peer that refused an op over epochs; returns
        whether a retry is worthwhile."""
        self._bump("stale_epochs", _STALE_EPOCHS)
        spec_raw = response.get("spec")
        if isinstance(spec_raw, dict):
            # The peer is ahead and sent its topology: adopt it.
            try:
                newer = ClusterSpec.from_dict(spec_raw)
            except (KeyError, TypeError, ValueError):
                return False
            return self._adopt_spec(newer)
        peer_epoch = response.get("epoch")
        if isinstance(peer_epoch, int) and peer_epoch < self.spec.epoch:
            # The peer is behind: push our spec, then retry the op.
            pushed = await self._peer_call(
                peer_id,
                {"op": "spec-update", "spec": self.spec.to_dict()},
                heal=False,
            )
            return pushed is not None and pushed.get("status") == "ok"
        return False

    def _preference_list(self, route_key: str,
                         alive: "set[str] | None" = None) -> "list[str]":
        return self.ring.preference_list(
            route_key, self.spec.replication, alive=alive,
        )

    def _owns_now(self, route_key: str) -> bool:
        """Whether this node belongs in a report's replica set under
        the *current* routing ring — either statically (a provisioned
        owner) or because dead owners pushed the alive-filtered walk
        onto it (degraded-mode range handoff).  Joining and draining
        members are not on the ring and own nothing."""
        if not route_key:
            return True  # no routing identity: wherever it landed
        if self.node_id in self._preference_list(route_key):
            return True
        alive = self.gossip.alive()
        return self.node_id in self._preference_list(route_key, alive=alive)

    def _should_hold(self, route_key: str) -> bool:
        """Whether anti-entropy should pull a report here: everything
        the node owns now, plus — while joining — everything it will
        own once the flip commits (the streamed ranges).  A draining
        member absorbs nothing new: it is handing its data off."""
        if not route_key:
            return True
        if self.status == "draining":
            return False
        if self._owns_now(route_key):
            return True
        return (
            self.target_ring is not None
            and self.node_id in self.target_ring.preference_list(
                route_key, self.spec.replication,
            )
        )

    # -- upload path: forwarding + replication ------------------------------

    async def _handle_upload(self, header: dict, body: bytes) -> dict:
        if not str(header.get("upload_id", "")) and body:
            # Synthesize the idempotency token from the blob before
            # anything else: the same bytes retried through a
            # *different* node must still dedup, and replication/
            # anti-entropy key on this id.
            header = {
                **header,
                "upload_id":
                    "blob-" + hashlib.sha256(body).hexdigest()[:24],
            }
        upload_id = str(header.get("upload_id", ""))
        already_local = (
            upload_id and self.store.entry_for_upload(upload_id) is not None
        )
        if body and not header.get("fwd") and not already_local:
            # Decode off the event loop: the route key costs a blob
            # decompression, and this path runs for every upload.
            loop = asyncio.get_running_loop()
            route_key = await loop.run_in_executor(
                None, route_key_of_blob, body
            )
            if route_key is not None and not self._owns_now(route_key):
                targets = self._preference_list(
                    route_key, alive=self.gossip.alive()
                )
                forwarded = {**header, "fwd": self.node_id}
                for peer_id in targets:
                    if peer_id == self.node_id:
                        continue
                    response = await self._peer_call(
                        peer_id, forwarded, body
                    )
                    if response is not None and not is_stale_epoch(
                        response
                    ):
                        self._bump("forwarded", _FORWARDED)
                        response.setdefault("via", self.node_id)
                        return response
                # Every owner unreachable: coordinate locally rather
                # than bounce the client — anti-entropy moves the
                # report to its owners once they return.
        return await super()._handle_upload(header, body)

    async def _post_commit(self, batch, entries) -> "list[dict]":
        """Synchronous replication: after the local durable commit,
        push each report to the live members of its preference list;
        the ack waits for every live replica's confirmation."""
        extras = []
        alive = self.gossip.alive()
        for (admitted, validated), entry in zip(batch, entries):
            replicas = [self.node_id]
            targets = self._preference_list(entry.route_key, alive=alive) \
                if entry.route_key else []
            pushes = [
                self._replicate_to(peer_id, entry, validated)
                for peer_id in targets if peer_id != self.node_id
            ]
            for peer_id, ok in zip(
                [p for p in targets if p != self.node_id],
                await asyncio.gather(*pushes) if pushes else [],
            ):
                if ok:
                    replicas.append(peer_id)
            extras.append({"node": self.node_id, "replicas": replicas})
        return extras

    async def _replicate_to(self, peer_id: str, entry, validated) -> bool:
        signature = validated.signature
        response = await self._peer_call(peer_id, {
            "op": "replicate",
            "digest": entry.digest,
            "upload_id": entry.upload_id,
            "observed_at": entry.observed_at,
            "replay_window": entry.replay_window,
            "fault_kind": entry.fault_kind,
            "program_name": entry.program_name,
            "race_pcs": list(entry.race_pcs),
            "route_key": entry.route_key,
            # Additive (an older node ignores them): the signature
            # preimage the replica needs to seed its admit cache, so a
            # duplicate of this report hitting *any* replica commits
            # without replay (DESIGN.md §13).
            "fault_pc": signature.fault_pc,
            "tail_pcs": list(signature.tail_pcs),
        }, validated.blob)
        ok = response is not None and response.get("status") == "ok"
        if ok:
            self._bump("replicated_out", _REPLICATED.labels("out"))
        return ok

    # -- cluster ops --------------------------------------------------------

    async def _handle_message(self, header: dict, body: bytes) -> dict:
        op = header.get("op")
        if op == "spec-update":
            return self._handle_spec_update(header)
        if op == "cluster-info":
            # Always answered, whatever the caller's epoch: this is the
            # refresh endpoint, and it carries the full spec.
            return {
                "status": "ok",
                "epoch": self.spec.epoch,
                "cluster": self._cluster_view(),
                "spec": self.spec.to_dict(),
            }
        claimed = header_epoch(header)
        if (claimed is not None and op in _EPOCH_GATED_OPS
                and claimed != self.spec.epoch):
            # Refuse rather than serve under mismatched rings.  If the
            # sender is behind, our spec rides the refusal so one
            # round-trip heals it; if *we* are behind, the bare refusal
            # tells the sender to push its spec (see _heal_epoch).
            self._bump("stale_epochs", _STALE_EPOCHS)
            if claimed < self.spec.epoch:
                return stale_epoch_error(self.spec.epoch,
                                         self.spec.to_dict())
            return stale_epoch_error(self.spec.epoch)
        if op == "gossip":
            return self._handle_gossip(header)
        if op == "replicate":
            return await self._handle_replicate(header, body)
        if op == "sync-digests":
            return self._handle_sync_digests(header)
        if op == "fetch-report":
            return await self._handle_fetch_report(header)
        if op == "buckets":
            return self._handle_buckets()
        return await super()._handle_message(header, body)

    def _handle_spec_update(self, header: dict) -> dict:
        raw = header.get("spec")
        if not isinstance(raw, dict):
            self._tally("protocol_errors")
            return {"status": "error",
                    "reason": "spec-update needs a spec object"}
        try:
            pushed = ClusterSpec.from_dict(raw)
        except (KeyError, TypeError, ValueError) as error:
            self._tally("protocol_errors")
            return {"status": "error",
                    "reason": f"bad cluster spec: {error}"}
        adopted = self._adopt_spec(pushed)
        return {"status": "ok", "adopted": adopted,
                "epoch": self.spec.epoch}

    def _handle_gossip(self, header: dict) -> dict:
        peer_id = header.get("from")
        counters = header.get("counters")
        if isinstance(counters, dict):
            self.gossip.observe({
                str(node): int(count)
                for node, count in counters.items()
                if isinstance(count, int)
            })
        if isinstance(peer_id, str):
            self.gossip.touch(peer_id)
        return {"status": "ok", "from": self.node_id,
                "epoch": self.spec.epoch,
                "counters": self.gossip.snapshot()}

    async def _handle_replicate(self, header: dict, body: bytes) -> dict:
        upload_id = str(header.get("upload_id", ""))
        digest = str(header.get("digest", ""))
        if not body or not upload_id or not digest:
            self._tally("protocol_errors")
            return {"status": "error",
                    "reason": "replicate needs digest, upload_id and body"}
        existing = self.store.entry_for_upload(upload_id)
        if existing is not None:
            return {"status": "ok", "duplicate": True, "seq": existing.seq}
        loop = asyncio.get_running_loop()
        entry = await loop.run_in_executor(None, functools.partial(
            self.store.add,
            digest,
            body,
            replay_window=int(header.get("replay_window", 0)),
            fault_kind=str(header.get("fault_kind", "")),
            program_name=str(header.get("program_name", "")),
            observed_at=header.get("observed_at"),
            upload_id=upload_id,
            race_pcs=tuple(header.get("race_pcs", ()) or ()),
            route_key=str(header.get("route_key", "")),
        ))
        self._bump("replicated_in", _REPLICATED.labels("in"))
        self._seed_admit_cache(header, body)
        return {"status": "ok", "duplicate": False, "seq": entry.seq}

    def _seed_admit_cache(self, header: dict, body: bytes) -> None:
        """Seed this replica's admit cache from a replicate push that
        carries the coordinator's validated signature preimage — cache
        coherence rides replication, no extra protocol round-trip."""
        if self.admit_cache is None or "tail_pcs" not in header:
            return
        from repro.fleet.admitcache import CachedOutcome, blob_fingerprint

        entry = CachedOutcome.from_json({
            "fingerprint": blob_fingerprint(body),
            "program_name": header.get("program_name", ""),
            "fault_kind": header.get("fault_kind", ""),
            "fault_pc": header.get("fault_pc"),
            "tail_pcs": header.get("tail_pcs", ()),
            "race_pcs": header.get("race_pcs", ()) or (),
            "instructions": header.get("replay_window", 0),
            "route_key": header.get("route_key", ""),
        })
        if entry is None or entry.digest != str(header.get("digest", "")):
            # A preimage that does not hash to the digest the blob was
            # committed under would let cache-hit commits diverge from
            # the replicated copy — drop it, the full path still works.
            return
        if self.admit_cache.seed_entry(entry):
            self.admit_cache.flush()

    def _handle_sync_digests(self, header: dict) -> dict:
        ranges = header.get("ranges")
        if ranges is not None:
            try:
                entries = self.store.entries_in_token_ranges(ranges)
            except (TypeError, ValueError, IndexError):
                self._tally("protocol_errors")
                return {"status": "error",
                        "reason": "ranges must be [start, end] pairs"}
        else:
            entries = self.store.entries()
        return {
            "status": "ok",
            "from": self.node_id,
            "epoch": self.spec.epoch,
            "entries": [
                {
                    "upload_id": entry.upload_id,
                    "digest": entry.digest,
                    "route_key": entry.route_key,
                    "observed_at": entry.observed_at,
                }
                for entry in entries
                if entry.upload_id
            ],
        }

    async def _handle_fetch_report(self, header: dict) -> dict:
        upload_id = str(header.get("upload_id", ""))
        entry = self.store.entry_for_upload(upload_id)
        if entry is None:
            return {"status": "error", "reason": "no such upload_id"}
        loop = asyncio.get_running_loop()
        try:
            blob = await loop.run_in_executor(
                None, self.store.path_of(entry).read_bytes
            )
        except OSError as error:
            return {"status": "error", "reason": f"blob unreadable: {error}"}
        # Body rides back beside the metadata, the same framing uploads
        # use in the other direction.
        return {
            "status": "ok",
            "digest": entry.digest,
            "upload_id": entry.upload_id,
            "observed_at": entry.observed_at,
            "replay_window": entry.replay_window,
            "fault_kind": entry.fault_kind,
            "program_name": entry.program_name,
            "race_pcs": list(entry.race_pcs),
            "route_key": entry.route_key,
            "_body": blob,
        }

    def _handle_buckets(self) -> dict:
        """Per-node triage buckets for cluster-wide merge: signature
        digest plus the distinct upload ids behind each count, so the
        cluster view can dedup replica copies.  The epoch rides along
        for quorum reads: a partitioned or dropped member keeps
        answering, but its stale epoch flags the answer instead of
        letting it pollute the merge."""
        upload_ids: "dict[str, list[str]]" = {}
        for entry in self.store.entries():
            if entry.upload_id:
                upload_ids.setdefault(entry.digest, []).append(
                    entry.upload_id
                )
        buckets = []
        for bucket in build_buckets(self.store):
            payload = bucket.to_dict()
            payload["upload_ids"] = sorted(upload_ids.get(bucket.digest, ()))
            buckets.append(payload)
        return {"status": "ok", "node": self.node_id,
                "epoch": self.spec.epoch, "buckets": buckets}

    # -- background loops ---------------------------------------------------

    async def _gossip_loop(self) -> None:
        while True:
            try:
                await asyncio.sleep(self.gossip_interval)
                self.gossip.beat()
                frame = {
                    "op": "gossip",
                    "from": self.node_id,
                    "counters": self.gossip.snapshot(),
                }
                responses = await asyncio.gather(*(
                    self._peer_call(member.node_id, dict(frame))
                    for member in self.spec.peers_of(self.node_id)
                ))
                for response in responses:
                    if response and isinstance(
                        response.get("counters"), dict
                    ):
                        self._handle_gossip(response)
                self._bump("gossip_rounds", _GOSSIP_ROUNDS)
            except asyncio.CancelledError:
                raise
            except Exception:
                # A gossip round must never kill the loop; the next
                # tick retries everything.
                continue

    async def _anti_entropy_loop(self) -> None:
        while True:
            try:
                await asyncio.sleep(self.anti_entropy_interval)
                await self.anti_entropy_round()
                if self.store.retention_window is not None:
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(None, self.store.compact)
            except asyncio.CancelledError:
                raise
            except Exception:
                continue

    async def anti_entropy_round(self) -> int:
        """Pull every report this node should hold but does not from
        live peers; returns the number fetched.  Public so tests and
        the harness can force convergence instead of sleeping.

        A joining member narrows the peer listing to the exact token
        ranges the ring diff remapped to it (``sync-digests`` range
        filter), so the pre-flip stream moves ~1/N of the keyspace,
        not N copies of everything.  A draining member pulls nothing.
        """
        if self.status == "draining":
            return 0
        alive = self.gossip.alive()
        request: dict = {"op": "sync-digests"}
        if self.status == "joining" and self.pull_ranges is not None:
            request["ranges"] = self.pull_ranges
        fetched = 0
        for member in self.spec.peers_of(self.node_id):
            if member.node_id not in alive:
                continue
            summary = await self._peer_call(member.node_id, dict(request))
            if not summary or summary.get("status") != "ok":
                continue
            for item in summary.get("entries", ()):
                upload_id = str(item.get("upload_id", ""))
                route_key = str(item.get("route_key", ""))
                if not upload_id or not route_key:
                    continue
                if not self._should_hold(route_key):
                    continue
                if self.store.entry_for_upload(upload_id) is not None:
                    continue
                if await self._fetch_from(member.node_id, upload_id):
                    fetched += 1
        return fetched

    async def _fetch_from(self, peer_id: str, upload_id: str) -> bool:
        result = await self._peer_call(
            peer_id, {"op": "fetch-report", "upload_id": upload_id},
            want_body=True,
        )
        if result is None:
            return False
        response, blob = result
        if response.get("status") != "ok" or not blob:
            return False
        if self.store.entry_for_upload(upload_id) is not None:
            return True  # raced another pull; already durable
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, functools.partial(
            self.store.add,
            str(response.get("digest", "")),
            blob,
            replay_window=int(response.get("replay_window", 0)),
            fault_kind=str(response.get("fault_kind", "")),
            program_name=str(response.get("program_name", "")),
            observed_at=response.get("observed_at"),
            upload_id=upload_id,
            race_pcs=tuple(response.get("race_pcs", ()) or ()),
            route_key=str(response.get("route_key", "")),
        ))
        self._bump("handoff_reports", _HANDOFF)
        return True

    # -- stats --------------------------------------------------------------

    def _cluster_view(self) -> dict:
        return {
            "node": self.node_id,
            "epoch": self.spec.epoch,
            "status": self.status,
            "replication": self.spec.replication,
            "members": list(self.spec.node_ids),
            "active": list(self.spec.active_ids),
            "alive": sorted(self.gossip.alive()),
            "counters": dict(self.cluster_counters),
        }

    def stats(self) -> dict:
        payload = super().stats()
        payload["cluster"] = self._cluster_view()
        return payload
