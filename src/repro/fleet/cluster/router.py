"""Client-side ring routing and the ``bugnet route`` forwarding proxy.

A cluster-aware client does not need a load balancer: it loads the
same cluster spec the nodes do, computes each blob's route digest
locally (:func:`~repro.fleet.validate.route_key_of_blob` — a decode,
no replay), and uploads straight to an owner.  :class:`RingRouter`
holds that logic plus a shared liveness memo: a connection failure
marks the node dead for every worker, success clears it, and dead
nodes are only tried as a last resort (where the server-side
forwarding in :class:`~repro.fleet.cluster.node.ClusterNodeService`
still serves the upload if the client's view was stale).

:class:`RouterService` wraps the same router in a thin wire-protocol
proxy for clients that *cannot* load a spec (legacy tooling, firewall
rules): point them at one ``bugnet route`` port and every upload lands
on its owner anyway.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro.fleet.cluster.admin import cluster_stats_quorum
from repro.fleet.cluster.topology import ClusterSpec, NodeSpec
from repro.fleet.loadsim import (
    LoadSimReport,
    ServiceClient,
    UploadOutcome,
    backoff_delay,
)
from repro.fleet.validate import route_key_of_blob
from repro.fleet.wire import (
    MAX_FRAME,
    FrameError,
    read_frame,
    write_frame,
)


class RingRouter:
    """Pick upload targets by ring position and observed liveness."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        # Route over the *active* members only: a joining node has not
        # streamed its ranges yet and a draining node is leaving — both
        # still serve (they forward), but neither is a routing target.
        self.ring = spec.routing_ring()
        self.dead: "set[str]" = set()

    def mark_dead(self, node_id: str) -> None:
        self.dead.add(node_id)

    def mark_alive(self, node_id: str) -> None:
        self.dead.discard(node_id)

    def targets_for(self, route_key: "str | None") -> "list[NodeSpec]":
        """Members in try-order for one upload: live preference-list
        owners, then other live nodes (the cluster forwards
        misdirected uploads, so any live node serves), then
        believed-dead nodes as a last resort (the belief may be
        stale)."""
        order: "list[str]" = []
        if route_key:
            for node_id in self.ring.preference_list(
                route_key, self.spec.replication
            ):
                if node_id not in order:
                    order.append(node_id)
        for node_id in self.spec.node_ids:
            if node_id not in order:
                order.append(node_id)
        ranked = ([n for n in order if n not in self.dead]
                  + [n for n in order if n in self.dead])
        return [self.spec.node(node_id) for node_id in ranked]


async def _cluster_uploader(
    router: RingRouter,
    pending: "list[tuple[str, bytes, str]]",
    report: LoadSimReport,
    max_attempts: int,
    backoff_base: float,
    rng: random.Random,
) -> None:
    """One worker: the semantics of loadsim's ``_uploader`` with the
    single (host, port) replaced by ring-ranked failover targets."""
    clients: "dict[str, ServiceClient]" = {}
    try:
        while pending:
            try:
                label, blob, upload_id = pending.pop()
            except IndexError:
                break
            route_key = route_key_of_blob(blob)
            start = time.perf_counter()
            attempts = retries = reconnects = 0
            outcome = None
            while attempts < max_attempts:
                attempts += 1
                response = None
                for member in router.targets_for(route_key):
                    client = clients.get(member.node_id)
                    if client is None:
                        client = clients[member.node_id] = ServiceClient(
                            member.host, member.port
                        )
                    try:
                        response = await client.upload(
                            label, blob, upload_id
                        )
                    except (ConnectionError, OSError, FrameError):
                        # Node gone (e.g. kill -9): fail over to the
                        # next ring successor with the same upload_id —
                        # replication made the retry idempotent even
                        # through a different node.
                        reconnects += 1
                        await client.close()
                        router.mark_dead(member.node_id)
                        continue
                    router.mark_alive(member.node_id)
                    break
                if response is None:
                    await asyncio.sleep(
                        backoff_delay(rng, backoff_base, reconnects)
                    )
                    continue
                status = response.get("status")
                if status == "retry":
                    retries += 1
                    await asyncio.sleep(
                        backoff_delay(rng, backoff_base, retries)
                    )
                    continue
                if status in ("accepted", "rejected"):
                    outcome = UploadOutcome(
                        label=label,
                        status=status,
                        attempts=attempts,
                        retries=retries,
                        reconnects=reconnects,
                        latency=time.perf_counter() - start,
                        duplicate=bool(response.get("duplicate")),
                        reason=response.get("reason", ""),
                        signature=response.get("signature"),
                    )
                    break
                reason = response.get("reason") or str(response)
                detail = response.get("detail")
                outcome = UploadOutcome(
                    label=label, status="failed", attempts=attempts,
                    retries=retries, reconnects=reconnects,
                    latency=time.perf_counter() - start,
                    reason=f"{reason}: {detail}" if detail else reason,
                )
                break
            if outcome is None:
                outcome = UploadOutcome(
                    label=label, status="failed", attempts=attempts,
                    retries=retries, reconnects=reconnects,
                    latency=time.perf_counter() - start,
                    reason="max attempts exhausted",
                )
            report.outcomes.append(outcome)
    finally:
        for client in clients.values():
            await client.close()


async def run_cluster_load_sim(
    spec: ClusterSpec,
    items: "list[tuple[str, bytes, str]]",
    concurrency: int = 8,
    max_attempts: int = 60,
    backoff_base: float = 0.02,
    seed: int = 0,
) -> LoadSimReport:
    """Upload *items* to a cluster with ring routing and failover.

    The liveness memo is shared across workers: the first worker to
    hit a dead node spares every other worker the connection timeout.
    """
    report = LoadSimReport()
    pending = list(reversed(items))
    router = RingRouter(spec)
    rng = random.Random(seed)
    start = time.perf_counter()
    workers = [
        _cluster_uploader(router, pending, report, max_attempts,
                         backoff_base, random.Random(rng.random()))
        for _ in range(max(concurrency, 1))
    ]
    await asyncio.gather(*workers)
    report.elapsed = time.perf_counter() - start
    return report


class RouterService:
    """``bugnet route``: a stateless wire-protocol proxy into the ring.

    Uploads are forwarded to a live owner and the owner's response
    relayed verbatim (plus ``"routed_to"``); ``stats`` answers with the
    cluster-aggregated view; HTTP ``GET /stats`` and ``/healthz`` work
    like a node's.  The router holds no store and acks nothing itself —
    losing it can lose no reports.
    """

    def __init__(self, spec: ClusterSpec, host: str = "127.0.0.1",
                 port: int = 0, max_frame: int = MAX_FRAME) -> None:
        self.spec = spec
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.router = RingRouter(spec)
        self._server: "asyncio.AbstractServer | None" = None
        self.forwarded = 0

    async def start(self) -> "tuple[str, int]":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.port = port
        return host, port

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            probe = await reader.readexactly(4)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        try:
            if probe == b"GET ":
                await self._handle_http(reader, writer)
            else:
                prefix: "bytes | None" = probe
                while True:
                    frame = await read_frame(reader, self.max_frame,
                                             prefix=prefix)
                    if frame is None:
                        break
                    prefix = None
                    header, body = frame
                    response = await self._route_message(header, body)
                    await write_frame(writer, response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except FrameError:
            try:
                await write_frame(writer, {
                    "status": "error", "reason": "malformed frame",
                })
            except (ConnectionError, OSError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route_message(self, header: dict, body: bytes) -> dict:
        op = header.get("op")
        if op == "ping":
            return {"status": "ok", "router": True}
        if op == "stats":
            read = await cluster_stats_quorum(self.spec)
            if not read["quorum"]["ok"]:
                # A proxy must not serve a minority view as the truth:
                # the caller learns exactly which members answered at
                # which epoch and can decide for itself.
                return {"status": "error", "reason": "quorum not met",
                        "quorum": read["quorum"]}
            return {"status": "ok",
                    "stats": read["aggregate"],
                    "quorum": read["quorum"],
                    "per_node": {
                        node_id: stats
                        for node_id, stats in read["per_node"].items()
                        if stats is not None
                    }}
        if op == "upload":
            return await self._route_upload(header, body)
        return {"status": "error", "reason": f"unknown op {op!r}"}

    async def _route_upload(self, header: dict, body: bytes) -> dict:
        loop = asyncio.get_running_loop()
        route_key = await loop.run_in_executor(
            None, route_key_of_blob, body
        ) if body else None
        for member in self.router.targets_for(route_key):
            client = ServiceClient(member.host, member.port,
                                   max_frame=self.max_frame)
            try:
                response = await client.request(header, body)
            except (ConnectionError, OSError, FrameError):
                self.router.mark_dead(member.node_id)
                continue
            finally:
                await client.close()
            self.router.mark_alive(member.node_id)
            self.forwarded += 1
            response.setdefault("routed_to", member.node_id)
            return response
        return {"status": "retry", "reason": "no reachable cluster node"}

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        import json

        request_line = await reader.readline()
        path = request_line.split(b" ")[0].decode("latin-1", "replace")
        while True:
            line = await reader.readline()
            if line in (b"", b"\r\n", b"\n"):
                break
        if path == "/stats":
            read = await cluster_stats_quorum(self.spec)
            payload = dict(read["aggregate"])
            payload["quorum"] = read["quorum"]
            body = json.dumps(payload, indent=2).encode()
            status = ("200 OK" if read["quorum"]["ok"]
                      else "503 Service Unavailable")
        elif path == "/healthz":
            read = await cluster_stats_quorum(self.spec)
            quorum = read["quorum"]
            ready = quorum["ok"]
            body = json.dumps({
                "ok": ready,
                "reason": ("ok" if ready
                           else f"quorum not met (needs "
                                f"{quorum['required']} epoch-consistent "
                                f"answers)"),
                "epoch": quorum["epoch"],
                "reachable": sorted(
                    set(quorum["consistent"]) | set(quorum["stale"])
                ),
                "stale": quorum["stale"],
            }).encode()
            status = "200 OK" if ready else "503 Service Unavailable"
        else:
            body = b'{"error": "not found"}'
            status = "404 Not Found"
        writer.write(
            f"HTTP/1.0 {status}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()
