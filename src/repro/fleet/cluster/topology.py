"""Cluster membership, the node hash ring, and gossiped liveness.

Membership is a **static seed list** (the cluster spec file every node
and client loads): production BugNet fleets are provisioned, not
elastic, so the hard problem is not discovery but *liveness* — knowing
which provisioned nodes are answering right now.  Liveness rides on
the existing wire protocol as lightweight gossip: every node keeps a
monotonic heartbeat counter per peer, bumps its own on a timer, swaps
counter maps with peers (merge by max), and declares a peer dead when
its counter stops advancing for ``fail_after`` seconds.  A connection
failure marks the peer suspect immediately — faster than waiting out
the window, and safe because a false positive only reroutes traffic
to the next ring successor.

Report placement uses the same consistent-hash construction as the
store's shard ring (sha256 virtual points, first point at or after the
key), keyed by the **route digest**
(:func:`repro.fleet.signature.route_digest`).  The
:meth:`NodeRing.preference_list` walk yields the owner and its
distinct successors — the replication set; filtered to live nodes it
is the set a coordinator actually writes to while a member is down.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Virtual points per node on the ring.  More points than the store's
#: per-shard 32 because node counts are small (3–16): 64 points keeps
#: the per-node share of the keyspace within a few percent of 1/N.
NODE_RING_VPOINTS = 64

#: Default replication factor: every committed report lives on the
#: owner plus one ring successor, so any single node death loses
#: nothing.
DEFAULT_REPLICATION = 2


@dataclass(frozen=True)
class NodeSpec:
    """One provisioned cluster member."""

    node_id: str
    host: str
    port: int

    def to_dict(self) -> dict:
        return {"id": self.node_id, "host": self.host, "port": self.port}

    @classmethod
    def from_dict(cls, raw: dict) -> "NodeSpec":
        return cls(node_id=str(raw["id"]), host=str(raw["host"]),
                   port=int(raw["port"]))


@dataclass(frozen=True)
class ClusterSpec:
    """The static seed list every node and client loads.

    The JSON shape::

        {"replication": 2,
         "nodes": [{"id": "n0", "host": "127.0.0.1", "port": 7070}, ...]}
    """

    nodes: "tuple[NodeSpec, ...]"
    replication: int = DEFAULT_REPLICATION

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster spec needs at least one node")
        ids = [node.node_id for node in self.nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in cluster spec: {ids}")
        if not 1 <= self.replication <= len(self.nodes):
            raise ValueError(
                f"replication factor {self.replication} out of range for "
                f"{len(self.nodes)} node(s)"
            )

    @property
    def node_ids(self) -> "tuple[str, ...]":
        return tuple(node.node_id for node in self.nodes)

    def node(self, node_id: str) -> NodeSpec:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"no node {node_id!r} in cluster spec "
                       f"(members: {', '.join(self.node_ids)})")

    def peers_of(self, node_id: str) -> "tuple[NodeSpec, ...]":
        self.node(node_id)  # raises on unknown id
        return tuple(n for n in self.nodes if n.node_id != node_id)

    def to_dict(self) -> dict:
        return {
            "replication": self.replication,
            "nodes": [node.to_dict() for node in self.nodes],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ClusterSpec":
        return cls(
            nodes=tuple(NodeSpec.from_dict(n) for n in raw["nodes"]),
            replication=int(raw.get("replication", DEFAULT_REPLICATION)),
        )

    def dump(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "ClusterSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))


class NodeRing:
    """Consistent-hash ring over node ids (same construction as the
    store's shard ring, disjoint token namespace)."""

    def __init__(self, node_ids, vpoints: int = NODE_RING_VPOINTS) -> None:
        self.node_ids = tuple(node_ids)
        if not self.node_ids:
            raise ValueError("node ring needs at least one node")
        self.vpoints = vpoints
        points = []
        for node_id in self.node_ids:
            for vp in range(vpoints):
                token = hashlib.sha256(
                    f"node-{node_id}#{vp}".encode()
                ).digest()
                points.append((int.from_bytes(token[:8], "big"), node_id))
        points.sort()
        self._points = points

    @staticmethod
    def key_of(route_key: str) -> int:
        """Ring position of a route digest (first 16 hex chars, like
        ``ReportStore.shard_of``)."""
        return int(route_key[:16], 16)

    def _walk(self, route_key: str):
        """Ring points starting at the key's position, wrapping once."""
        start = bisect.bisect_right(
            self._points, (self.key_of(route_key), "")
        )
        count = len(self._points)
        for offset in range(count):
            yield self._points[(start + offset) % count][1]

    def owner(self, route_key: str) -> str:
        """The node that owns a route digest (first ring point at or
        after it)."""
        return next(self._walk(route_key))

    def preference_list(
        self,
        route_key: str,
        count: int,
        alive: "set[str] | None" = None,
    ) -> "list[str]":
        """The first *count* **distinct** nodes at or after the key.

        With *alive*, dead nodes are skipped and the walk continues to
        later successors — the write set degrades gracefully while a
        member is down instead of shrinking the replica count.
        """
        found: list[str] = []
        for node_id in self._walk(route_key):
            if node_id in found:
                continue
            if alive is not None and node_id not in alive:
                continue
            found.append(node_id)
            if len(found) >= count:
                break
        return found


@dataclass
class GossipState:
    """Heartbeat-counter liveness for one node's view of the cluster.

    Counters only ever grow; merging two views takes the per-node max,
    so gossip is commutative, idempotent, and order-free.  A peer is
    alive while its counter keeps advancing; ``fail_after`` seconds of
    silence (or an outright connection failure) marks it dead.  The
    clock is injectable (``now`` parameters) so tests never sleep.
    """

    self_id: str
    node_ids: "tuple[str, ...]"
    fail_after: float = 2.0
    counters: "dict[str, int]" = field(default_factory=dict)
    _advanced_at: "dict[str, float]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        now = time.monotonic()
        for node_id in self.node_ids:
            self.counters.setdefault(node_id, 0)
            self._advanced_at.setdefault(node_id, now)

    def beat(self) -> None:
        """Bump our own heartbeat (called on the gossip timer)."""
        self.counters[self.self_id] += 1
        self._advanced_at[self.self_id] = time.monotonic()

    def observe(self, counters: "dict[str, int]",
                now: "float | None" = None) -> None:
        """Merge a peer's counter map (by max); an advanced counter is
        proof of life at *now*."""
        if now is None:
            now = time.monotonic()
        for node_id, counter in counters.items():
            if node_id not in self.counters:
                continue  # not in the provisioned seed list: ignore
            if counter > self.counters[node_id]:
                self.counters[node_id] = counter
                self._advanced_at[node_id] = now

    def touch(self, node_id: str, now: "float | None" = None) -> None:
        """Direct contact with a peer is proof of life regardless of
        counters.  This is what lets a *restarted* node rejoin: its
        heartbeat counter restarts at zero (below everyone's merged
        view, so :meth:`observe` alone would never revive it), but the
        gossip frame it just sent or answered is undeniable."""
        if node_id in self._advanced_at:
            self._advanced_at[node_id] = (
                time.monotonic() if now is None else now
            )

    def mark_dead(self, node_id: str) -> None:
        """Connection failure: stop routing to the peer immediately by
        backdating its last advance past the failure window."""
        if node_id in self._advanced_at:
            self._advanced_at[node_id] = (
                time.monotonic() - self.fail_after - 1.0
            )

    def is_alive(self, node_id: str, now: "float | None" = None) -> bool:
        if node_id == self.self_id:
            return True
        if now is None:
            now = time.monotonic()
        return (now - self._advanced_at.get(node_id, 0.0)) < self.fail_after

    def alive(self, now: "float | None" = None) -> "set[str]":
        """Provisioned nodes currently believed alive (always includes
        self)."""
        if now is None:
            now = time.monotonic()
        return {
            node_id for node_id in self.node_ids
            if self.is_alive(node_id, now)
        }

    def snapshot(self) -> "dict[str, int]":
        """The counter map to ship in a gossip frame."""
        return dict(self.counters)
