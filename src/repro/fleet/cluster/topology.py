"""Cluster membership, the node hash ring, and gossiped liveness.

Membership is an **epoch-versioned** cluster spec: a monotonic
``epoch`` counter versions every topology the cluster has ever agreed
on, and every cluster wire message carries its sender's epoch so a
stale peer is *told to refresh* instead of silently mis-routing
(DESIGN.md §14).  The spec still travels as a JSON seed file — but it
is now a snapshot of one epoch, not frozen truth: planned topology
changes (``bugnet cluster add-node`` / ``decommission``) mint new
epochs and push them to the live members, which persist the newest
spec beside their store and gossip it onward.

Each member carries a **status**:

* ``active`` — in the routing ring: owns vpoint ranges, coordinates
  writes, serves quorum reads.
* ``joining`` — addressable and gossiped, but *not* in the routing
  ring yet.  A joining node streams its future ranges from the
  current owners (via the ordinary anti-entropy ops) while the old
  ring keeps serving; only when the stream converges does the next
  epoch flip it to ``active``.
* ``draining`` — leaving: out of the routing ring (so new writes route
  to its successors, and an upload that still lands on it is
  *forwarded*, never refused), but still serving reads and
  anti-entropy fetches so the survivors can absorb its ranges.  Once
  every report it holds is fully replicated among the actives, the
  next epoch drops it from the spec.

Liveness is orthogonal to membership and rides the existing wire
protocol as lightweight gossip: every node keeps a monotonic heartbeat
counter per peer, bumps its own on a timer, swaps counter maps with
peers (merge by max), and declares a peer dead when its counter stops
advancing for ``fail_after`` seconds.  A connection failure marks the
peer suspect immediately — faster than waiting out the window, and
safe because a false positive only reroutes traffic to the next ring
successor.

Report placement uses the same consistent-hash construction as the
store's shard ring (sha256 virtual points, first point at or after the
key), keyed by the **route digest**
(:func:`repro.fleet.signature.route_digest`) over the ring of *active*
members only.  :func:`diff_rings` computes exactly which token ranges
change hands between two epochs — the ranges a joining node must
stream in, and the property ``tests/test_cluster_topology.py`` pins:
nothing outside the diff moves, everything inside it does.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

#: Virtual points per node on the ring.  More points than the store's
#: per-shard 32 because node counts are small (3–16): 64 points keeps
#: the per-node share of the keyspace within a few percent of 1/N.
NODE_RING_VPOINTS = 64

#: Default replication factor: every committed report lives on the
#: owner plus one ring successor, so any single node death loses
#: nothing.
DEFAULT_REPLICATION = 2

#: Valid member statuses (see the module docstring).
NODE_STATUSES = ("active", "joining", "draining")

#: The full 64-bit ring token space (tokens are the first 8 bytes of a
#: sha256, interpreted big-endian).
TOKEN_SPACE = 1 << 64


@dataclass(frozen=True)
class NodeSpec:
    """One provisioned cluster member."""

    node_id: str
    host: str
    port: int
    status: str = "active"

    def __post_init__(self) -> None:
        if self.status not in NODE_STATUSES:
            raise ValueError(
                f"node {self.node_id!r} has unknown status "
                f"{self.status!r} (expected one of {NODE_STATUSES})"
            )

    def to_dict(self) -> dict:
        payload = {"id": self.node_id, "host": self.host, "port": self.port}
        if self.status != "active":
            payload["status"] = self.status
        return payload

    @classmethod
    def from_dict(cls, raw: dict) -> "NodeSpec":
        return cls(node_id=str(raw["id"]), host=str(raw["host"]),
                   port=int(raw["port"]),
                   status=str(raw.get("status", "active")))


@dataclass(frozen=True)
class ClusterSpec:
    """One epoch of cluster topology (the JSON every node and client
    loads, persists, and pushes).

    The JSON shape::

        {"epoch": 3,
         "replication": 2,
         "nodes": [{"id": "n0", "host": "127.0.0.1", "port": 7070},
                   {"id": "n3", "host": "127.0.0.1", "port": 7073,
                    "status": "joining"},
                   ...]}

    A spec without an ``epoch`` key is epoch 1 (the pre-elasticity
    format — identical on disk, so PR-8 seed files load unchanged).
    """

    nodes: "tuple[NodeSpec, ...]"
    replication: int = DEFAULT_REPLICATION
    epoch: int = 1

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster spec needs at least one node")
        ids = [node.node_id for node in self.nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in cluster spec: {ids}")
        if not isinstance(self.epoch, int) or self.epoch < 1:
            raise ValueError(f"cluster epoch must be a positive integer, "
                             f"got {self.epoch!r}")
        active = self.active_ids
        if not active:
            raise ValueError(
                "cluster spec has no active node: the routing ring "
                "would be empty"
            )
        if not 1 <= self.replication <= len(active):
            raise ValueError(
                f"replication factor {self.replication} out of range for "
                f"{len(active)} active node(s) "
                f"({len(self.nodes)} member(s) total)"
            )

    @property
    def node_ids(self) -> "tuple[str, ...]":
        """Every member id, regardless of status."""
        return tuple(node.node_id for node in self.nodes)

    @property
    def active_ids(self) -> "tuple[str, ...]":
        """Members in the routing ring (status ``active``)."""
        return tuple(node.node_id for node in self.nodes
                     if node.status == "active")

    def node(self, node_id: str) -> NodeSpec:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"no node {node_id!r} in cluster spec "
                       f"(members: {', '.join(self.node_ids)})")

    def has_node(self, node_id: str) -> bool:
        return any(node.node_id == node_id for node in self.nodes)

    def peers_of(self, node_id: str) -> "tuple[NodeSpec, ...]":
        self.node(node_id)  # raises on unknown id
        return tuple(n for n in self.nodes if n.node_id != node_id)

    def routing_ring(self, vpoints: int = NODE_RING_VPOINTS) -> "NodeRing":
        """The consistent-hash ring over the *active* members."""
        return NodeRing(self.active_ids, vpoints=vpoints)

    # -- epoch-minting mutations (all return a NEW spec) --------------------

    def add_member(self, node: NodeSpec) -> "ClusterSpec":
        """Epoch+1 spec with *node* appended (typically ``joining``)."""
        if self.has_node(node.node_id):
            raise ValueError(f"node {node.node_id!r} is already a member")
        return ClusterSpec(nodes=self.nodes + (node,),
                           replication=self.replication,
                           epoch=self.epoch + 1)

    def set_status(self, node_id: str, status: str) -> "ClusterSpec":
        """Epoch+1 spec with one member's status changed."""
        self.node(node_id)
        return ClusterSpec(
            nodes=tuple(
                replace(n, status=status) if n.node_id == node_id else n
                for n in self.nodes
            ),
            replication=self.replication,
            epoch=self.epoch + 1,
        )

    def drop_member(self, node_id: str) -> "ClusterSpec":
        """Epoch+1 spec without *node_id*."""
        self.node(node_id)
        return ClusterSpec(
            nodes=tuple(n for n in self.nodes if n.node_id != node_id),
            replication=self.replication,
            epoch=self.epoch + 1,
        )

    def activated(self, node_id: str) -> "ClusterSpec":
        """The *hypothetical* topology with one member active — same
        epoch, used to compute a joining node's target ring (what it
        will own once the flip commits), never persisted."""
        member = self.node(node_id)
        if member.status == "active":
            return self
        return ClusterSpec(
            nodes=tuple(
                replace(n, status="active") if n.node_id == node_id else n
                for n in self.nodes
            ),
            replication=self.replication,
            epoch=self.epoch,
        )

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "replication": self.replication,
            "nodes": [node.to_dict() for node in self.nodes],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ClusterSpec":
        return cls(
            nodes=tuple(NodeSpec.from_dict(n) for n in raw["nodes"]),
            replication=int(raw.get("replication", DEFAULT_REPLICATION)),
            epoch=int(raw.get("epoch", 1)),
        )

    def dump(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "ClusterSpec":
        """Load and *fully validate* a spec file, with errors that name
        the file and the violated constraint — a replication factor the
        membership cannot satisfy must fail here, at load, not surface
        later as an alive-filtered preference-walk shortfall."""
        try:
            raw = json.loads(Path(path).read_text())
        except OSError as error:
            raise ValueError(
                f"cluster spec {path}: unreadable ({error})"
            ) from error
        except ValueError as error:
            raise ValueError(
                f"cluster spec {path}: not valid JSON ({error})"
            ) from error
        try:
            return cls.from_dict(raw)
        except (KeyError, TypeError, ValueError) as error:
            detail = (f"missing key {error}" if isinstance(error, KeyError)
                      else str(error))
            raise ValueError(
                f"cluster spec {path}: {detail}"
            ) from error


class NodeRing:
    """Consistent-hash ring over node ids (same construction as the
    store's shard ring, disjoint token namespace)."""

    def __init__(self, node_ids, vpoints: int = NODE_RING_VPOINTS) -> None:
        self.node_ids = tuple(node_ids)
        if not self.node_ids:
            raise ValueError("node ring needs at least one node")
        self.vpoints = vpoints
        points = []
        for node_id in self.node_ids:
            for vp in range(vpoints):
                token = hashlib.sha256(
                    f"node-{node_id}#{vp}".encode()
                ).digest()
                points.append((int.from_bytes(token[:8], "big"), node_id))
        points.sort()
        self._points = points

    @staticmethod
    def key_of(route_key: str) -> int:
        """Ring position of a route digest (first 16 hex chars, like
        ``ReportStore.shard_of``)."""
        return int(route_key[:16], 16)

    def tokens(self) -> "list[int]":
        """The sorted vpoint tokens (ring arc boundaries)."""
        return [token for token, _node in self._points]

    def _walk_token(self, token: int):
        """Ring points starting at *token*'s position, wrapping once."""
        start = bisect.bisect_right(self._points, (token, ""))
        count = len(self._points)
        for offset in range(count):
            yield self._points[(start + offset) % count][1]

    def _walk(self, route_key: str):
        return self._walk_token(self.key_of(route_key))

    def owner(self, route_key: str) -> str:
        """The node that owns a route digest (first ring point at or
        after it)."""
        return next(self._walk(route_key))

    def preference_list(
        self,
        route_key: str,
        count: int,
        alive: "set[str] | None" = None,
    ) -> "list[str]":
        """The first *count* **distinct** nodes at or after the key.

        With *alive*, dead nodes are skipped and the walk continues to
        later successors — the write set degrades gracefully while a
        member is down instead of shrinking the replica count.
        """
        return self.preference_list_token(
            self.key_of(route_key), count, alive=alive,
        )

    def preference_list_token(
        self,
        token: int,
        count: int,
        alive: "set[str] | None" = None,
    ) -> "list[str]":
        """:meth:`preference_list` keyed by a raw ring token."""
        found: "list[str]" = []
        for node_id in self._walk_token(token):
            if node_id in found:
                continue
            if alive is not None and node_id not in alive:
                continue
            found.append(node_id)
            if len(found) >= count:
                break
        return found


@dataclass(frozen=True)
class RangeTransfer:
    """One token range that changes hands between two ring epochs.

    The range is the half-open arc ``(start, end]`` on the 64-bit ring
    (wrapping when ``start >= end``).  *sources* is the range's old
    preference list (who holds the data today); *targets* are the
    nodes that gain the range (who must stream it in before the flip).
    """

    start: int
    end: int
    sources: "tuple[str, ...]"
    targets: "tuple[str, ...]"

    def as_pair(self) -> "list[int]":
        """The wire shape (``sync-digests`` range filters)."""
        return [self.start, self.end]


def token_in_range(token: int, start: int, end: int) -> bool:
    """Whether *token* lies on the ring arc ``(start, end]``."""
    if start < end:
        return start < token <= end
    # Wrapping arc (or the full ring when start == end).
    return token > start or token <= end


def token_in_ranges(token: int, ranges) -> bool:
    """Whether *token* lies in any ``(start, end]`` pair of *ranges*."""
    return any(token_in_range(token, int(start), int(end))
               for start, end in ranges)


def diff_rings(old: NodeRing, new: NodeRing,
               replication: int) -> "list[RangeTransfer]":
    """The exact token ranges whose preference list changes from *old*
    to *new*, as :class:`RangeTransfer` entries.

    Preference lists are constant on each elementary arc between
    consecutive vpoints of the merged rings, so walking those arcs is
    exhaustive: a route key's replica set changes between the epochs
    iff its token lies in one of the returned ranges (the property
    ``tests/test_cluster_topology.py`` pins).  Adjacent arcs with the
    same (sources, targets) pair are coalesced.
    """
    boundaries = sorted(set(old.tokens()) | set(new.tokens()))
    if not boundaries:
        return []
    transfers: "list[RangeTransfer]" = []
    previous = boundaries[-1]  # the wrap arc ends at boundaries[0]
    for boundary in boundaries:
        old_set = old.preference_list_token(boundary, replication)
        new_set = new.preference_list_token(boundary, replication)
        gained = tuple(n for n in new_set if n not in old_set)
        if gained:
            last = transfers[-1] if transfers else None
            if (last is not None and last.end == previous
                    and last.sources == tuple(old_set)
                    and last.targets == gained):
                transfers[-1] = RangeTransfer(
                    last.start, boundary, last.sources, last.targets,
                )
            else:
                transfers.append(RangeTransfer(
                    previous, boundary, tuple(old_set), gained,
                ))
        previous = boundary
    return transfers


def ranges_gained_by(transfers, node_id: str) -> "list[list[int]]":
    """The ``(start, end]`` pairs of every transfer targeting one node
    (the wire shape a joining node passes to ``sync-digests``)."""
    return [transfer.as_pair() for transfer in transfers
            if node_id in transfer.targets]


@dataclass
class GossipState:
    """Heartbeat-counter liveness for one node's view of the cluster.

    Counters only ever grow; merging two views takes the per-node max,
    so gossip is commutative, idempotent, and order-free.  A peer is
    alive while its counter keeps advancing; ``fail_after`` seconds of
    silence (or an outright connection failure) marks it dead.  The
    clock is injectable (``now`` parameters) so tests never sleep.
    """

    self_id: str
    node_ids: "tuple[str, ...]"
    fail_after: float = 2.0
    counters: "dict[str, int]" = field(default_factory=dict)
    _advanced_at: "dict[str, float]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        now = time.monotonic()
        for node_id in self.node_ids:
            self.counters.setdefault(node_id, 0)
            self._advanced_at.setdefault(node_id, now)

    def update_members(self, node_ids,
                       now: "float | None" = None) -> None:
        """Adopt a new membership (epoch change): existing counters and
        last-advance times survive, new members start alive (they get
        the grace window every freshly-seeded peer gets), removed
        members are forgotten."""
        if now is None:
            now = time.monotonic()
        self.node_ids = tuple(node_ids)
        keep = set(self.node_ids)
        for node_id in self.node_ids:
            self.counters.setdefault(node_id, 0)
            self._advanced_at.setdefault(node_id, now)
        for node_id in list(self.counters):
            if node_id not in keep:
                del self.counters[node_id]
                self._advanced_at.pop(node_id, None)

    def beat(self) -> None:
        """Bump our own heartbeat (called on the gossip timer)."""
        self.counters[self.self_id] += 1
        self._advanced_at[self.self_id] = time.monotonic()

    def observe(self, counters: "dict[str, int]",
                now: "float | None" = None) -> None:
        """Merge a peer's counter map (by max); an advanced counter is
        proof of life at *now*."""
        if now is None:
            now = time.monotonic()
        for node_id, counter in counters.items():
            if node_id not in self.counters:
                continue  # not in the current membership: ignore
            if counter > self.counters[node_id]:
                self.counters[node_id] = counter
                self._advanced_at[node_id] = now

    def touch(self, node_id: str, now: "float | None" = None) -> None:
        """Direct contact with a peer is proof of life regardless of
        counters.  This is what lets a *restarted* node rejoin: its
        heartbeat counter restarts at zero (below everyone's merged
        view, so :meth:`observe` alone would never revive it), but the
        gossip frame it just sent or answered is undeniable."""
        if node_id in self._advanced_at:
            self._advanced_at[node_id] = (
                time.monotonic() if now is None else now
            )

    def mark_dead(self, node_id: str) -> None:
        """Connection failure: stop routing to the peer immediately by
        backdating its last advance past the failure window."""
        if node_id in self._advanced_at:
            self._advanced_at[node_id] = (
                time.monotonic() - self.fail_after - 1.0
            )

    def is_alive(self, node_id: str, now: "float | None" = None) -> bool:
        if node_id == self.self_id:
            return True
        if now is None:
            now = time.monotonic()
        return (now - self._advanced_at.get(node_id, 0.0)) < self.fail_after

    def alive(self, now: "float | None" = None) -> "set[str]":
        """Members currently believed alive (always includes self)."""
        if now is None:
            now = time.monotonic()
        return {
            node_id for node_id in self.node_ids
            if self.is_alive(node_id, now)
        }

    def snapshot(self) -> "dict[str, int]":
        """The counter map to ship in a gossip frame."""
        return dict(self.counters)
