"""Validated, batched crash-report ingestion.

Every report admitted to the fleet store must *replay*: the pipeline
deserializes the blob, resolves the program binary it names, replays the
faulting thread's log chain (checking it lands on the recorded faulting
PC), optionally probes that the fault actually reproduces, and only then
derives the signature and commits the blob to the store.  Corrupt,
truncated, or divergent reports are rejected with a reason instead of
poisoning triage — iReplayer's in-situ-validation discipline applied at
the developer site.

Validation (decode + replay) is the expensive, side-effect-free part.
A batch can fan it out across a thread pool — but be honest about what
that buys in pure Python: zlib decompression and file reads overlap
(they release the GIL), while the interpreter-loop replay serializes on
it, so ``workers > 1`` yields only modest gains on replay-heavy
traffic.  The pool's real job is structural: validation is kept
side-effect-free and batched so that process-level sharding (one ingest
process per shard range) is a drop-in scaling step.  Commits to the
(single writer) store happen on the calling thread, in submission
order, which keeps sequence numbers — and therefore eviction and triage
recency — deterministic regardless of worker timing.
"""

from __future__ import annotations

import struct
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.arch.program import Program
from repro.common.errors import ReproError
from repro.fleet.signature import (
    DEFAULT_TAIL_DEPTH,
    CrashSignature,
    replay_tail,
    signature_from_tail,
)
from repro.fleet.store import ReportStore, StoredEntry
from repro.replay.replayer import Replayer
from repro.tracing.serialize import load_crash_report

#: Everything a hostile/corrupt blob can legitimately raise while being
#: decoded: our own error hierarchy, zlib/struct framing errors, and
#: field-validation errors from reconstructing the recorder config.
_DECODE_ERRORS = (ReproError, zlib.error, struct.error, ValueError, KeyError)

ProgramResolver = Callable[[str], "Program | None"]


@dataclass
class IngestResult:
    """Outcome of ingesting one report."""

    label: str
    accepted: bool
    reason: str                        # "ok" or the rejection reason
    signature: CrashSignature | None = None
    entry: StoredEntry | None = None
    instructions_replayed: int = 0

    @property
    def digest(self) -> str | None:
        """Signature digest, when validation got that far."""
        return self.signature.digest if self.signature else None


@dataclass
class _Validated:
    """A report that survived validation, ready to commit."""

    label: str
    blob: bytes
    observed_at: int | None
    signature: CrashSignature
    fault_kind: str
    program_name: str
    instructions: int    # validated replay window = instructions replayed


class IngestPipeline:
    """Validates and commits crash reports into a :class:`ReportStore`."""

    def __init__(
        self,
        store: ReportStore,
        resolver: ProgramResolver,
        tail_depth: int = DEFAULT_TAIL_DEPTH,
        workers: int = 1,
        probe: bool = True,
    ) -> None:
        self.store = store
        self.resolver = resolver
        self.tail_depth = tail_depth
        self.workers = max(workers, 1)
        self.probe = probe
        self.accepted = 0
        self.rejected = 0

    # -- validation (pure, runs on workers) --------------------------------

    def _validate(self, label: str, blob: bytes, observed_at: int):
        """Returns _Validated or a rejecting IngestResult."""
        try:
            report, config = load_crash_report(blob)
        except _DECODE_ERRORS as error:
            return IngestResult(label, False, f"decode: {error}")
        program = self.resolver(report.program_name)
        if program is None:
            return IngestResult(
                label, False, f"unknown program {report.program_name!r}"
            )
        try:
            tail = replay_tail(report, config, program, self.tail_depth)
        except _DECODE_ERRORS as error:
            return IngestResult(label, False, f"replay: {error}")
        last_fll = tail.last_fll
        if last_fll.fault_pc is None:
            # The faulting thread's final resident checkpoint never
            # recorded a fault point: the fault interval was stripped or
            # the report was tampered with.  Accepting it would skip
            # every fault check below.
            return IngestResult(
                label, False,
                "final checkpoint records no fault point "
                "(fault interval missing from the chain)",
            )
        if last_fll.fault_pc != report.fault_pc:
            return IngestResult(
                label, False,
                f"fault pc mismatch: log says {last_fll.fault_pc:#010x}, "
                f"report says {report.fault_pc:#010x}",
            )
        if tail.end_pc != report.fault_pc:
            return IngestResult(
                label, False,
                f"replay ends at {tail.end_pc:#010x}, "
                f"not the faulting pc {report.fault_pc:#010x}",
            )
        if self.probe and not self._probe_fault(report, config, program, tail):
            return IngestResult(
                label, False,
                f"fault does not reproduce at {report.fault_pc:#010x}",
            )
        return _Validated(
            label=label,
            blob=blob,
            observed_at=observed_at,
            signature=signature_from_tail(report, tail),
            fault_kind=report.fault_kind,
            program_name=report.program_name,
            # The *validated* window: instructions the chain actually
            # replayed (an ungrounded prefix would overstate it).
            instructions=tail.instructions,
        )

    def _probe_fault(self, report, config, program, tail) -> bool:
        """Re-execute the faulting instruction against the replayed state
        the validation replay already produced."""
        replayer = Replayer(program, config)
        fault = replayer.probe_fault(
            tail.last_fll, tail.memory, tail.end_pc, tail.end_regs,
            mapped_pages=report.mapped_pages,
        )
        return fault is not None and fault.kind == report.fault_kind

    # -- commit (store writer, calling thread only) -------------------------

    def _commit(self, validated: _Validated) -> IngestResult:
        entry = self.store.add(
            validated.signature.digest,
            validated.blob,
            replay_window=validated.instructions,
            fault_kind=validated.fault_kind,
            program_name=validated.program_name,
            observed_at=validated.observed_at,
        )
        return IngestResult(
            label=validated.label,
            accepted=True,
            reason="ok",
            signature=validated.signature,
            entry=entry,
            instructions_replayed=validated.instructions,
        )

    # -- public API ---------------------------------------------------------

    def ingest_blob(self, label: str, blob: bytes,
                    observed_at: "int | None" = None) -> IngestResult:
        """Validate and (if clean) store one report."""
        return self.ingest_many([(label, blob, observed_at)])[0]

    def ingest_many(
        self, items: "list[tuple[str, bytes, int | None]]"
    ) -> list[IngestResult]:
        """Ingest a batch of ``(label, blob, observed_at)`` items.

        An ``observed_at`` of ``None`` takes the store's monotonic
        sequence number, which stays correctly ordered across separate
        ingest invocations.  Validation runs on ``workers`` threads;
        commits happen here in submission order, so results (sequence
        numbers, evictions) are identical whatever the pool's
        scheduling did.
        """
        if self.workers == 1 or len(items) <= 1:
            outcomes = [self._validate(*item) for item in items]
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(pool.map(lambda it: self._validate(*it), items))
        results = []
        for outcome in outcomes:
            if isinstance(outcome, _Validated):
                outcome = self._commit(outcome)
            if outcome.accepted:
                self.accepted += 1
            else:
                self.rejected += 1
            results.append(outcome)
        return results

    def ingest_paths(self, paths, observed_at_of=None) -> list[IngestResult]:
        """Ingest report files; ``observed_at_of(path) -> int`` is optional
        (default: the store's monotonic ingest order)."""
        items = []
        for path in paths:
            with open(path, "rb") as handle:
                blob = handle.read()
            observed = observed_at_of(path) if observed_at_of else None
            items.append((str(path), blob, observed))
        return self.ingest_many(items)


def resolver_from_programs(programs: "dict[str, Program]") -> ProgramResolver:
    """Resolver over an explicit name → program mapping."""
    return programs.get


def resolver_from_sources(sources: "list[tuple[str, Program]]") -> ProgramResolver:
    """Resolver for CLI use: match report program names against assembled
    sources by full name, then basename; a single source matches anything
    (the common one-binary case)."""
    by_name = {name: program for name, program in sources}
    by_base = {name.rsplit("/", 1)[-1]: program for name, program in sources}

    def resolve(name: str) -> "Program | None":
        if name in by_name:
            return by_name[name]
        base = name.rsplit("/", 1)[-1]
        if base in by_base:
            return by_base[base]
        if len(sources) == 1:
            return sources[0][1]
        return None

    return resolve
