"""Validated, batched crash-report ingestion (the CLI batch path).

Every report admitted to the fleet store must *replay*: the pipeline
deserializes the blob, resolves the program binary it names, replays the
faulting thread's log chain (checking it lands on the recorded faulting
PC), optionally probes that the fault actually reproduces, and only then
derives the signature and commits the blob to the store.  Corrupt,
truncated, or divergent reports are rejected with a reason instead of
poisoning triage — iReplayer's in-situ-validation discipline applied at
the developer site.

Validation itself lives in :mod:`repro.fleet.validate` as a pure
function: this pipeline and the live ingestion service
(:mod:`repro.fleet.service`) call the exact same code, so a report
accepted by ``bugnet ingest`` is accepted by ``bugnet serve`` and vice
versa (pinned by tests).  The batch pipeline can still fan validation
out across a *thread* pool — decompression and file reads overlap
while the GIL serializes replay — but its real scaling story is the
service's process pool; this class stays the simple, deterministic,
single-process path.  Commits happen on the calling thread, in
submission order, which keeps sequence numbers — and therefore
eviction and triage recency — deterministic regardless of worker
timing.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.arch.program import Program
from repro.fleet.signature import DEFAULT_TAIL_DEPTH
from repro.fleet.store import ReportStore
from repro.fleet.validate import (
    DECODE_ERRORS,
    IngestResult,
    ProgramResolver,
    ValidatedReport,
    validate_report,
)
from repro.obs import REGISTRY as _OBS

_INGEST_OUTCOMES = _OBS.counter(
    "bugnet_ingest_outcomes_total",
    "Batch-pipeline ingest outcomes (committed or rejected).",
    ("outcome",),
)

#: Backward-compatible aliases (this module's original names).
_DECODE_ERRORS = DECODE_ERRORS
_Validated = ValidatedReport


class IngestPipeline:
    """Validates and commits crash reports into a :class:`ReportStore`."""

    def __init__(
        self,
        store: ReportStore,
        resolver: ProgramResolver,
        tail_depth: int = DEFAULT_TAIL_DEPTH,
        workers: int = 1,
        probe: bool = True,
        commit_batch: int = 16,
        admit_cache=None,
    ) -> None:
        self.store = store
        self.resolver = resolver
        self.tail_depth = tail_depth
        self.workers = max(workers, 1)
        self.probe = probe
        # Commits are chunked: add_many protects a whole batch from
        # eviction, so an uncapped batch would let one huge ingest run
        # blow straight through the store's byte budget.
        self.commit_batch = max(commit_batch, 1)
        # Optional first admission tier (repro.fleet.admitcache): repeat
        # blobs commit without replay, minus the deterministic sampled
        # reverify fraction.  None (the default) validates everything.
        self.admit_cache = admit_cache
        self.accepted = 0
        self.rejected = 0
        self.cache_hits = 0
        self.reverified = 0

    # -- validation (pure, runs on workers) --------------------------------

    def _validate(self, label: str, blob: bytes, observed_at: int):
        """Returns ValidatedReport or a rejecting IngestResult."""
        return validate_report(
            label, blob, observed_at, self.resolver,
            tail_depth=self.tail_depth, probe=self.probe,
        )

    # -- commit (store writer, calling thread only) -------------------------

    def _commit_batch(
        self, validated: "list[ValidatedReport]"
    ) -> "list[IngestResult]":
        """Commit validated reports in submission order, chunked into
        locked store passes of ``commit_batch`` (consecutive sequence
        numbers; one metadata/eviction sweep per chunk, so the byte
        budget is enforced *during* a large run, not only after it)."""
        entries = []
        for start in range(0, len(validated), self.commit_batch):
            chunk = validated[start: start + self.commit_batch]
            entries.extend(self.store.add_many([
                {
                    "digest": item.signature.digest,
                    "blob": item.blob,
                    "replay_window": item.instructions,
                    "fault_kind": item.fault_kind,
                    "program_name": item.program_name,
                    "observed_at": item.observed_at,
                    "race_pcs": item.signature.race_pcs,
                    "route_key": item.route_key,
                }
                for item in chunk
            ]))
        return [
            IngestResult(
                label=item.label,
                accepted=True,
                reason="ok",
                signature=item.signature,
                entry=entry,
                instructions_replayed=item.instructions,
                stage_ms=item.stage_ms,
            )
            for item, entry in zip(validated, entries)
        ]

    # -- public API ---------------------------------------------------------

    def ingest_blob(self, label: str, blob: bytes,
                    observed_at: "int | None" = None) -> IngestResult:
        """Validate and (if clean) store one report."""
        return self.ingest_many([(label, blob, observed_at)])[0]

    def ingest_many(
        self, items: "list[tuple[str, bytes, int | None]]"
    ) -> list[IngestResult]:
        """Ingest a batch of ``(label, blob, observed_at)`` items.

        An ``observed_at`` of ``None`` takes the store's monotonic
        sequence number, which stays correctly ordered across separate
        ingest invocations.  Validation runs on ``workers`` threads;
        commits happen here in submission order, so results (sequence
        numbers, evictions) are identical whatever the pool's
        scheduling did.

        With an :class:`~repro.fleet.admitcache.AdmitCache` attached,
        repeat blobs skip validation entirely (their cached outcome
        commits byte-identically) except for the cache's deterministic
        reverify sample, which replays in full and is cross-checked
        against the cache — a mismatch quarantines the bucket.
        """
        cache = self.admit_cache
        outcomes: "list" = [None] * len(items)
        reverify: "dict[int, object]" = {}
        deferred: "dict[int, tuple[str, int]]" = {}
        if cache is None:
            pending = list(enumerate(items))
        else:
            from repro.fleet.admitcache import blob_fingerprint

            pending = []
            # Intra-batch dedup: a blob byte-identical to an earlier
            # *miss* in this same batch defers to that leader's outcome
            # instead of replaying again (the cache only learns the
            # leader after validation, too late for an upfront probe).
            leaders: "dict[str, int]" = {}
            for position, (label, blob, observed_at) in enumerate(items):
                entry = cache.probe(blob)
                if entry is not None:
                    if cache.should_reverify(entry.fingerprint, label):
                        reverify[position] = entry
                        pending.append((position, items[position]))
                    else:
                        self.cache_hits += 1
                        outcomes[position] = entry.validated(
                            label, blob, observed_at
                        )
                    continue
                fingerprint = blob_fingerprint(blob)
                leader = leaders.get(fingerprint)
                if leader is not None and not cache.should_reverify(
                    fingerprint, label
                ):
                    self.cache_hits += 1
                    deferred[position] = (fingerprint, leader)
                else:
                    leaders.setdefault(fingerprint, position)
                    pending.append((position, items[position]))
        pending_items = [item for _position, item in pending]
        if self.workers == 1 or len(pending_items) <= 1:
            validated = [self._validate(*item) for item in pending_items]
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                validated = list(pool.map(
                    lambda it: self._validate(*it), pending_items
                ))
        dirty = False
        for (position, item), outcome in zip(pending, validated):
            outcomes[position] = outcome
            if cache is None:
                continue
            expected = reverify.get(position)
            if expected is not None:
                self.reverified += 1
                # quarantine-on-mismatch flushes inside the cache; the
                # full validation's outcome is authoritative either way.
                cache.reverify_outcome(expected, outcome)
            elif isinstance(outcome, ValidatedReport):
                if cache.record(blob_fingerprint(item[1]), outcome):
                    dirty = True
        for position, (fingerprint, leader) in deferred.items():
            label, blob, observed_at = items[position]
            leader_outcome = outcomes[leader]
            if isinstance(leader_outcome, ValidatedReport):
                from repro.fleet.admitcache import CachedOutcome

                outcomes[position] = CachedOutcome.from_validated(
                    fingerprint, leader_outcome
                ).validated(label, blob, observed_at)
            else:
                # The leader was rejected; byte-identical bytes reject
                # byte-identically.
                outcomes[position] = IngestResult(
                    label, False, leader_outcome.reason
                )
        if dirty:
            cache.flush()
        committed = iter(self._commit_batch(
            [o for o in outcomes if isinstance(o, ValidatedReport)]
        ))
        results = []
        for outcome in outcomes:
            if isinstance(outcome, ValidatedReport):
                outcome = next(committed)
            if outcome.accepted:
                self.accepted += 1
                _INGEST_OUTCOMES.labels("accepted").inc()
            else:
                self.rejected += 1
                _INGEST_OUTCOMES.labels("rejected").inc()
            results.append(outcome)
        return results

    def ingest_paths(self, paths, observed_at_of=None) -> list[IngestResult]:
        """Ingest report files; ``observed_at_of(path) -> int`` is optional
        (default: the store's monotonic ingest order)."""
        items = []
        for path in paths:
            with open(path, "rb") as handle:
                blob = handle.read()
            observed = observed_at_of(path) if observed_at_of else None
            items.append((str(path), blob, observed))
        return self.ingest_many(items)


def resolver_from_programs(programs: "dict[str, Program]") -> ProgramResolver:
    """Resolver over an explicit name → program mapping."""
    return programs.get


def resolver_from_sources(sources: "list[tuple[str, Program]]") -> ProgramResolver:
    """Resolver for CLI use: match report program names against assembled
    sources by full name, then basename; a single source matches anything
    (the common one-binary case)."""
    by_name = {name: program for name, program in sources}
    by_base = {name.rsplit("/", 1)[-1]: program for name, program in sources}

    def resolve(name: str) -> "Program | None":
        if name in by_name:
            return by_name[name]
        base = name.rsplit("/", 1)[-1]
        if base in by_base:
            return by_base[base]
        if len(sources) == 1:
            return sources[0][1]
        return None

    return resolve
