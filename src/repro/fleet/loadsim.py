"""Load generation against a live ingestion service: ``bugnet load-sim``.

Two halves:

* :func:`synthesize_corpus` — the fleet-traffic synthesizer shared with
  ``bugnet fleet-sim``: N crashing runs drawn from the Table-1 bug
  suite at varied checkpoint intervals (realistic in that duplicates of
  one bug arrive with different replay windows), plus injected corrupt
  blobs that the service must reject.
* :class:`ServiceClient` / :func:`run_load_sim` — N concurrent
  uploaders speaking the :mod:`repro.fleet.wire` protocol, retrying on
  explicit backpressure (``status: retry``) with exponential backoff
  and on connection loss by reconnecting.  Every upload carries a
  stable ``upload_id``, so retrying across a service restart cannot
  duplicate a report; the report tallies
  accepted/rejected/retried and p50/p99 ack latency.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field

from repro.common.config import BugNetConfig
from repro.fleet.wire import MAX_FRAME, FrameError, read_frame, write_frame
from repro.obs.prom import parse_prometheus, sample
from repro.tracing.serialize import dump_crash_report

DEFAULT_INTERVALS = (5_000, 10_000, 25_000, 100_000)
DEFAULT_BUGS = (
    "bc-1.06", "tar-1.13.25", "gnuplot-3.7.1-1",
    "tidy-34132-2", "tidy-34132-3", "python-2.1.1-2",
)
#: The paper's four multithreaded programs (five Table-1 bugs) — the
#: multi-core racy traffic class.  ``--bugs mt`` on ``bugnet
#: fleet-sim``/``load-sim`` expands to this set; every run gets a
#: distinct interleave seed, so one racy bug arrives as
#: schedule-different reports (different MRLs, different fault sites)
#: that race-aware signatures must dedup into one bucket.
MT_BUGS = (
    "gaim-0.82.1", "napster-1.5.2",
    "python-2.1.1-1", "python-2.1.1-2", "w3m-0.3.2.2",
)


def synthesize_corpus(
    runs: int,
    bug_names: "tuple[str, ...] | list[str]" = DEFAULT_BUGS,
    seed: int = 0,
    corrupt: int = 0,
    intervals: "tuple[int, ...]" = DEFAULT_INTERVALS,
    id_prefix: str = "sim",
    duplicate_fraction: float = 0.0,
):
    """Synthesize fleet crash traffic from the Table-1 bug suite.

    Returns ``(programs, items, failures)`` where *programs* maps bug
    name → assembled program (for batch-pipeline resolvers), *items* is
    a list of ``(label, blob, upload_id)`` uploads (corrupt blobs
    carry labels starting with ``corrupt-``), and *failures* counts
    non-crashing runs (excluded).

    *duplicate_fraction* models the fleet's real traffic shape
    (duplicate-dominated: most machines hit the same few bugs): that
    fraction of the *runs* uploads are byte-identical re-uploads of
    earlier blobs under **fresh upload ids** — so the store's
    idempotency dedup does not short-circuit them and they exercise the
    admission path (and its dedup-before-validate cache) end to end.
    """
    from repro.workloads.bugs import BUGS_BY_NAME, run_bug

    rng = random.Random(seed)
    programs = {}
    items = []
    failures = 0
    duplicates = min(int(round(runs * max(duplicate_fraction, 0.0))),
                     max(runs - 1, 0))
    for index in range(runs - duplicates):
        bug = BUGS_BY_NAME[rng.choice(list(bug_names))]
        config = BugNetConfig(checkpoint_interval=rng.choice(list(intervals)))
        # Multithreaded entries get a fresh interleave seed per run:
        # real fleet duplicates of a racy bug arrive from different
        # schedules (different MRLs, possibly different crash sites),
        # which is exactly what race-aware dedup must absorb.
        interleave = rng.randrange(1, 1 << 16) if bug.multithreaded else 0
        run = run_bug(bug, bugnet=config, record=True,
                      interleave_seed=interleave)
        if not run.crashed:
            failures += 1
            continue
        programs.setdefault(bug.name, run.program)
        items.append((
            f"run-{index:03d}:{bug.name}",
            dump_crash_report(run.result.crash, config),
            f"{id_prefix}-{seed}-{index:03d}",
        ))
    clean = list(items)
    for position in range(duplicates if clean else 0):
        label, blob, _upload_id = clean[rng.randrange(len(clean))]
        items.append((
            f"dup-{position:03d}:{label.split(':', 1)[-1]}",
            blob,
            f"{id_prefix}-{seed}-dup-{position:03d}",
        ))
    for position in range(corrupt if items else 0):
        victim = bytearray(clean[position % len(clean)][1])
        victim[len(victim) // 2] ^= 0xFF
        items.append((
            f"corrupt-{position:03d}",
            bytes(victim),
            f"{id_prefix}-{seed}-corrupt-{position:03d}",
        ))
    return programs, items, failures


def backoff_delay(rng: random.Random, base: float, attempt: int) -> float:
    """Full-jitter exponential backoff delay for retry *attempt* (1-based).

    Uniform in ``[0, base * 2^min(attempt, 6)]``.  The previous schedule
    multiplied the exponential by ``0.5 + rng.random()`` — at least half
    the deterministic delay always remained, so every client that
    observed a node restart at the same moment came back in near
    lockstep (a thundering herd re-arriving each backoff round).  Full
    jitter spreads the herd across the whole window; seeding *rng* keeps
    the schedule reproducible under ``--seed``.
    """
    return rng.uniform(0.0, base * (2 ** min(attempt, 6)))


class ServiceClient:
    """One connection to a ``bugnet serve`` endpoint."""

    def __init__(self, host: str, port: int,
                 max_frame: int = MAX_FRAME) -> None:
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(self, header: dict, body: bytes = b"") -> dict:
        response, _body = await self.request_full(header, body)
        return response

    async def request_full(self, header: dict,
                           body: bytes = b"") -> "tuple[dict, bytes]":
        """One round-trip returning ``(header, body)`` — for cluster
        ops whose responses carry a blob (e.g. ``fetch-report``)."""
        if self._writer is None:
            await self.connect()
        await write_frame(self._writer, header, body)
        frame = await read_frame(self._reader, self.max_frame)
        if frame is None:
            raise ConnectionError("service closed the connection")
        return frame

    async def upload(self, label: str, blob: bytes, upload_id: str = "",
                     observed_at: "int | None" = None) -> dict:
        header = {"op": "upload", "label": label, "upload_id": upload_id}
        if observed_at is not None:
            header["observed_at"] = observed_at
        return await self.request(header, blob)

    async def stats(self) -> dict:
        response = await self.request({"op": "stats"})
        if response.get("status") != "ok":
            raise FrameError(f"stats failed: {response}")
        return response["stats"]

    async def ping(self) -> bool:
        try:
            return (await self.request({"op": "ping"})).get("status") == "ok"
        except (ConnectionError, OSError, FrameError):
            return False


@dataclass
class UploadOutcome:
    """Terminal state of one corpus item."""

    label: str
    status: str                 # accepted | rejected | failed
    attempts: int
    retries: int                # backpressure retries
    reconnects: int
    latency: float              # first attempt -> terminal response
    duplicate: bool = False
    reason: str = ""
    signature: "str | None" = None


@dataclass
class LoadSimReport:
    """Aggregate result of one load-sim run."""

    outcomes: "list[UploadOutcome]" = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def accepted(self) -> "list[UploadOutcome]":
        return [o for o in self.outcomes if o.status == "accepted"]

    @property
    def rejected(self) -> "list[UploadOutcome]":
        return [o for o in self.outcomes if o.status == "rejected"]

    @property
    def failed(self) -> "list[UploadOutcome]":
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def total_retries(self) -> int:
        return sum(o.retries for o in self.outcomes)

    @property
    def reports_per_sec(self) -> float:
        if not self.elapsed:
            return 0.0
        return len(self.outcomes) / self.elapsed

    def latency_percentile(self, fraction: float) -> float:
        """Ack-latency percentile over terminal outcomes (seconds).

        Nearest-rank definition: the smallest latency with at least
        ``fraction`` of the samples at or below it, i.e. the 1-based
        rank ``ceil(fraction * n)``.  (``int(fraction * n)`` overshoots
        by one whenever ``fraction * n`` is exact — the p50 of an even
        sample count came out one rank high.)
        """
        latencies = sorted(o.latency for o in self.outcomes)
        if not latencies:
            return 0.0
        rank = max(math.ceil(fraction * len(latencies)) - 1, 0)
        return latencies[min(rank, len(latencies) - 1)]

    def to_dict(self) -> dict:
        return {
            "uploads": len(self.outcomes),
            "accepted": len(self.accepted),
            "rejected": len(self.rejected),
            "failed": len(self.failed),
            "duplicates": sum(1 for o in self.outcomes if o.duplicate),
            "backpressure_retries": self.total_retries,
            "reconnects": sum(o.reconnects for o in self.outcomes),
            "elapsed_sec": round(self.elapsed, 3),
            "reports_per_sec": round(self.reports_per_sec, 1),
            "latency_p50_ms": round(self.latency_percentile(0.50) * 1e3, 2),
            "latency_p90_ms": round(self.latency_percentile(0.90) * 1e3, 2),
            "latency_p99_ms": round(self.latency_percentile(0.99) * 1e3, 2),
        }


async def _uploader(
    worker_id: int,
    host: str,
    port: int,
    pending: "list[tuple[str, bytes, str]]",
    report: LoadSimReport,
    max_attempts: int,
    backoff_base: float,
    rng: random.Random,
) -> None:
    client = ServiceClient(host, port)
    try:
        while pending:
            try:
                label, blob, upload_id = pending.pop()
            except IndexError:
                break
            start = time.perf_counter()
            attempts = retries = reconnects = 0
            outcome = None
            while attempts < max_attempts:
                attempts += 1
                try:
                    response = await client.upload(label, blob, upload_id)
                except (ConnectionError, OSError, FrameError):
                    # Service gone mid-upload (e.g. restart): reconnect
                    # and retry with the same upload_id — idempotent.
                    reconnects += 1
                    await client.close()
                    await asyncio.sleep(
                        backoff_delay(rng, backoff_base, reconnects)
                    )
                    continue
                status = response.get("status")
                if status == "retry":
                    retries += 1
                    await asyncio.sleep(
                        backoff_delay(rng, backoff_base, retries)
                    )
                    continue
                if status in ("accepted", "rejected"):
                    outcome = UploadOutcome(
                        label=label,
                        status=status,
                        attempts=attempts,
                        retries=retries,
                        reconnects=reconnects,
                        latency=time.perf_counter() - start,
                        duplicate=bool(response.get("duplicate")),
                        reason=response.get("reason", ""),
                        signature=response.get("signature"),
                    )
                    break
                # Protocol error response: terminal failure.  A
                # structured reason (e.g. "unsupported-version" from a
                # node older than this client) is surfaced verbatim —
                # retrying cannot fix a version gap.
                reason = response.get("reason") or str(response)
                detail = response.get("detail")
                outcome = UploadOutcome(
                    label=label, status="failed", attempts=attempts,
                    retries=retries, reconnects=reconnects,
                    latency=time.perf_counter() - start,
                    reason=f"{reason}: {detail}" if detail else reason,
                )
                break
            if outcome is None:
                outcome = UploadOutcome(
                    label=label, status="failed", attempts=attempts,
                    retries=retries, reconnects=reconnects,
                    latency=time.perf_counter() - start,
                    reason="max attempts exhausted",
                )
            report.outcomes.append(outcome)
    finally:
        await client.close()


async def fetch_metrics(host: str, port: int) -> dict:
    """Scrape ``GET /metrics`` and return the parsed samples
    (:func:`repro.obs.prom.parse_prometheus` shape)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0]
    if b"200" not in status:
        raise ConnectionError(f"/metrics returned {status.decode()!r}")
    return parse_prometheus(body.decode("utf-8", "replace"))


def crosscheck_metrics(
    before: dict, after: dict, report: LoadSimReport,
) -> "tuple[list[str], str]":
    """Reconcile client-side tallies against server counter deltas.

    *before*/*after* are parsed ``/metrics`` scrapes bracketing the
    run; deltas (not absolutes) make the check valid against a server
    that has already served other traffic.  Returns ``(mismatches,
    note)`` — an empty mismatch list means every delta matched.  When
    the run saw reconnects the strict equalities don't hold (a
    response lost mid-connection settles server-side once but is
    retried client-side), so the check reports itself skipped via
    *note* instead of crying wolf.
    """
    reconnects = sum(o.reconnects for o in report.outcomes)
    if reconnects:
        return [], (
            f"skipped: {reconnects} reconnect(s) — lost responses "
            "legitimately double-count server-side"
        )

    def delta(outcome: str) -> float:
        return (
            sample(after, "bugnet_admission_total", outcome=outcome)
            - sample(before, "bugnet_admission_total", outcome=outcome)
        )

    checks = [
        ("accepted",
         sum(1 for o in report.accepted if not o.duplicate),
         delta("accepted")),
        ("duplicate",
         sum(1 for o in report.accepted if o.duplicate),
         delta("duplicate")),
        ("rejected", len(report.rejected), delta("rejected")),
        ("retry", report.total_retries, delta("retry")),
    ]
    mismatches = [
        f"{name}: client counted {client}, server delta {server:g}"
        for name, client, server in checks
        if client != server
    ]
    return mismatches, ""


async def run_load_sim(
    host: str,
    port: int,
    items: "list[tuple[str, bytes, str]]",
    concurrency: int = 8,
    max_attempts: int = 60,
    backoff_base: float = 0.02,
    seed: int = 0,
) -> LoadSimReport:
    """Upload *items* with *concurrency* concurrent connections."""
    report = LoadSimReport()
    # Reversed so .pop() serves items in submission order.
    pending = list(reversed(items))
    rng = random.Random(seed)
    start = time.perf_counter()
    workers = [
        _uploader(worker_id, host, port, pending, report,
                  max_attempts, backoff_base, random.Random(rng.random()))
        for worker_id in range(max(concurrency, 1))
    ]
    await asyncio.gather(*workers)
    report.elapsed = time.perf_counter() - start
    return report
