"""Per-stage validation profiling: the machinery behind ``bugnet
profile``.

Replays a crash report (a ``.bugnet`` file or a stored bucket entry)
through the exact validation pipeline the fleet runs —
:func:`repro.fleet.validate.validate_report` — under a span recorder,
and renders the per-stage wall-time breakdown.  This is the tool the
MT-validation gap calls for: one command shows whether a slow report
spends its time in chain replay, MRL merging or race inference,
instead of guessing from aggregate benchmark rates.

The named stages must account for (nearly) all of the wall time or the
breakdown lies by omission; ``coverage`` is the instrumented share and
the test suite holds multithreaded reports to ≥ 95 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.fleet.signature import DEFAULT_TAIL_DEPTH
from repro.fleet.validate import (
    ProgramResolver,
    ValidatedReport,
    _validate,
)
from repro.obs import SpanRecorder


@dataclass
class ProfileResult:
    """One profiled validation: outcome, spans, and total wall time."""

    label: str
    wall_seconds: float
    recorder: SpanRecorder
    outcome: object                    # ValidatedReport | IngestResult

    @property
    def accepted(self) -> bool:
        return isinstance(self.outcome, ValidatedReport)

    @property
    def coverage(self) -> float:
        """Share of wall time inside named top-level stages."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.recorder.wall_seconds() / self.wall_seconds

    def to_dict(self) -> dict:
        outcome = self.outcome
        data = {
            "label": self.label,
            "accepted": self.accepted,
            "wall_ms": round(self.wall_seconds * 1e3, 3),
            "coverage": round(self.coverage, 4),
            "stage_ms": self.recorder.stage_ms(),
            "spans": [
                {
                    "stage": span.name,
                    "detail": span.detail,
                    "depth": span.depth,
                    "ms": round(span.seconds * 1e3, 3),
                }
                for span in sorted(self.recorder.spans,
                                   key=lambda s: (s.start, -s.depth))
            ],
        }
        if self.accepted:
            data["signature"] = outcome.signature.digest
            data["instructions"] = outcome.instructions
        else:
            data["reason"] = outcome.reason
        return data


def profile_blob(
    label: str,
    blob: bytes,
    resolver: ProgramResolver,
    tail_depth: int = DEFAULT_TAIL_DEPTH,
    probe: bool = True,
    repeat: int = 1,
) -> ProfileResult:
    """Validate *blob* ``repeat`` times under a recorder; keep the
    fastest run (later runs replay against a warm compiled-plan cache,
    so the fastest is the steady-state fleet cost; run once to see the
    cold cost, compile included).

    Drives the raw pipeline (:func:`repro.fleet.validate._validate` —
    exactly what ``validate_report`` wraps) rather than
    ``validate_report`` itself: the wrapper's registry export would
    both sit outside every span (deflating ``coverage``) and feed
    profiling runs into the fleet's ``bugnet_validate_*`` counters.
    """
    best: "ProfileResult | None" = None
    for _ in range(max(repeat, 1)):
        recorder = SpanRecorder()
        start = perf_counter()
        outcome = _validate(
            label, blob, None, resolver, tail_depth, probe, recorder,
        )
        wall = perf_counter() - start
        outcome.stage_ms = recorder.stage_ms()
        result = ProfileResult(label, wall, recorder, outcome)
        if best is None or wall < best.wall_seconds:
            best = result
    return best


def render_profile(result: ProfileResult) -> str:
    """Human-readable flamegraph-style breakdown."""
    outcome = result.outcome
    lines = [f"report {result.label}"]
    if result.accepted:
        lines.append(
            f"  outcome: accepted  signature={outcome.signature.digest[:12]}"
            f"  instructions={outcome.instructions}"
        )
    else:
        lines.append(f"  outcome: rejected  reason={outcome.reason}")
    lines.append(
        f"  wall {result.wall_seconds * 1e3:.2f} ms, named stages cover "
        f"{result.coverage * 100:.1f}%"
    )
    lines.append(result.recorder.render(total=result.wall_seconds))
    return "\n".join(lines)
