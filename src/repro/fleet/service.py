"""Live fleet ingestion service: ``bugnet serve``.

BugNet's premise is a deployed fleet continuously shipping crash
reports; this is the developer-site endpoint that receives them.  An
asyncio TCP server speaks the length-prefixed protocol of
:mod:`repro.fleet.wire`, validates every upload with the same pure
decode→replay→fault-probe pipeline as the batch CLI
(:func:`repro.fleet.validate.validate_report`), and commits accepted
reports into the multi-writer-safe sharded store in deterministic
batches.

Architecture (DESIGN.md §8)::

    connections ──> bounded admission queue ──> validation pool ──┐
         ▲                (backpressure:        (processes; the   │
         │                 explicit "retry"     replay is pure    │
         ack after         when full, never     CPU work)         │
         durable commit    a silent drop)                         │
         └──────────── commit sequencer <─────────────────────────┘
                       (admission order, batched add_many)

* **Backpressure, never silent drops.**  Admission is a bounded queue;
  when it is full the client gets an explicit ``{"status": "retry"}``
  response and backs off.  Every accepted upload is acknowledged only
  *after* its batch commit returns, so an ack can never be lost to a
  crash that the store would not also survive.
* **Parallel validation.**  Validation is pure (no store access), so it
  fans out over a ``ProcessPoolExecutor`` — real parallelism for the
  interpreter-bound replay, the iReplayer lesson applied off the
  recording site.  ``workers=0`` validates on an in-process thread
  instead (the right choice on single-core hosts, where IPC overhead
  buys nothing).
* **Deterministic batched commits.**  Outcomes are re-sequenced into
  admission order and committed in batches of consecutive accepts
  (``ReportStore.add_many``): sequence numbers, eviction order and
  triage recency are a function of arrival order alone, not of pool
  scheduling.
* **Idempotent retries.**  Clients attach an ``upload_id``; the store
  persists it per record (index v2), so a client that lost an ack to a
  service restart can re-upload and receive ``duplicate: true``
  instead of double-committing — zero loss *and* zero duplication
  across restarts (``tests/test_service_restart.py``).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from pathlib import Path

from repro.fleet.admitcache import AdmitCache, blob_fingerprint
from repro.fleet.signature import DEFAULT_TAIL_DEPTH
from repro.fleet.store import ReportStore
from repro.fleet.validate import (
    IngestResult,
    ResolverSpec,
    ValidatedReport,
    pool_initializer,
    pool_validate_many_observed,
    validate_many,
)
from repro.fleet.wire import (
    MAX_FRAME,
    FrameError,
    read_frame,
    version_error,
    write_frame,
)
from repro.obs import REGISTRY, JsonEventLogger, encode_prometheus
from repro.obs.prom import CONTENT_TYPE as _PROM_CONTENT_TYPE

_HTTP_PREFIX = b"GET "

# -- service metric families (DESIGN.md §11) --------------------------------
#
# Counters mirror ServiceCounters one-for-one (every increment site
# goes through FleetService._tally), so a /metrics scrape and a /stats
# read of the same quiesced service always reconcile — the CI
# service-smoke job and `bugnet load-sim --metrics-check` assert it.
_RECEIVED = REGISTRY.counter(
    "bugnet_service_received_total", "Upload requests received.",
)
_ADMISSION = REGISTRY.counter(
    "bugnet_admission_total",
    "Admission outcomes (accepted / rejected / retry / duplicate).",
    ("outcome",),
)
_PROTOCOL_ERRORS = REGISTRY.counter(
    "bugnet_service_protocol_errors_total",
    "Malformed frames and unknown ops.",
)
_COMMIT_BATCHES = REGISTRY.counter(
    "bugnet_service_commit_batches_total",
    "Store commit batches (add_many calls from the service).",
)
_ACK_LATENCY = REGISTRY.histogram(
    "bugnet_ack_latency_seconds",
    "Admission-to-ack latency of settled uploads (validation + "
    "sequencing + durable commit).",
)
_QUEUE_DEPTH = REGISTRY.gauge(
    "bugnet_service_queue_depth",
    "Admitted uploads not yet settled (set at scrape time).",
)
_QUEUE_LIMIT = REGISTRY.gauge(
    "bugnet_service_queue_limit", "Admission queue bound.",
)
_WIRE_BYTES = REGISTRY.counter(
    "bugnet_connection_bytes_total",
    "Native-protocol bytes moved by the service, by direction.",
    ("direction",),
)
_DRAIN_SECONDS = REGISTRY.gauge(
    "bugnet_service_drain_seconds",
    "Duration of the last graceful drain (0 until a drain ran).",
)
_SHARD_REPORTS = REGISTRY.gauge(
    "bugnet_store_shard_reports",
    "Resident reports per store shard (set at scrape time).",
    ("shard",),
)
_SHARD_BYTES = REGISTRY.gauge(
    "bugnet_store_shard_bytes",
    "Resident blob bytes per store shard (set at scrape time).",
    ("shard",),
)
_STORE_REPORTS = REGISTRY.gauge(
    "bugnet_store_reports", "Resident reports in the store.",
)
_STORE_BYTES = REGISTRY.gauge(
    "bugnet_store_bytes", "Resident blob bytes in the store.",
)
_STORE_EVICTED = REGISTRY.gauge(
    "bugnet_store_evicted_reports",
    "Store-lifetime evicted reports (survives restarts via store.json).",
)

#: ServiceCounters field -> bugnet_admission_total outcome label.
_ADMISSION_OUTCOMES = {
    "accepted": "accepted",
    "rejected": "rejected",
    "retried": "retry",
    "duplicates": "duplicate",
}


def default_workers() -> int:
    """Validation processes worth starting on this host: none (inline
    validation) without spare cores, else leave a core for the event
    loop and commit path."""
    cores = os.cpu_count() or 1
    if cores <= 2:
        return 0
    return min(cores - 1, 8)


@dataclass
class ServiceConfig:
    """Tunables for :class:`FleetService`."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0: pick a free port
    queue_limit: int = 128             # admission queue bound
    workers: int = field(default_factory=default_workers)
    validate_chunk: int = 8            # max uploads per executor handoff
    commit_batch: int = 16             # max accepts per add_many
    tail_depth: int = DEFAULT_TAIL_DEPTH
    probe: bool = True
    max_frame: int = MAX_FRAME
    log_json: bool = False             # one JSON event/line on stdout
    # -- dedup-before-validate admission (DESIGN.md §13) ----------------
    admit_cache: bool = True           # first-tier validated-signature cache
    reverify_fraction: float = 0.05    # trust-but-verify sample of repeats
    admit_seed: int = 0                # must match across cluster nodes
    admit_capacity: int = 4096         # LRU bound on cache entries


@dataclass
class ServiceCounters:
    """Monotonic service-lifetime counters (part of /stats)."""

    received: int = 0
    accepted: int = 0
    rejected: int = 0
    retried: int = 0                   # backpressure responses sent
    duplicates: int = 0                # idempotent re-acks
    commit_batches: int = 0
    protocol_errors: int = 0

    def to_dict(self) -> dict:
        return {
            "received": self.received,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "retried": self.retried,
            "duplicates": self.duplicates,
            "commit_batches": self.commit_batches,
            "protocol_errors": self.protocol_errors,
        }


class _Admitted:
    """One upload in flight between admission and response."""

    __slots__ = ("ticket", "label", "blob", "observed_at", "upload_id",
                 "future", "admitted_at")

    def __init__(self, ticket, label, blob, observed_at, upload_id, future):
        self.ticket = ticket
        self.label = label
        self.blob = blob
        self.observed_at = observed_at
        self.upload_id = upload_id
        self.future = future
        self.admitted_at = time.monotonic()


class FleetService:
    """Concurrent crash-report ingestion endpoint over a ReportStore."""

    def __init__(
        self,
        store_root,
        resolver_spec: ResolverSpec,
        config: "ServiceConfig | None" = None,
        num_shards: "int | None" = None,
        byte_budget: "int | None" = None,
        fsync: bool = False,
        retention_window: "int | None" = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.store_root = store_root
        self.resolver_spec = resolver_spec
        self._store_options = {
            "num_shards": num_shards,
            "byte_budget": byte_budget,
            "fsync": fsync,
            "retention_window": retention_window,
        }
        self.store: "ReportStore | None" = None
        self.admit_cache: "AdmitCache | None" = None
        self.counters = ServiceCounters()
        self._server: "asyncio.AbstractServer | None" = None
        self._pool = None
        self._inline_resolver = None
        self._next_ticket = 0
        self._next_commit = 0
        self._sequenced: "dict[int, tuple]" = {}
        self._commit_lock: "asyncio.Lock | None" = None
        self._slots: "asyncio.Semaphore | None" = None
        self._admission: "asyncio.Queue | None" = None
        self._dispatcher_task: "asyncio.Task | None" = None
        self._inflight_uploads: "dict[str, asyncio.Future]" = {}
        self._connections: "set[asyncio.Task]" = set()
        self._workers: "set[asyncio.Task]" = set()
        self._in_pipeline = 0          # admitted, not yet settled
        self._active_validations = 0   # submitted to the pool
        self._started_at = 0.0
        self._stopping = False
        self.drain_seconds = 0.0       # last graceful drain's duration
        self.metrics = REGISTRY
        self._log = JsonEventLogger(enabled=self.config.log_json)

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "tuple[str, int]":
        """Open the store, start the validation pool and the listener;
        returns the bound (host, port)."""
        self.store = ReportStore(self.store_root, **self._store_options)
        if self.config.admit_cache:
            # Lives in the store root beside store.json, so batch
            # ingest against the same store shares the entries and a
            # replicating cluster node seeds its peers' files.
            self.admit_cache = AdmitCache(
                Path(self.store_root) / "admit-cache.json",
                capacity=self.config.admit_capacity,
                seed=self.config.admit_seed,
                reverify_fraction=self.config.reverify_fraction,
            )
        workers = self.config.workers
        if workers > 0:
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=pool_initializer,
                initargs=(self.resolver_spec,),
            )
        else:
            # Inline mode: one validation thread in this process — no
            # IPC, the right trade on single-core hosts.
            self._pool = ThreadPoolExecutor(max_workers=1)
            self._inline_resolver = self.resolver_spec.build()
        # Unbounded asyncio.Queue: admission is bounded by the
        # _in_pipeline counter (so backpressure replies stay cheap and
        # explicit), the queue is just the chunking buffer.
        self._admission = asyncio.Queue()
        # Chunks in flight per validator: one running + one queued
        # keeps every validator busy across handoff latency without
        # flooding the executor queue (which starves the event loop —
        # and with it acks and commits — on few-core hosts).
        self._slots = asyncio.Semaphore(max(workers, 1) * 2)
        self._commit_lock = asyncio.Lock()
        self._started_at = time.monotonic()
        self._dispatcher_task = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.config.port = port
        self._log.event(
            "service-start", host=host, port=port,
            workers=self.config.workers, store=str(self.store_root),
        )
        return host, port

    def _tally(self, field: str) -> None:
        """Bump one ServiceCounters field and its mirrored Prometheus
        counter in lockstep — the single increment path that keeps
        /stats and /metrics reconcilable."""
        setattr(self.counters, field, getattr(self.counters, field) + 1)
        outcome = _ADMISSION_OUTCOMES.get(field)
        if outcome is not None:
            _ADMISSION.labels(outcome).inc()
        elif field == "received":
            _RECEIVED.inc()
        elif field == "protocol_errors":
            _PROTOCOL_ERRORS.inc()
        elif field == "commit_batches":
            _COMMIT_BATCHES.inc()

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting connections; optionally drain in-flight
        uploads (validated, committed, and acked) before shutdown.

        The drain duration lands on ``drain_seconds``, the
        ``bugnet_service_drain_seconds`` gauge, and (with
        ``--log-json``) a ``drain`` event — the observable artifact
        the SIGTERM kill-harness test checks for."""
        self._stopping = True
        drain_started = time.monotonic()
        draining = self._in_pipeline
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            while self._in_pipeline:
                await asyncio.sleep(0.01)
            self.drain_seconds = time.monotonic() - drain_started
            _DRAIN_SECONDS.set(self.drain_seconds)
            self._log.event(
                "drain",
                in_flight=draining,
                seconds=round(self.drain_seconds, 6),
            )
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        if self._dispatcher_task is not None:
            self._dispatcher_task.cancel()
            try:
                await self._dispatcher_task
            except asyncio.CancelledError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._log.event("service-stop", counters=self.counters.to_dict())

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            probe = await reader.readexactly(4)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        try:
            if probe == _HTTP_PREFIX:
                await self._handle_http(reader, writer)
            else:
                await self._handle_frames(probe, reader, writer)
        except asyncio.CancelledError:
            # Shutdown path: stop() cancelled this handler.  Swallow so
            # the task ends clean instead of tripping the stream
            # helper's exception logger.
            return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except FrameError:
            self._tally("protocol_errors")
            try:
                await write_frame(writer, {
                    "status": "error", "reason": "malformed frame",
                })
            except (ConnectionError, OSError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _handle_frames(self, first4: bytes,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        prefix: "bytes | None" = first4
        bytes_in = _WIRE_BYTES.labels("in")
        bytes_out = _WIRE_BYTES.labels("out")
        while True:
            frame = await read_frame(reader, self.config.max_frame,
                                     prefix=prefix, on_bytes=bytes_in.inc)
            if frame is None:
                return
            prefix = None
            header, body = frame
            response = await self._handle_message(header, body)
            # A handler that must return binary data (e.g. a cluster
            # fetch-report) smuggles it out under "_body"; it rides the
            # frame as the body, exactly like upload blobs inbound.
            response_body = response.pop("_body", b"")
            await write_frame(writer, response, body=response_body,
                              on_bytes=bytes_out.inc)

    async def _handle_message(self, header: dict, body: bytes) -> dict:
        rejected = version_error(header)
        if rejected is not None:
            # A newer-versioned frame may carry semantics this build
            # does not implement; refuse with a structured reason the
            # client surfaces instead of a generic decode error.
            self._tally("protocol_errors")
            return rejected
        op = header.get("op")
        if op == "upload":
            return await self._handle_upload(header, body)
        if op == "stats":
            return {"status": "ok", "stats": self.stats()}
        if op == "ping":
            return {"status": "ok"}
        self._tally("protocol_errors")
        return {"status": "error", "reason": f"unknown op {op!r}"}

    async def _handle_upload(self, header: dict, body: bytes) -> dict:
        self._tally("received")
        label = str(header.get("label", ""))
        upload_id = str(header.get("upload_id", ""))
        observed_at = header.get("observed_at")
        if observed_at is not None and not isinstance(observed_at, int):
            return {"status": "error", "reason": "observed_at must be int"}
        if not body:
            self._tally("rejected")
            return {"status": "rejected", "reason": "empty report body"}
        if upload_id:
            committed = self.store.entry_for_upload(upload_id)
            if committed is not None:
                # Retry of an already-committed upload (the ack was
                # lost, e.g. to a restart): re-acknowledge, don't
                # double-commit.
                self._tally("duplicates")
                return {
                    "status": "accepted",
                    "duplicate": True,
                    "signature": committed.digest,
                    "seq": committed.seq,
                }
            inflight = self._inflight_uploads.get(upload_id)
            if inflight is not None:
                # Same upload racing itself (client retried while the
                # original is still in the pipeline): share the outcome.
                self._tally("duplicates")
                return await asyncio.shield(inflight)
        if self._stopping or self._in_pipeline >= self.config.queue_limit:
            # Bounded admission: an explicit retry-later, never a
            # silent drop.  The client backs off and resubmits under
            # the same upload_id.
            self._tally("retried")
            return {
                "status": "retry",
                "reason": ("shutting down" if self._stopping
                           else "admission queue full"),
                "queue_depth": self._in_pipeline,
            }
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        admitted = _Admitted(
            ticket=self._next_ticket,
            label=label,
            blob=body,
            observed_at=observed_at,
            upload_id=upload_id,
            future=future,
        )
        self._next_ticket += 1
        self._in_pipeline += 1
        if upload_id:
            self._inflight_uploads[upload_id] = future
        self._admission.put_nowait(admitted)
        if upload_id:
            # Other connections may be awaiting this same future.
            return await asyncio.shield(future)
        return await future

    # -- validation dispatch ------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Pull admitted uploads and validate them in adaptive chunks:
        whatever has queued up since the last handoff, capped at
        ``validate_chunk`` — one executor/IPC round-trip per chunk
        instead of per upload."""
        loop = asyncio.get_running_loop()
        queue = self._admission
        while True:
            chunk = [await queue.get()]
            while (len(chunk) < self.config.validate_chunk
                   and not queue.empty()):
                chunk.append(queue.get_nowait())
            await self._slots.acquire()
            task = loop.create_task(self._run_validation_chunk(chunk))
            self._workers.add(task)
            task.add_done_callback(self._workers.discard)

    async def _run_validation_chunk(
        self, chunk: "list[_Admitted]"
    ) -> None:
        loop = asyncio.get_running_loop()
        config = self.config
        cache = self.admit_cache
        settled: "dict[int, object]" = {}      # position -> outcome
        reverify: "dict[int, object]" = {}     # position -> CachedOutcome
        if cache is not None:
            # First admission tier, off the event loop (the probe
            # decodes each blob): cache hits settle without touching
            # the validation pool, minus the deterministic reverify
            # sample which rides the full path as trust-but-verify.
            def _probe_all() -> "list[int]":
                misses = []
                for position, admitted in enumerate(chunk):
                    entry = cache.probe(admitted.blob)
                    if entry is None:
                        misses.append(position)
                    elif cache.should_reverify(
                        entry.fingerprint,
                        admitted.upload_id or admitted.label,
                    ):
                        reverify[position] = entry
                        misses.append(position)
                    else:
                        settled[position] = entry.validated(
                            admitted.label, admitted.blob,
                            admitted.observed_at,
                        )
                return misses

            pending_positions = await loop.run_in_executor(None, _probe_all)
        else:
            pending_positions = list(range(len(chunk)))
        pending = [chunk[position] for position in pending_positions]
        items = [(a.label, a.blob, a.observed_at) for a in pending]
        self._active_validations += len(pending)
        try:
            if not items:
                outcomes = []
            elif self._inline_resolver is not None:
                # Inline mode shares this process's registry — stage
                # metrics land directly, nothing to merge.
                outcomes = await loop.run_in_executor(
                    self._pool, validate_many, items,
                    self._inline_resolver, config.tail_depth, config.probe,
                )
            else:
                outcomes, delta = await loop.run_in_executor(
                    self._pool, pool_validate_many_observed, items,
                    config.tail_depth, config.probe,
                )
                # The worker's process-local stage histograms and
                # replay counters, exactly once per chunk; merge is
                # additive so chunk completion order is irrelevant.
                self.metrics.merge(delta)
        except Exception as error:  # pool/pickling failure
            outcomes = [
                IngestResult(a.label, False, f"validation error: {error}")
                for a in pending
            ]
        finally:
            self._active_validations -= len(pending)
            self._slots.release()
        dirty = False
        for position, outcome in zip(pending_positions, outcomes):
            settled[position] = outcome
            if cache is None:
                continue
            expected = reverify.get(position)
            if expected is not None:
                # Mismatch quarantines the bucket (and flushes) inside
                # the cache; the full validation stays authoritative.
                cache.reverify_outcome(expected, outcome)
            elif isinstance(outcome, ValidatedReport):
                if cache.record(
                    blob_fingerprint(chunk[position].blob), outcome
                ):
                    dirty = True
        if dirty:
            await loop.run_in_executor(None, cache.flush)
        for position, admitted in enumerate(chunk):
            self._sequenced[admitted.ticket] = (admitted, settled[position])
        await self._drain_sequenced()

    # -- deterministic batched commits ---------------------------------------

    async def _drain_sequenced(self) -> None:
        """Commit/respond in strict admission order; batches consecutive
        accepts into one ``add_many``."""
        async with self._commit_lock:
            while self._next_commit in self._sequenced:
                batch: "list[tuple[_Admitted, ValidatedReport]]" = []
                while self._next_commit in self._sequenced:
                    admitted, outcome = self._sequenced[self._next_commit]
                    if isinstance(outcome, ValidatedReport):
                        if len(batch) >= self.config.commit_batch:
                            break
                        del self._sequenced[self._next_commit]
                        self._next_commit += 1
                        batch.append((admitted, outcome))
                    else:
                        if batch:
                            break  # flush accepts before the rejection
                        del self._sequenced[self._next_commit]
                        self._next_commit += 1
                        self._respond_rejected(admitted, outcome)
                if batch:
                    await self._commit_batch(batch)

    def _respond_rejected(self, admitted: _Admitted,
                          outcome: IngestResult) -> None:
        self._tally("rejected")
        self._settle(admitted, {
            "status": "rejected", "reason": outcome.reason,
        }, stage_ms=outcome.stage_ms)

    async def _commit_batch(
        self, batch: "list[tuple[_Admitted, ValidatedReport]]"
    ) -> None:
        loop = asyncio.get_running_loop()
        items = [
            {
                "digest": validated.signature.digest,
                "blob": validated.blob,
                "replay_window": validated.instructions,
                "fault_kind": validated.fault_kind,
                "program_name": validated.program_name,
                "observed_at": validated.observed_at,
                "upload_id": admitted.upload_id,
                "race_pcs": validated.signature.race_pcs,
                "route_key": validated.route_key,
            }
            for admitted, validated in batch
        ]
        try:
            # Always off the event loop: add_many takes flocks that a
            # concurrent writer process (batch ingest, second serve)
            # can hold through a long eviction rewrite — blocking here
            # would freeze acks, backpressure replies and /stats for
            # every connection, not just this batch.
            entries = await loop.run_in_executor(
                None, self.store.add_many, items
            )
        except Exception as error:  # disk full, store corruption, ...
            for admitted, _validated in batch:
                self._tally("rejected")
                self._settle(admitted, {
                    "status": "rejected",
                    "reason": f"commit failed: {error}",
                })
            return
        self._tally("commit_batches")
        # Post-commit hook: runs after the local durable commit and
        # before any ack is released — where a cluster node inserts
        # synchronous replication to its ring successors.  Per-item
        # extras are merged into the corresponding ack.
        extras = await self._post_commit(batch, entries)
        for (admitted, validated), entry, extra in zip(
            batch, entries, extras
        ):
            self._tally("accepted")
            response = {
                "status": "accepted",
                "duplicate": False,
                "signature": validated.signature.digest,
                "seq": entry.seq,
                "replayed": validated.instructions,
            }
            if extra:
                response.update(extra)
            self._settle(admitted, response, stage_ms=validated.stage_ms)

    async def _post_commit(
        self,
        batch: "list[tuple[_Admitted, ValidatedReport]]",
        entries: "list",
    ) -> "list[dict]":
        """Between durable local commit and ack: subclasses replicate
        here.  Returns one dict of extra ack fields per batch item."""
        return [{} for _ in batch]

    def _settle(self, admitted: _Admitted, response: dict,
                stage_ms: "dict | None" = None) -> None:
        ack_seconds = time.monotonic() - admitted.admitted_at
        _ACK_LATENCY.observe(ack_seconds)
        self._in_pipeline -= 1
        if admitted.upload_id:
            self._inflight_uploads.pop(admitted.upload_id, None)
        if not admitted.future.done():
            admitted.future.set_result(response)
        if self._log.enabled:
            event = {
                "outcome": response.get("status"),
                "label": admitted.label,
                "upload_id": admitted.upload_id,
                "ack_ms": round(ack_seconds * 1e3, 3),
                "stage_ms": stage_ms or {},
            }
            for key in ("signature", "seq", "reason"):
                if key in response:
                    event[key] = response[key]
            self._log.event("admission", **event)

    # -- stats ---------------------------------------------------------------

    def stats(self) -> dict:
        """The /stats shape: queue depth, in-flight work, counters, and
        per-shard occupancy."""
        store = self.store
        return {
            "uptime_sec": round(time.monotonic() - self._started_at, 3),
            # Admitted uploads not yet settled: queued + validating +
            # awaiting their turn in the commit sequence.
            "queue_depth": self._in_pipeline,
            "queue_limit": self.config.queue_limit,
            "validating": self._active_validations,
            "awaiting_commit": len(self._sequenced),
            "workers": self.config.workers,
            "counters": self.counters.to_dict(),
            "admit_cache": (
                self.admit_cache.stats()
                if self.admit_cache is not None else None
            ),
            "store": {
                "reports": len(store),
                "bytes": store.total_bytes,
                "evicted_reports": store.evicted_reports,
                "num_shards": store.num_shards,
                "shards": store.shard_occupancy(),
            },
        }

    # -- metrics --------------------------------------------------------------

    def health(self) -> "tuple[bool, str]":
        """Readiness: ``(ready, reason)``.

        Liveness is answering at all; readiness is being able to admit
        an upload *now*.  Draining and a saturated admission queue are
        the two states where a connect would only earn a retry — a
        load balancer should route elsewhere, which is what the 503
        from ``/healthz`` tells it.
        """
        if self._stopping:
            return False, "draining"
        if self._in_pipeline >= self.config.queue_limit:
            return False, "admission queue saturated"
        return True, "ok"

    def metrics_text(self) -> str:
        """The `/metrics` exposition: refresh scrape-time gauges from
        live state, then encode the whole registry."""
        _QUEUE_DEPTH.set(self._in_pipeline)
        _QUEUE_LIMIT.set(self.config.queue_limit)
        store = self.store
        if store is not None:
            _STORE_REPORTS.set(len(store))
            _STORE_BYTES.set(store.total_bytes)
            _STORE_EVICTED.set(store.evicted_reports)
            for slot in store.shard_occupancy():
                shard = str(slot["shard"])
                _SHARD_REPORTS.labels(shard).set(slot["reports"])
                _SHARD_BYTES.labels(shard).set(slot["bytes"])
        return encode_prometheus(self.metrics)

    # -- http ----------------------------------------------------------------

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """Minimal HTTP/1.0 for ``curl http://host:port/stats`` (and
        /healthz, /metrics)."""
        request_line = await reader.readline()
        path = request_line.split(b" ")[0].decode("latin-1", "replace")
        while True:  # drain request headers
            line = await reader.readline()
            if line in (b"", b"\r\n", b"\n"):
                break
        content_type = "application/json"
        if path == "/stats":
            body = json.dumps(self.stats(), indent=2).encode()
            status = "200 OK"
        elif path == "/healthz":
            ready, reason = self.health()
            body = json.dumps({"ok": ready, "reason": reason}).encode()
            status = "200 OK" if ready else "503 Service Unavailable"
        elif path == "/metrics":
            body = self.metrics_text().encode()
            status = "200 OK"
            content_type = _PROM_CONTENT_TYPE
        else:
            body = b'{"error": "not found"}'
            status = "404 Not Found"
        writer.write(
            f"HTTP/1.0 {status}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()
