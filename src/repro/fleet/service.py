"""Live fleet ingestion service: ``bugnet serve``.

BugNet's premise is a deployed fleet continuously shipping crash
reports; this is the developer-site endpoint that receives them.  An
asyncio TCP server speaks the length-prefixed protocol of
:mod:`repro.fleet.wire`, validates every upload with the same pure
decode→replay→fault-probe pipeline as the batch CLI
(:func:`repro.fleet.validate.validate_report`), and commits accepted
reports into the multi-writer-safe sharded store in deterministic
batches.

Architecture (DESIGN.md §8)::

    connections ──> bounded admission queue ──> validation pool ──┐
         ▲                (backpressure:        (processes; the   │
         │                 explicit "retry"     replay is pure    │
         ack after         when full, never     CPU work)         │
         durable commit    a silent drop)                         │
         └──────────── commit sequencer <─────────────────────────┘
                       (admission order, batched add_many)

* **Backpressure, never silent drops.**  Admission is a bounded queue;
  when it is full the client gets an explicit ``{"status": "retry"}``
  response and backs off.  Every accepted upload is acknowledged only
  *after* its batch commit returns, so an ack can never be lost to a
  crash that the store would not also survive.
* **Parallel validation.**  Validation is pure (no store access), so it
  fans out over a ``ProcessPoolExecutor`` — real parallelism for the
  interpreter-bound replay, the iReplayer lesson applied off the
  recording site.  ``workers=0`` validates on an in-process thread
  instead (the right choice on single-core hosts, where IPC overhead
  buys nothing).
* **Deterministic batched commits.**  Outcomes are re-sequenced into
  admission order and committed in batches of consecutive accepts
  (``ReportStore.add_many``): sequence numbers, eviction order and
  triage recency are a function of arrival order alone, not of pool
  scheduling.
* **Idempotent retries.**  Clients attach an ``upload_id``; the store
  persists it per record (index v2), so a client that lost an ack to a
  service restart can re-upload and receive ``duplicate: true``
  instead of double-committing — zero loss *and* zero duplication
  across restarts (``tests/test_service_restart.py``).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.fleet.signature import DEFAULT_TAIL_DEPTH
from repro.fleet.store import ReportStore
from repro.fleet.validate import (
    IngestResult,
    ResolverSpec,
    ValidatedReport,
    pool_initializer,
    pool_validate_many,
    validate_many,
)
from repro.fleet.wire import (
    MAX_FRAME,
    FrameError,
    read_frame,
    write_frame,
)

_HTTP_PREFIX = b"GET "


def default_workers() -> int:
    """Validation processes worth starting on this host: none (inline
    validation) without spare cores, else leave a core for the event
    loop and commit path."""
    cores = os.cpu_count() or 1
    if cores <= 2:
        return 0
    return min(cores - 1, 8)


@dataclass
class ServiceConfig:
    """Tunables for :class:`FleetService`."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0: pick a free port
    queue_limit: int = 128             # admission queue bound
    workers: int = field(default_factory=default_workers)
    validate_chunk: int = 8            # max uploads per executor handoff
    commit_batch: int = 16             # max accepts per add_many
    tail_depth: int = DEFAULT_TAIL_DEPTH
    probe: bool = True
    max_frame: int = MAX_FRAME


@dataclass
class ServiceCounters:
    """Monotonic service-lifetime counters (part of /stats)."""

    received: int = 0
    accepted: int = 0
    rejected: int = 0
    retried: int = 0                   # backpressure responses sent
    duplicates: int = 0                # idempotent re-acks
    commit_batches: int = 0
    protocol_errors: int = 0

    def to_dict(self) -> dict:
        return {
            "received": self.received,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "retried": self.retried,
            "duplicates": self.duplicates,
            "commit_batches": self.commit_batches,
            "protocol_errors": self.protocol_errors,
        }


class _Admitted:
    """One upload in flight between admission and response."""

    __slots__ = ("ticket", "label", "blob", "observed_at", "upload_id",
                 "future")

    def __init__(self, ticket, label, blob, observed_at, upload_id, future):
        self.ticket = ticket
        self.label = label
        self.blob = blob
        self.observed_at = observed_at
        self.upload_id = upload_id
        self.future = future


class FleetService:
    """Concurrent crash-report ingestion endpoint over a ReportStore."""

    def __init__(
        self,
        store_root,
        resolver_spec: ResolverSpec,
        config: "ServiceConfig | None" = None,
        num_shards: int = 8,
        byte_budget: "int | None" = None,
        fsync: bool = False,
    ) -> None:
        self.config = config or ServiceConfig()
        self.store_root = store_root
        self.resolver_spec = resolver_spec
        self._store_options = {
            "num_shards": num_shards,
            "byte_budget": byte_budget,
            "fsync": fsync,
        }
        self.store: "ReportStore | None" = None
        self.counters = ServiceCounters()
        self._server: "asyncio.AbstractServer | None" = None
        self._pool = None
        self._inline_resolver = None
        self._next_ticket = 0
        self._next_commit = 0
        self._sequenced: "dict[int, tuple]" = {}
        self._commit_lock: "asyncio.Lock | None" = None
        self._slots: "asyncio.Semaphore | None" = None
        self._admission: "asyncio.Queue | None" = None
        self._dispatcher_task: "asyncio.Task | None" = None
        self._inflight_uploads: "dict[str, asyncio.Future]" = {}
        self._connections: "set[asyncio.Task]" = set()
        self._workers: "set[asyncio.Task]" = set()
        self._in_pipeline = 0          # admitted, not yet settled
        self._active_validations = 0   # submitted to the pool
        self._started_at = 0.0
        self._stopping = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "tuple[str, int]":
        """Open the store, start the validation pool and the listener;
        returns the bound (host, port)."""
        self.store = ReportStore(self.store_root, **self._store_options)
        workers = self.config.workers
        if workers > 0:
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=pool_initializer,
                initargs=(self.resolver_spec,),
            )
        else:
            # Inline mode: one validation thread in this process — no
            # IPC, the right trade on single-core hosts.
            self._pool = ThreadPoolExecutor(max_workers=1)
            self._inline_resolver = self.resolver_spec.build()
        # Unbounded asyncio.Queue: admission is bounded by the
        # _in_pipeline counter (so backpressure replies stay cheap and
        # explicit), the queue is just the chunking buffer.
        self._admission = asyncio.Queue()
        # Chunks in flight per validator: one running + one queued
        # keeps every validator busy across handoff latency without
        # flooding the executor queue (which starves the event loop —
        # and with it acks and commits — on few-core hosts).
        self._slots = asyncio.Semaphore(max(workers, 1) * 2)
        self._commit_lock = asyncio.Lock()
        self._started_at = time.monotonic()
        self._dispatcher_task = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.config.port = port
        return host, port

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting connections; optionally drain in-flight
        uploads (validated, committed, and acked) before shutdown."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            while self._in_pipeline:
                await asyncio.sleep(0.01)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        if self._dispatcher_task is not None:
            self._dispatcher_task.cancel()
            try:
                await self._dispatcher_task
            except asyncio.CancelledError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            probe = await reader.readexactly(4)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        try:
            if probe == _HTTP_PREFIX:
                await self._handle_http(reader, writer)
            else:
                await self._handle_frames(probe, reader, writer)
        except asyncio.CancelledError:
            # Shutdown path: stop() cancelled this handler.  Swallow so
            # the task ends clean instead of tripping the stream
            # helper's exception logger.
            return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except FrameError:
            self.counters.protocol_errors += 1
            try:
                await write_frame(writer, {
                    "status": "error", "reason": "malformed frame",
                })
            except (ConnectionError, OSError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _handle_frames(self, first4: bytes,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        prefix: "bytes | None" = first4
        while True:
            frame = await read_frame(reader, self.config.max_frame,
                                     prefix=prefix)
            if frame is None:
                return
            prefix = None
            header, body = frame
            response = await self._handle_message(header, body)
            await write_frame(writer, response)

    async def _handle_message(self, header: dict, body: bytes) -> dict:
        op = header.get("op")
        if op == "upload":
            return await self._handle_upload(header, body)
        if op == "stats":
            return {"status": "ok", "stats": self.stats()}
        if op == "ping":
            return {"status": "ok"}
        self.counters.protocol_errors += 1
        return {"status": "error", "reason": f"unknown op {op!r}"}

    async def _handle_upload(self, header: dict, body: bytes) -> dict:
        self.counters.received += 1
        label = str(header.get("label", ""))
        upload_id = str(header.get("upload_id", ""))
        observed_at = header.get("observed_at")
        if observed_at is not None and not isinstance(observed_at, int):
            return {"status": "error", "reason": "observed_at must be int"}
        if not body:
            self.counters.rejected += 1
            return {"status": "rejected", "reason": "empty report body"}
        if upload_id:
            committed = self.store.entry_for_upload(upload_id)
            if committed is not None:
                # Retry of an already-committed upload (the ack was
                # lost, e.g. to a restart): re-acknowledge, don't
                # double-commit.
                self.counters.duplicates += 1
                return {
                    "status": "accepted",
                    "duplicate": True,
                    "signature": committed.digest,
                    "seq": committed.seq,
                }
            inflight = self._inflight_uploads.get(upload_id)
            if inflight is not None:
                # Same upload racing itself (client retried while the
                # original is still in the pipeline): share the outcome.
                self.counters.duplicates += 1
                return await asyncio.shield(inflight)
        if self._stopping or self._in_pipeline >= self.config.queue_limit:
            # Bounded admission: an explicit retry-later, never a
            # silent drop.  The client backs off and resubmits under
            # the same upload_id.
            self.counters.retried += 1
            return {
                "status": "retry",
                "reason": ("shutting down" if self._stopping
                           else "admission queue full"),
                "queue_depth": self._in_pipeline,
            }
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        admitted = _Admitted(
            ticket=self._next_ticket,
            label=label,
            blob=body,
            observed_at=observed_at,
            upload_id=upload_id,
            future=future,
        )
        self._next_ticket += 1
        self._in_pipeline += 1
        if upload_id:
            self._inflight_uploads[upload_id] = future
        self._admission.put_nowait(admitted)
        if upload_id:
            # Other connections may be awaiting this same future.
            return await asyncio.shield(future)
        return await future

    # -- validation dispatch ------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Pull admitted uploads and validate them in adaptive chunks:
        whatever has queued up since the last handoff, capped at
        ``validate_chunk`` — one executor/IPC round-trip per chunk
        instead of per upload."""
        loop = asyncio.get_running_loop()
        queue = self._admission
        while True:
            chunk = [await queue.get()]
            while (len(chunk) < self.config.validate_chunk
                   and not queue.empty()):
                chunk.append(queue.get_nowait())
            await self._slots.acquire()
            task = loop.create_task(self._run_validation_chunk(chunk))
            self._workers.add(task)
            task.add_done_callback(self._workers.discard)

    async def _run_validation_chunk(
        self, chunk: "list[_Admitted]"
    ) -> None:
        loop = asyncio.get_running_loop()
        config = self.config
        items = [(a.label, a.blob, a.observed_at) for a in chunk]
        self._active_validations += len(chunk)
        try:
            if self._inline_resolver is not None:
                outcomes = await loop.run_in_executor(
                    self._pool, validate_many, items,
                    self._inline_resolver, config.tail_depth, config.probe,
                )
            else:
                outcomes = await loop.run_in_executor(
                    self._pool, pool_validate_many, items,
                    config.tail_depth, config.probe,
                )
        except Exception as error:  # pool/pickling failure
            outcomes = [
                IngestResult(a.label, False, f"validation error: {error}")
                for a in chunk
            ]
        finally:
            self._active_validations -= len(chunk)
            self._slots.release()
        for admitted, outcome in zip(chunk, outcomes):
            self._sequenced[admitted.ticket] = (admitted, outcome)
        await self._drain_sequenced()

    # -- deterministic batched commits ---------------------------------------

    async def _drain_sequenced(self) -> None:
        """Commit/respond in strict admission order; batches consecutive
        accepts into one ``add_many``."""
        async with self._commit_lock:
            while self._next_commit in self._sequenced:
                batch: "list[tuple[_Admitted, ValidatedReport]]" = []
                while self._next_commit in self._sequenced:
                    admitted, outcome = self._sequenced[self._next_commit]
                    if isinstance(outcome, ValidatedReport):
                        if len(batch) >= self.config.commit_batch:
                            break
                        del self._sequenced[self._next_commit]
                        self._next_commit += 1
                        batch.append((admitted, outcome))
                    else:
                        if batch:
                            break  # flush accepts before the rejection
                        del self._sequenced[self._next_commit]
                        self._next_commit += 1
                        self._respond_rejected(admitted, outcome)
                if batch:
                    await self._commit_batch(batch)

    def _respond_rejected(self, admitted: _Admitted,
                          outcome: IngestResult) -> None:
        self.counters.rejected += 1
        self._settle(admitted, {
            "status": "rejected", "reason": outcome.reason,
        })

    async def _commit_batch(
        self, batch: "list[tuple[_Admitted, ValidatedReport]]"
    ) -> None:
        loop = asyncio.get_running_loop()
        items = [
            {
                "digest": validated.signature.digest,
                "blob": validated.blob,
                "replay_window": validated.instructions,
                "fault_kind": validated.fault_kind,
                "program_name": validated.program_name,
                "observed_at": validated.observed_at,
                "upload_id": admitted.upload_id,
                "race_pcs": validated.signature.race_pcs,
            }
            for admitted, validated in batch
        ]
        try:
            # Always off the event loop: add_many takes flocks that a
            # concurrent writer process (batch ingest, second serve)
            # can hold through a long eviction rewrite — blocking here
            # would freeze acks, backpressure replies and /stats for
            # every connection, not just this batch.
            entries = await loop.run_in_executor(
                None, self.store.add_many, items
            )
        except Exception as error:  # disk full, store corruption, ...
            for admitted, _validated in batch:
                self.counters.rejected += 1
                self._settle(admitted, {
                    "status": "rejected",
                    "reason": f"commit failed: {error}",
                })
            return
        self.counters.commit_batches += 1
        for (admitted, validated), entry in zip(batch, entries):
            self.counters.accepted += 1
            self._settle(admitted, {
                "status": "accepted",
                "duplicate": False,
                "signature": validated.signature.digest,
                "seq": entry.seq,
                "replayed": validated.instructions,
            })

    def _settle(self, admitted: _Admitted, response: dict) -> None:
        self._in_pipeline -= 1
        if admitted.upload_id:
            self._inflight_uploads.pop(admitted.upload_id, None)
        if not admitted.future.done():
            admitted.future.set_result(response)

    # -- stats ---------------------------------------------------------------

    def stats(self) -> dict:
        """The /stats shape: queue depth, in-flight work, counters, and
        per-shard occupancy."""
        store = self.store
        return {
            "uptime_sec": round(time.monotonic() - self._started_at, 3),
            # Admitted uploads not yet settled: queued + validating +
            # awaiting their turn in the commit sequence.
            "queue_depth": self._in_pipeline,
            "queue_limit": self.config.queue_limit,
            "validating": self._active_validations,
            "awaiting_commit": len(self._sequenced),
            "workers": self.config.workers,
            "counters": self.counters.to_dict(),
            "store": {
                "reports": len(store),
                "bytes": store.total_bytes,
                "evicted_reports": store.evicted_reports,
                "num_shards": store.num_shards,
                "shards": store.shard_occupancy(),
            },
        }

    # -- http ----------------------------------------------------------------

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """Minimal HTTP/1.0 for `curl http://host:port/stats`."""
        request_line = await reader.readline()
        path = request_line.split(b" ")[0].decode("latin-1", "replace")
        while True:  # drain request headers
            line = await reader.readline()
            if line in (b"", b"\r\n", b"\n"):
                break
        if path == "/stats":
            body = json.dumps(self.stats(), indent=2).encode()
            status = "200 OK"
        elif path == "/healthz":
            body = b'{"ok": true}'
            status = "200 OK"
        else:
            body = b'{"error": "not found"}'
            status = "404 Not Found"
        writer.write(
            f"HTTP/1.0 {status}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()
