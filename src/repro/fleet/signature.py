"""Deterministic crash signatures for fleet-side deduplication.

Two users hitting the same bug ship reports that are byte-for-byte
different: their replay windows differ (the log budget evicted different
amounts of history), their checkpoint intervals may differ, and the
fault arrives at a different instruction count.  What *is* stable is how
the execution ends: the fault kind, the faulting PC, and the last few
PCs the faulting thread executed on its way into the crash.

A :class:`CrashSignature` is exactly that — computed by replaying the
faulting thread's resident log chain with
:class:`~repro.replay.replayer.Replayer` and keeping a bounded tail of
PCs.  Because replay is deterministic, the signature is too, and because
only the *tail* participates, reports with different windows of the same
bug land in the same bucket.

**Racy crashes need one more normalization.**  A data race manifests
wherever the schedule happens to land the remote store: gaim's buddy
removal crashes the UI thread at four different dereference sites
(the paper's Table 1 lists four source lines for one bug), so the
faulting PC and tail are *schedule-dependent* and would fragment one
race across buckets.  When ingest-time validation finds racing remote
stores feeding the crash (``race_pcs``), the digest keys on that
evidence — the program, the fault kind, and the racing stores' PCs —
instead of the fault site, so schedule-different manifestations of one
race dedup into one bucket.  Single-thread (and race-free
multithreaded) signatures hash exactly as before.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass

from repro.arch.program import Program
from repro.common.config import BugNetConfig
from repro.common.errors import ReplayDivergence
from repro.replay.replayer import Replayer
from repro.system.fault import CrashReport

#: PCs of tail kept in a signature.  Deep enough to separate bugs that
#: crash at the same PC from different call paths, shallow enough that a
#: budget-truncated report still produces the full tail.
DEFAULT_TAIL_DEPTH = 12


@dataclass(frozen=True)
class CrashSignature:
    """The dedup key for one crash bucket.

    ``race_pcs`` holds the PCs of remote stores that race with the
    accesses feeding the crash (empty for single-thread and race-free
    reports).  When present, the digest keys on that schedule-stable
    evidence instead of the schedule-dependent fault site; the fault
    PC and tail stay populated for display either way.
    """

    program_name: str
    fault_kind: str
    fault_pc: int
    tail_pcs: tuple[int, ...]
    race_pcs: tuple[int, ...] = ()

    @property
    def race_keyed(self) -> bool:
        """True when the digest buckets on race evidence."""
        return bool(self.race_pcs)

    @property
    def digest(self) -> str:
        """Stable sha256 hex digest (the store/index key)."""
        hasher = hashlib.sha256()
        hasher.update(self.program_name.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(self.fault_kind.encode("utf-8"))
        hasher.update(b"\x00")
        if self.race_pcs:
            # Race-keyed: the fault site is where the schedule happened
            # to land the crash, not bug identity — hash the racing
            # stores instead (a domain tag keeps the two keyspaces
            # disjoint).
            hasher.update(b"race-v1\x00")
            for pc in sorted(set(self.race_pcs)):
                hasher.update(pc.to_bytes(8, "little"))
        else:
            hasher.update(self.fault_pc.to_bytes(8, "little"))
            for pc in self.tail_pcs:
                hasher.update(pc.to_bytes(8, "little"))
        return hasher.hexdigest()

    @property
    def short(self) -> str:
        """Abbreviated digest for filenames and human output."""
        return self.digest[:12]


def route_digest(program_name: str, fault_kind: str, fault_pc: int) -> str:
    """Cluster routing key for a crash report: sha256 over the
    replay-free prefix of the signature preimage.

    The store's dedup key (:attr:`CrashSignature.digest`) requires a
    full validation replay (the PC tail, the race evidence), so clients
    cannot route on it.  This key uses only fields a cheap blob decode
    yields — program, fault kind, faulting PC — which are identical
    across duplicates of one (non-racy) bug, so all of a bucket's
    uploads land on one owner node.  Racy manifestations of one bug can
    crash at different PCs and therefore scatter across owners; cluster
    triage re-merges those buckets by *signature* digest (DESIGN.md
    §12), which replication forces it to do anyway.

    A domain tag keeps this keyspace disjoint from signature digests;
    the preimage is versioned so the ring mapping can evolve without
    silently splitting ownership.
    """
    hasher = hashlib.sha256()
    hasher.update(b"route-v1\x00")
    hasher.update(program_name.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(fault_kind.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(fault_pc.to_bytes(8, "little"))
    return hasher.hexdigest()


@dataclass
class ReplayedTail:
    """What one validation replay of the faulting thread produced.

    Carries the final replayed machine state (memory, registers, last
    FLL) so a fault probe can re-execute the faulting instruction
    without replaying the chain a second time.
    """

    tail_pcs: tuple[int, ...]
    instructions: int
    end_pc: int
    intervals: int
    end_regs: tuple[int, ...] = ()
    memory: object = None
    last_fll: object = None


def replay_tail(
    report: CrashReport,
    config: BugNetConfig,
    program: Program,
    tail_depth: int = DEFAULT_TAIL_DEPTH,
    fast: bool = True,
) -> ReplayedTail:
    """Replay the faulting thread's log chain, keeping only a PC tail.

    The chain starts at the *earliest* resident major checkpoint (replay
    must begin with all first-load bits conceptually clear; under the
    paper's basic scheme every checkpoint is major, so this is the whole
    resident sequence).  Raises
    :class:`~repro.common.errors.ReplayDivergence` if the report has no
    replayable chain or the logs disagree with the binary — the signal
    ingestion uses to reject corrupt reports.

    *fast* selects the compiled-dispatch replay loop
    (:mod:`repro.replay.fastreplay`) — bit-identical end state, no
    per-instruction event objects; pass ``False`` to force the
    reference interpreter (the equivalence tests exercise both).
    """
    from repro.arch.memory import Memory
    from repro.replay.fastreplay import fast_replay_interval

    flls = report.replay_chain(report.faulting_tid)
    if not flls:
        raise ReplayDivergence(
            f"no replayable chain for faulting thread {report.faulting_tid} "
            f"(threads with logs: {report.thread_ids or 'none'})"
        )
    tail: deque[int] = deque(maxlen=max(tail_depth, 1))
    memory = Memory(fault_checks=False)
    last = None
    if fast:
        for fll in flls:
            last = fast_replay_interval(
                program, config, fll, memory=memory,
                tail=tail, tail_depth=tail.maxlen,
            )
    else:
        replayer = Replayer(program, config)
        for fll in flls:
            last = replayer.replay_interval(
                fll, memory=memory, collect_events=False,
                event_sink=lambda event: tail.append(event.pc),
            )
    return ReplayedTail(
        tail_pcs=tuple(tail),
        instructions=sum(fll.end_ic for fll in flls),
        end_pc=last.end_pc,
        intervals=len(flls),
        end_regs=last.end_regs,
        memory=memory,
        last_fll=flls[-1],
    )


def signature_from_tail(
    report: CrashReport,
    tail: ReplayedTail,
    race_pcs: "tuple[int, ...]" = (),
) -> CrashSignature:
    """Build the signature from an already-performed validation replay.

    *race_pcs* is the race evidence multi-thread validation inferred
    (PCs of remote stores racing with the crash's feeding accesses);
    when non-empty the signature buckets on it.
    """
    return CrashSignature(
        program_name=report.program_name,
        fault_kind=report.fault_kind,
        fault_pc=report.fault_pc,
        tail_pcs=tail.tail_pcs,
        race_pcs=tuple(sorted(set(race_pcs))),
    )


def compute_signature(
    report: CrashReport,
    config: BugNetConfig,
    program: Program,
    tail_depth: int = DEFAULT_TAIL_DEPTH,
) -> CrashSignature:
    """Replay the faulting-thread tail and derive the crash signature."""
    return signature_from_tail(
        report, replay_tail(report, config, program, tail_depth=tail_depth)
    )
