"""Sharded on-disk crash-report store, safe for multi-writer processes.

Layout on disk::

    <root>/
        store.json            # shard count, ring replicas, seq counter,
                              # byte budget, eviction counters
        store.lock            # global flock: seq allocation, eviction, meta
        seq                   # authoritative next-sequence counter
        shard-00/
            .lock             # per-shard flock: blob + index writes
            index.bin         # per-shard binary index (magic BGSI)
            00000007-<sig12>.bugnet
        shard-01/
            ...

Reports are placed by **consistent hashing**: each shard contributes
``replicas`` virtual points to a hash ring, and a signature digest maps
to the first point at or after it.  Growing the fleet store by a shard
therefore remaps only ~1/N of signatures instead of reshuffling
everything (the classic argument; ``shard_of`` is the whole mechanism).
All reports of one signature land in one shard, so a triage worker can
scan buckets shard-locally.

Concurrency and crash model (DESIGN.md §8):

* Sequence numbers are allocated from the ``seq`` file under the global
  ``flock``, so concurrent writer *processes* never collide.
* Blob and index writes for a shard happen under that shard's
  ``flock``; blobs land via write-to-temp + ``os.replace`` (never a
  partial blob under a final name) and a batch's index records are
  appended with a single ``write()``.
* Before appending, a writer re-validates the index tail from its last
  synced offset: records another live writer appended are absorbed
  into the in-memory view, and a torn tail left by a killed writer is
  truncated away (the torn record's report was never acknowledged).
* On open the store drops partial trailing index records, sweeps
  orphaned blobs and stale temp files, and recovers the sequence
  counter — ``tests/test_store_concurrency.py`` SIGKILLs writers
  mid-commit and asserts exactly this.
* Metadata (``store.json``) is rewritten atomically (temp + rename)
  under the global lock, merging the on-disk sequence high-water mark.

Durability: a completed ``add``/``add_many`` survives process death
(SIGKILL) because every byte has reached the page cache in commit
order; pass ``fsync=True`` to also survive OS/power failure at a
per-commit fsync cost.

The per-shard index is a compact binary file (no pickle, same
discipline as :mod:`repro.tracing.serialize`), append-only on ingest
and rewritten on eviction.  Format v2 adds a per-record ``upload_id``
— the idempotency token the ingestion service uses to make client
retries safe across service restarts; format v3 adds the per-record
race evidence (``race_pcs``, the racing remote stores ingest-time
validation inferred), so triage can flag racy buckets without
re-replaying anything; format v4 adds the cluster routing key
(``route_key``, the replay-free digest cluster nodes place reports
by).  v1–v3 indexes read transparently and are upgraded in place on
first append.

Retention mirrors :class:`~repro.tracing.backing.LogStore`: a byte
budget over the stored blobs, exceeded → evict the globally oldest
report (never one just added), deterministically ordered by
``(observed_at, seq)``.  A time window (``retention_window``, in
``observed_at`` units) additionally ages out reports older than the
newest observation minus the window — on every commit and via
``compact()``.  Either way an eviction folds the report into
``rollups.json`` (per-signature count/bytes/first/last aggregates),
so triage bucket counts survive blob eviction.
"""

from __future__ import annotations

import bisect
import hashlib
import io
import json
import os
import struct
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import LogDecodeError
from repro.obs import REGISTRY as _OBS
from repro.tracing.serialize import load_crash_report

_FLOCK_WAIT_SECONDS = _OBS.histogram(
    "bugnet_store_flock_wait_seconds",
    "Time spent waiting to acquire a store flock (global or shard).",
)
_COMMIT_BATCH_SECONDS = _OBS.histogram(
    "bugnet_store_commit_batch_seconds",
    "Wall time of one add_many commit batch (writes, index, eviction).",
)
_COMMIT_REPORTS = _OBS.counter(
    "bugnet_store_commit_reports_total",
    "Reports committed to the store.",
)
_EVICTIONS = _OBS.counter(
    "bugnet_store_evictions_total",
    "Reports evicted to hold the store byte budget.",
)

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (no locking)
    fcntl = None

_INDEX_MAGIC = b"BGSI"
_INDEX_VERSION = 4
_HEADER_SIZE = 8          # magic + u32 version
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Ring shape of a freshly created store.  Openers of an *existing*
#: store inherit the on-disk shape by passing ``None``; an explicit
#: value that disagrees with disk raises (see ``ReportStore.__init__``).
DEFAULT_NUM_SHARDS = 8
DEFAULT_RING_REPLICAS = 32


def route_token(route_key: str) -> int:
    """A route digest's position on the 64-bit cluster node ring
    (first 16 hex chars, big-endian — the same construction as
    ``NodeRing.key_of``, duplicated here so the store never imports
    the cluster package; ``tests/test_cluster_topology.py`` pins the
    two in lockstep)."""
    return int(route_key[:16], 16)


def token_in_ranges(token: int, ranges) -> bool:
    """Whether a ring token lies in any ``(start, end]`` arc of
    *ranges* (an arc with ``start >= end`` wraps through zero)."""
    for start, end in ranges:
        start, end = int(start), int(end)
        if start < end:
            if start < token <= end:
                return True
        elif token > start or token <= end:
            return True
    return False


@dataclass(frozen=True)
class StoredEntry:
    """One report as recorded in a shard index."""

    digest: str          # full signature sha256 hex
    seq: int             # store-global ingest sequence number
    observed_at: int     # caller-supplied logical observation time
    byte_size: int       # size of the stored .bugnet blob
    replay_window: int   # instructions replayable for the faulting thread
    fault_kind: str
    program_name: str
    shard: int
    filename: str
    upload_id: str = ""  # client idempotency token ("" = none)
    race_pcs: tuple[int, ...] = ()  # racing remote-store PCs (v3; () = none)
    route_key: str = ""  # cluster ring routing digest (v4; "" = none)

    @property
    def racy(self) -> bool:
        """True when ingest-time validation race-keyed this report."""
        return bool(self.race_pcs)

    @property
    def order_key(self) -> tuple[int, int]:
        """Eviction/recency order: oldest first, deterministic."""
        return (self.observed_at, self.seq)


def _write_u32(out: io.BytesIO, value: int) -> None:
    out.write(_U32.pack(value & 0xFFFFFFFF))


def _write_u64(out: io.BytesIO, value: int) -> None:
    out.write(_U64.pack(value & 0xFFFFFFFFFFFFFFFF))


def _write_str(out: io.BytesIO, text: str) -> None:
    data = text.encode("utf-8")
    _write_u32(out, len(data))
    out.write(data)


class _IndexReader:
    def __init__(self, data: bytes) -> None:
        self._view = memoryview(data)
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._view) - self._pos

    def u32(self) -> int:
        if self.remaining < 4:
            raise LogDecodeError("truncated shard index")
        value = _U32.unpack_from(self._view, self._pos)[0]
        self._pos += 4
        return value

    def u64(self) -> int:
        if self.remaining < 8:
            raise LogDecodeError("truncated shard index")
        value = _U64.unpack_from(self._view, self._pos)[0]
        self._pos += 8
        return value

    def raw(self, length: int) -> bytes:
        data = bytes(self._view[self._pos: self._pos + length])
        if len(data) != length:
            raise LogDecodeError("truncated shard index")
        self._pos += length
        return data

    def text(self) -> str:
        return self.raw(self.u32()).decode("utf-8")


def _pack_entry(entry: StoredEntry) -> bytes:
    out = io.BytesIO()
    out.write(bytes.fromhex(entry.digest))     # 32 raw digest bytes
    _write_u64(out, entry.seq)
    _write_u64(out, entry.observed_at)
    _write_u32(out, entry.byte_size)
    _write_u64(out, entry.replay_window)
    _write_str(out, entry.fault_kind)
    _write_str(out, entry.program_name)
    _write_str(out, entry.filename)
    _write_str(out, entry.upload_id)           # v2 addition
    _write_u32(out, len(entry.race_pcs))       # v3 addition
    for pc in entry.race_pcs:
        _write_u64(out, pc)
    _write_str(out, entry.route_key)           # v4 addition
    return out.getvalue()


def _unpack_entry(reader: _IndexReader, shard: int,
                  version: int) -> StoredEntry:
    digest = reader.raw(32).hex()
    seq = reader.u64()
    observed_at = reader.u64()
    byte_size = reader.u32()
    replay_window = reader.u64()
    fault_kind = reader.text()
    program_name = reader.text()
    filename = reader.text()
    upload_id = reader.text() if version >= 2 else ""
    race_pcs: tuple[int, ...] = ()
    if version >= 3:
        race_pcs = tuple(reader.u64() for _ in range(reader.u32()))
    route_key = reader.text() if version >= 4 else ""
    return StoredEntry(
        digest=digest,
        seq=seq,
        observed_at=observed_at,
        byte_size=byte_size,
        replay_window=replay_window,
        fault_kind=fault_kind,
        program_name=program_name,
        filename=filename,
        upload_id=upload_id,
        race_pcs=race_pcs,
        route_key=route_key,
        shard=shard,
    )


def _parse_records(data: bytes, shard: int, version: int,
                   base_offset: int) -> "tuple[list[StoredEntry], int]":
    """Parse index records from *data*; returns the entries and the file
    offset just past the last **complete** record.  A partial trailing
    record (torn write from a killed writer) is dropped: the report it
    described was never acknowledged."""
    reader = _IndexReader(data)
    entries: list[StoredEntry] = []
    valid = 0
    while reader.remaining:
        try:
            entries.append(_unpack_entry(reader, shard, version))
        except (LogDecodeError, UnicodeDecodeError):
            # Short read, or a length prefix pointing into garbage that
            # is not valid UTF-8: both are the torn-record case.
            break
        valid = reader.position
    return entries, base_offset + valid


class ReportStore:
    """Bounded, sharded crash-report store with a consistent-hash ring."""

    def __init__(
        self,
        root,
        num_shards: "int | None" = None,
        byte_budget: int | None = None,
        ring_replicas: "int | None" = None,
        fsync: bool = False,
        retention_window: "int | None" = None,
    ) -> None:
        self.root = Path(root)
        self.fsync = fsync
        meta_path = self.root / "store.json"
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            # Ring shape is a property of the store on disk, not of the
            # opener: honoring a different shard count here would send
            # existing signatures to the wrong directories.  An explicit
            # mismatch is therefore an error, never silently ignored —
            # the caller either meant a different store directory or is
            # about to corrupt this one's placement.
            for name, asked, on_disk in (
                ("num_shards", num_shards, meta["num_shards"]),
                ("ring_replicas", ring_replicas, meta["ring_replicas"]),
            ):
                if asked is not None and asked != on_disk:
                    raise ValueError(
                        f"store at {self.root} has {name}={on_disk}, "
                        f"caller asked for {asked}; the ring shape of an "
                        f"existing store cannot change (open with "
                        f"{name}=None to inherit it)"
                    )
            self.num_shards = meta["num_shards"]
            self.ring_replicas = meta["ring_replicas"]
            self._next_seq = meta["next_seq"]
            self.evicted_reports = meta.get("evicted_reports", 0)
            self.evicted_bytes = meta.get("evicted_bytes", 0)
            self.byte_budget = (
                byte_budget if byte_budget is not None else meta.get("byte_budget")
            )
            self.retention_window = (
                retention_window if retention_window is not None
                else meta.get("retention_window")
            )
        else:
            if num_shards is None:
                num_shards = DEFAULT_NUM_SHARDS
            if ring_replicas is None:
                ring_replicas = DEFAULT_RING_REPLICAS
            if num_shards < 1:
                raise ValueError("need at least one shard")
            self.num_shards = num_shards
            self.ring_replicas = ring_replicas
            self._next_seq = 0
            self.evicted_reports = 0
            self.evicted_bytes = 0
            self.byte_budget = byte_budget
            self.retention_window = retention_window
            self.root.mkdir(parents=True, exist_ok=True)
        self._pending_rollups: list[StoredEntry] = []
        self._ring = self._build_ring()
        self._entries: list[StoredEntry] = []
        self._shard_versions: dict[int, int] = {}
        self._index_synced: dict[int, int] = {}
        # Inode of the index file the synced offset refers to.  Every
        # rewrite lands via temp + os.replace, so a changed inode is a
        # reliable "another writer rewrote this shard" signal even when
        # the rewritten file is not smaller than our synced offset.
        self._index_inode: dict[int, "int | None"] = {}
        for shard in range(self.num_shards):
            # Read and sweep each shard under its lock in one critical
            # section: sweeping against a separately-taken snapshot
            # could delete a blob a concurrent writer committed between
            # the index read and the sweep.
            with self._shard_lock(shard):
                shard_entries = self._read_shard_index(shard)
                self._sweep_shard(shard, shard_entries)
            self._entries.extend(shard_entries)
        self._entries.sort(key=lambda entry: entry.seq)
        if self._entries:
            # store.json is written after the index append; recover the
            # counter if a crash landed between the two.
            self._next_seq = max(self._next_seq, self._entries[-1].seq + 1)
        self._next_seq = max(self._next_seq, self._read_seq_file())
        self._upload_index: dict[str, StoredEntry] = {
            entry.upload_id: entry
            for entry in self._entries if entry.upload_id
        }
        self.total_bytes = sum(entry.byte_size for entry in self._entries)
        if not meta_path.exists():
            self._write_meta()

    def _sweep_shard(self, shard: int,
                     entries: "list[StoredEntry]") -> None:
        """Delete blobs with no index record (a crash between the blob
        write and the index append, or a dropped partial trailing
        record) plus stale temp files; otherwise they would accumulate
        invisibly outside the byte budget.  Caller holds the shard lock
        and *entries* is the index as read under that same lock."""
        shard_dir = self._shard_dir(shard)
        if not shard_dir.is_dir():
            return
        indexed = {entry.filename for entry in entries}
        for blob in shard_dir.glob("*.bugnet"):
            if blob.name not in indexed:
                blob.unlink()
        for temp in shard_dir.glob("*.tmp"):
            temp.unlink()

    # -- locking -----------------------------------------------------------

    @contextmanager
    def _flock(self, path: Path):
        """Exclusive advisory lock (no-op where fcntl is unavailable)."""
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            with _FLOCK_WAIT_SECONDS.time():
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _global_lock(self):
        return self._flock(self.root / "store.lock")

    def _shard_lock(self, shard: int):
        return self._flock(self._shard_dir(shard) / ".lock")

    # -- consistent hashing ------------------------------------------------

    def _build_ring(self) -> list[tuple[int, int]]:
        points = []
        for shard in range(self.num_shards):
            for replica in range(self.ring_replicas):
                token = hashlib.sha256(f"shard-{shard}#{replica}".encode()).digest()
                points.append((int.from_bytes(token[:8], "big"), shard))
        points.sort()
        return points

    def shard_of(self, digest: str) -> int:
        """Map a signature digest to its shard via the hash ring."""
        key = int(digest[:16], 16)
        index = bisect.bisect_right(self._ring, (key, -1))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    # -- persistence -------------------------------------------------------

    def _shard_dir(self, shard: int) -> Path:
        return self.root / f"shard-{shard:02d}"

    def _index_path(self, shard: int) -> Path:
        return self._shard_dir(shard) / "index.bin"

    def _atomic_write(self, path: Path, data: bytes) -> None:
        temp = path.with_name(path.name + f".{os.getpid()}.tmp")
        with open(temp, "wb") as handle:
            handle.write(data)
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp, path)

    def _read_seq_file(self) -> int:
        path = self.root / "seq"
        try:
            return int(path.read_text())
        except (OSError, ValueError):
            return 0

    def _alloc_seqs(self, count: int) -> int:
        """Reserve *count* store-global sequence numbers (cross-process
        safe: read-modify-write of the ``seq`` file under the global
        lock)."""
        with self._global_lock():
            start = max(self._next_seq, self._read_seq_file())
            self._atomic_write(self.root / "seq", str(start + count).encode())
        self._next_seq = start + count
        return start

    def _read_shard_index(self, shard: int) -> list[StoredEntry]:
        path = self._index_path(shard)
        if not path.exists():
            self._shard_versions[shard] = _INDEX_VERSION
            self._index_synced[shard] = 0
            self._index_inode[shard] = None
            return []
        self._index_inode[shard] = path.stat().st_ino
        data = path.read_bytes()
        if data[:4] != _INDEX_MAGIC:
            raise LogDecodeError(f"bad shard index magic in {path}")
        version = _U32.unpack_from(data, 4)[0] if len(data) >= 8 else 0
        if not 1 <= version <= _INDEX_VERSION:
            raise LogDecodeError(f"unsupported shard index version {version}")
        entries, valid_end = _parse_records(
            data[_HEADER_SIZE:], shard, version, _HEADER_SIZE
        )
        self._shard_versions[shard] = version
        self._index_synced[shard] = valid_end
        return entries

    def _absorb_and_repair(self, shard: int) -> None:
        """Bring this writer's view of a shard index up to date before
        appending: absorb records other live writers appended since our
        last sync, and truncate any torn tail a killed writer left.
        Caller holds the shard lock."""
        path = self._index_path(shard)
        if not path.exists():
            self._index_synced[shard] = 0
            self._index_inode[shard] = None
            return
        stat = path.stat()
        size = stat.st_size
        synced = self._index_synced.get(shard, 0)
        if stat.st_ino != self._index_inode.get(shard):
            # The file was replaced wholesale (another writer's
            # eviction rewrite or v1 upgrade): our synced offset refers
            # to the old inode's bytes, so reload from scratch — delta
            # parsing from a stale offset would read mid-record
            # garbage even when the new file happens to be larger.
            self._reload_shard(shard)
            return
        if synced < _HEADER_SIZE:
            # Another process created this shard's index since we
            # opened: validate its header before parsing records, and
            # never treat the header bytes as a record.
            header = path.read_bytes()[:_HEADER_SIZE]
            if header[:4] != _INDEX_MAGIC:
                raise LogDecodeError(f"bad shard index magic in {path}")
            version = _U32.unpack_from(header, 4)[0]
            if not 1 <= version <= _INDEX_VERSION:
                raise LogDecodeError(
                    f"unsupported shard index version {version}"
                )
            self._shard_versions[shard] = version
            synced = self._index_synced[shard] = _HEADER_SIZE
        if size == synced:
            return
        if size < synced:
            # Defensive: with replace-based rewrites a same-inode
            # shrink should be impossible (torn-tail truncation never
            # cuts below any live writer's synced offset), but a full
            # reload is always safe.
            self._reload_shard(shard)
            return
        with open(path, "rb") as handle:
            handle.seek(synced)
            delta = handle.read()
        entries, valid_end = _parse_records(
            delta, shard, self._shard_versions.get(shard, _INDEX_VERSION),
            synced,
        )
        if valid_end < size:
            # Torn tail from a killed writer: drop it before appending,
            # or every later record in this shard would misparse.
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
        for entry in entries:
            self._entries.append(entry)
            self.total_bytes += entry.byte_size
            if entry.upload_id:
                self._upload_index[entry.upload_id] = entry
            self._next_seq = max(self._next_seq, entry.seq + 1)
        if entries:
            self._entries.sort(key=lambda entry: entry.seq)
        self._index_synced[shard] = valid_end

    def _reload_shard(self, shard: int) -> None:
        """Replace the in-memory view of one shard with a fresh read of
        its index file (caller holds the shard lock)."""
        fresh = self._read_shard_index(shard)
        self._entries = (
            [e for e in self._entries if e.shard != shard] + fresh
        )
        self._entries.sort(key=lambda entry: entry.seq)
        self.total_bytes = sum(e.byte_size for e in self._entries)
        self._upload_index = {
            entry.upload_id: entry
            for entry in self._entries if entry.upload_id
        }
        for entry in fresh:
            self._next_seq = max(self._next_seq, entry.seq + 1)

    def _upgrade_shard_legacy(self, shard: int) -> None:
        """Rewrite a v1/v2 shard index at the current version (caller
        holds the shard lock).  Reads the file itself — not the
        in-memory view — so a concurrent writer's records survive the
        upgrade."""
        entries = self._read_shard_index(shard)
        out = io.BytesIO()
        out.write(_INDEX_MAGIC)
        _write_u32(out, _INDEX_VERSION)
        for entry in entries:
            out.write(_pack_entry(entry))
        data = out.getvalue()
        self._atomic_write(self._index_path(shard), data)
        self._shard_versions[shard] = _INDEX_VERSION
        self._index_synced[shard] = len(data)
        self._index_inode[shard] = self._index_path(shard).stat().st_ino
        # The reload above replaced parse state; refresh the in-memory
        # entries for this shard to the just-written set.
        self._entries = (
            [e for e in self._entries if e.shard != shard] + entries
        )
        self._entries.sort(key=lambda entry: entry.seq)
        self.total_bytes = sum(e.byte_size for e in self._entries)

    def _append_shard_records(self, shard: int,
                              entries: "list[StoredEntry]") -> None:
        """Append a batch of records to a shard index with one write.
        Caller holds the shard lock and has run _absorb_and_repair."""
        path = self._index_path(shard)
        payload = b"".join(_pack_entry(entry) for entry in entries)
        if not path.exists():
            self._atomic_write(
                path, _INDEX_MAGIC + _U32.pack(_INDEX_VERSION) + payload
            )
            self._index_synced[shard] = _HEADER_SIZE + len(payload)
            self._shard_versions[shard] = _INDEX_VERSION
            self._index_inode[shard] = path.stat().st_ino
            return
        if self._shard_versions.get(shard, _INDEX_VERSION) < _INDEX_VERSION:
            self._upgrade_shard_legacy(shard)
        with open(path, "ab") as handle:
            handle.write(payload)
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())
        self._index_synced[shard] = self._index_synced.get(shard, 0) + len(payload)

    def _rewrite_shard_index(self, shard: int) -> None:
        out = io.BytesIO()
        out.write(_INDEX_MAGIC)
        _write_u32(out, _INDEX_VERSION)
        for entry in self._entries:
            if entry.shard == shard:
                out.write(_pack_entry(entry))
        data = out.getvalue()
        self._atomic_write(self._index_path(shard), data)
        self._shard_versions[shard] = _INDEX_VERSION
        self._index_synced[shard] = len(data)
        self._index_inode[shard] = self._index_path(shard).stat().st_ino

    def _write_meta(self) -> None:
        disk_next = 0
        meta_path = self.root / "store.json"
        if meta_path.exists():
            try:
                disk_next = json.loads(meta_path.read_text()).get("next_seq", 0)
            except (OSError, ValueError):
                disk_next = 0
        self._atomic_write(meta_path, (json.dumps({
            "num_shards": self.num_shards,
            "ring_replicas": self.ring_replicas,
            "next_seq": max(self._next_seq, disk_next),
            "byte_budget": self.byte_budget,
            "retention_window": self.retention_window,
            "evicted_reports": self.evicted_reports,
            "evicted_bytes": self.evicted_bytes,
        }, indent=2) + "\n").encode())

    # -- mutation ----------------------------------------------------------

    def add(
        self,
        digest: str,
        blob: bytes,
        replay_window: int = 0,
        fault_kind: str = "",
        program_name: str = "",
        observed_at: int | None = None,
        upload_id: str = "",
        race_pcs: "tuple[int, ...]" = (),
        route_key: str = "",
    ) -> StoredEntry:
        """Store one validated report blob under its signature digest.

        ``observed_at`` defaults to the (store-monotonic) sequence
        number, so recency and eviction order stay correct across
        separate ingest invocations; pass an explicit value only when
        the caller has a real fleet-wide observation clock.
        """
        return self.add_many([{
            "digest": digest,
            "blob": blob,
            "replay_window": replay_window,
            "fault_kind": fault_kind,
            "program_name": program_name,
            "observed_at": observed_at,
            "upload_id": upload_id,
            "race_pcs": race_pcs,
            "route_key": route_key,
        }])[0]

    def add_many(self, items: "list[dict]") -> "list[StoredEntry]":
        """Commit a batch of validated reports in one locked pass.

        Each item is a dict with ``digest`` and ``blob`` (required) and
        optional ``replay_window``, ``fault_kind``, ``program_name``,
        ``observed_at``, ``upload_id``, ``race_pcs``.  The batch gets consecutive
        sequence numbers, per-shard writes take each shard lock once,
        and the metadata/eviction pass runs once — the commit-batching
        the ingestion service relies on.  Entries are durable against
        process death when this returns (and against OS crash with
        ``fsync=True``).
        """
        if not items:
            return []
        with _COMMIT_BATCH_SECONDS.time():
            return self._add_many_locked(items)

    def _add_many_locked(self, items: "list[dict]") -> "list[StoredEntry]":
        start = self._alloc_seqs(len(items))
        new_entries: list[StoredEntry] = []
        by_shard: dict[int, list[tuple[StoredEntry, bytes]]] = {}
        for offset, item in enumerate(items):
            seq = start + offset
            digest = item["digest"]
            blob = item["blob"]
            observed_at = item.get("observed_at")
            if observed_at is None:
                observed_at = seq
            shard = self.shard_of(digest)
            entry = StoredEntry(
                digest=digest,
                seq=seq,
                observed_at=observed_at,
                byte_size=len(blob),
                replay_window=item.get("replay_window", 0),
                fault_kind=item.get("fault_kind", ""),
                program_name=item.get("program_name", ""),
                shard=shard,
                filename=f"{seq:08d}-{digest[:12]}.bugnet",
                upload_id=item.get("upload_id", ""),
                race_pcs=tuple(item.get("race_pcs", ())),
                route_key=item.get("route_key", ""),
            )
            new_entries.append(entry)
            by_shard.setdefault(shard, []).append((entry, blob))
        for shard in sorted(by_shard):
            shard_dir = self._shard_dir(shard)
            shard_dir.mkdir(parents=True, exist_ok=True)
            with self._shard_lock(shard):
                self._absorb_and_repair(shard)
                for entry, blob in by_shard[shard]:
                    self._atomic_write(shard_dir / entry.filename, blob)
                self._append_shard_records(
                    shard, [entry for entry, _ in by_shard[shard]]
                )
        for entry in new_entries:
            self._entries.append(entry)
            self.total_bytes += entry.byte_size
            if entry.upload_id:
                self._upload_index[entry.upload_id] = entry
        self._entries.sort(key=lambda entry: entry.seq)
        with self._global_lock():
            # Protect by sequence number, not object identity: an
            # absorb reload inside eviction replaces entry objects,
            # and the batch must stay protected across that.
            protect = {entry.seq for entry in new_entries}
            if self.byte_budget is not None:
                while (self.total_bytes > self.byte_budget
                       and self._evict_oldest(protect)):
                    pass
            if self.retention_window is not None:
                self._apply_retention(protect)
            self._flush_rollups()
            self._write_meta()
        _COMMIT_REPORTS.inc(len(new_entries))
        return new_entries

    def _retention_cutoff(self, now: "int | None" = None) -> "int | None":
        """Oldest ``observed_at`` retention keeps resident, or None.

        ``observed_at`` is a logical clock (it defaults to the ingest
        sequence), so "now" is the newest observation in the store
        unless the caller supplies a real fleet clock.
        """
        if self.retention_window is None:
            return None
        if now is None:
            if not self._entries:
                return None
            now = max(entry.observed_at for entry in self._entries)
        return now - self.retention_window

    def _apply_retention(self, protect: "set[int]",
                         now: "int | None" = None) -> int:
        """Evict every unprotected report older than the retention
        window (caller holds the global lock); returns evictions."""
        cutoff = self._retention_cutoff(now)
        if cutoff is None:
            return 0
        evicted = 0
        while self._evict_oldest(protect, cutoff=cutoff):
            evicted += 1
        return evicted

    def compact(self, now: "int | None" = None) -> int:
        """Apply time-windowed retention outside a commit: evict every
        report whose ``observed_at`` is older than ``retention_window``
        (counts survive in the rollup aggregates).  Returns the number
        of reports evicted.  No-op without a retention window."""
        if self.retention_window is None:
            return 0
        with self._global_lock():
            evicted = self._apply_retention(set(), now=now)
            self._flush_rollups()
            if evicted:
                self._write_meta()
        return evicted

    def _evict_oldest(self, protect: "set[int]",
                      cutoff: "int | None" = None) -> bool:
        """Drop the oldest stored report (never one just added;
        *protect* holds the current batch's sequence numbers).  With
        *cutoff*, only a report observed strictly before it is evicted
        — the retention-window form of the same machinery."""
        victim = None
        for entry in self._entries:
            if entry.seq in protect:
                continue
            if victim is None or entry.order_key < victim.order_key:
                victim = entry
        if victim is None:
            return False
        if cutoff is not None and victim.observed_at >= cutoff:
            return False
        with self._shard_lock(victim.shard):
            # Absorb records other live writers appended to this shard
            # since our last sync: the rewrite below regenerates the
            # whole index from our in-memory view, and a stale view
            # would silently drop their acknowledged commits.
            self._absorb_and_repair(victim.shard)
            current = next(
                (entry for entry in self._entries
                 if entry.seq == victim.seq and entry.shard == victim.shard),
                None,
            )
            if current is None:
                # Another writer's rewrite already removed the victim;
                # the budget loop re-evaluates with the fresh totals.
                return True
            victim = current
            self._entries.remove(victim)
            self.total_bytes -= victim.byte_size
            self.evicted_reports += 1
            self.evicted_bytes += victim.byte_size
            self._pending_rollups.append(victim)
            _EVICTIONS.inc()
            if victim.upload_id:
                self._upload_index.pop(victim.upload_id, None)
            path = self._shard_dir(victim.shard) / victim.filename
            if path.exists():
                path.unlink()
            self._rewrite_shard_index(victim.shard)
        return True

    # -- rollup aggregates --------------------------------------------------

    def _flush_rollups(self) -> None:
        """Fold evictions accumulated this critical section into
        ``rollups.json`` (caller holds the global lock).  Read-merge-
        write keeps concurrent writer processes' rollups additive."""
        if not self._pending_rollups:
            return
        rollups = self._read_rollups()
        for entry in self._pending_rollups:
            slot = rollups.get(entry.digest)
            if slot is None:
                slot = rollups[entry.digest] = {
                    "count": 0,
                    "bytes": 0,
                    "first_seen": entry.observed_at,
                    "last_seen": entry.observed_at,
                    "fault_kind": entry.fault_kind,
                    "program_name": entry.program_name,
                    "race_pcs": sorted(entry.race_pcs),
                }
            slot["count"] += 1
            slot["bytes"] += entry.byte_size
            slot["first_seen"] = min(slot["first_seen"], entry.observed_at)
            slot["last_seen"] = max(slot["last_seen"], entry.observed_at)
            slot["race_pcs"] = sorted(
                set(slot["race_pcs"]) | set(entry.race_pcs)
            )
        self._pending_rollups = []
        self._atomic_write(
            self.root / "rollups.json",
            (json.dumps(rollups, indent=2, sort_keys=True) + "\n").encode(),
        )

    def _read_rollups(self) -> dict:
        path = self.root / "rollups.json"
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return {}

    def rollups(self) -> dict:
        """Per-signature aggregates of *evicted* reports (budget or
        retention): ``{digest: {count, bytes, first_seen, last_seen,
        fault_kind, program_name, race_pcs}}`` — how triage keeps a
        bucket's occurrence count after its blobs age out."""
        return self._read_rollups()

    # -- queries -----------------------------------------------------------

    def entries(self, digest: str | None = None) -> list[StoredEntry]:
        """Stored reports in ingest order (optionally one signature's)."""
        if digest is None:
            return list(self._entries)
        return [entry for entry in self._entries if entry.digest == digest]

    def signatures(self) -> list[str]:
        """Distinct signature digests with resident reports."""
        return sorted({entry.digest for entry in self._entries})

    def entries_in_token_ranges(self, ranges) -> list[StoredEntry]:
        """Stored reports whose *route digest* falls in any of the
        ``(start, end]`` ring-token ranges — how a topology change
        enumerates exactly the reports a remapped vpoint range covers
        (cluster range streaming, DESIGN.md §14).  Entries without a
        route key (pre-cluster commits) never match a range filter:
        they have no ring position to transfer."""
        return [
            entry for entry in self._entries
            if entry.route_key
            and token_in_ranges(route_token(entry.route_key), ranges)
        ]

    def entry_for_upload(self, upload_id: str) -> "StoredEntry | None":
        """The committed entry for a client idempotency token, if any —
        how a retried upload is acknowledged without a duplicate."""
        if not upload_id:
            return None
        return self._upload_index.get(upload_id)

    def shard_occupancy(self) -> "list[dict]":
        """Per-shard report counts and byte totals (the /stats shape)."""
        occupancy = [
            {"shard": shard, "reports": 0, "bytes": 0}
            for shard in range(self.num_shards)
        ]
        for entry in self._entries:
            slot = occupancy[entry.shard]
            slot["reports"] += 1
            slot["bytes"] += entry.byte_size
        return occupancy

    def path_of(self, entry: StoredEntry) -> Path:
        """Filesystem path of a stored report blob."""
        return self._shard_dir(entry.shard) / entry.filename

    def load(self, entry: StoredEntry):
        """Deserialize a stored report; returns (report, recorder config)."""
        return load_crash_report(self.path_of(entry).read_bytes())

    def __len__(self) -> int:
        return len(self._entries)
