"""Sharded on-disk crash-report store for fleet-scale ingestion.

Layout on disk::

    <root>/
        store.json            # shard count, ring replicas, seq counter,
                              # byte budget, eviction counters
        shard-00/
            index.bin         # per-shard binary index (magic BGSI)
            00000007-<sig12>.bugnet
        shard-01/
            ...

Reports are placed by **consistent hashing**: each shard contributes
``replicas`` virtual points to a hash ring, and a signature digest maps
to the first point at or after it.  Growing the fleet store by a shard
therefore remaps only ~1/N of signatures instead of reshuffling
everything (the classic argument; ``shard_of`` is the whole mechanism).
All reports of one signature land in one shard, so a triage worker can
scan buckets shard-locally.

The per-shard index is a compact binary file (no pickle, same
discipline as :mod:`repro.tracing.serialize`), append-only on ingest
and rewritten on eviction.

Retention mirrors :class:`~repro.tracing.backing.LogStore`: a byte
budget over the stored blobs, exceeded → evict the globally oldest
report (never the one just added), deterministically ordered by
``(observed_at, seq)``.
"""

from __future__ import annotations

import bisect
import hashlib
import io
import json
import struct
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import LogDecodeError
from repro.tracing.serialize import load_crash_report

_INDEX_MAGIC = b"BGSI"
_INDEX_VERSION = 1
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


@dataclass(frozen=True)
class StoredEntry:
    """One report as recorded in a shard index."""

    digest: str          # full signature sha256 hex
    seq: int             # store-global ingest sequence number
    observed_at: int     # caller-supplied logical observation time
    byte_size: int       # size of the stored .bugnet blob
    replay_window: int   # instructions replayable for the faulting thread
    fault_kind: str
    program_name: str
    shard: int
    filename: str

    @property
    def order_key(self) -> tuple[int, int]:
        """Eviction/recency order: oldest first, deterministic."""
        return (self.observed_at, self.seq)


def _write_u32(out: io.BytesIO, value: int) -> None:
    out.write(_U32.pack(value & 0xFFFFFFFF))


def _write_u64(out: io.BytesIO, value: int) -> None:
    out.write(_U64.pack(value & 0xFFFFFFFFFFFFFFFF))


def _write_str(out: io.BytesIO, text: str) -> None:
    data = text.encode("utf-8")
    _write_u32(out, len(data))
    out.write(data)


class _IndexReader:
    def __init__(self, data: bytes) -> None:
        self._view = memoryview(data)
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._view) - self._pos

    def u32(self) -> int:
        if self.remaining < 4:
            raise LogDecodeError("truncated shard index")
        value = _U32.unpack_from(self._view, self._pos)[0]
        self._pos += 4
        return value

    def u64(self) -> int:
        if self.remaining < 8:
            raise LogDecodeError("truncated shard index")
        value = _U64.unpack_from(self._view, self._pos)[0]
        self._pos += 8
        return value

    def raw(self, length: int) -> bytes:
        data = bytes(self._view[self._pos: self._pos + length])
        if len(data) != length:
            raise LogDecodeError("truncated shard index")
        self._pos += length
        return data

    def text(self) -> str:
        return self.raw(self.u32()).decode("utf-8")


def _pack_entry(entry: StoredEntry) -> bytes:
    out = io.BytesIO()
    out.write(bytes.fromhex(entry.digest))     # 32 raw digest bytes
    _write_u64(out, entry.seq)
    _write_u64(out, entry.observed_at)
    _write_u32(out, entry.byte_size)
    _write_u64(out, entry.replay_window)
    _write_str(out, entry.fault_kind)
    _write_str(out, entry.program_name)
    _write_str(out, entry.filename)
    return out.getvalue()


def _unpack_entry(reader: _IndexReader, shard: int) -> StoredEntry:
    return StoredEntry(
        digest=reader.raw(32).hex(),
        seq=reader.u64(),
        observed_at=reader.u64(),
        byte_size=reader.u32(),
        replay_window=reader.u64(),
        fault_kind=reader.text(),
        program_name=reader.text(),
        filename=reader.text(),
        shard=shard,
    )


class ReportStore:
    """Bounded, sharded crash-report store with a consistent-hash ring."""

    def __init__(
        self,
        root,
        num_shards: int = 8,
        byte_budget: int | None = None,
        ring_replicas: int = 32,
    ) -> None:
        self.root = Path(root)
        meta_path = self.root / "store.json"
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            # Ring shape is a property of the store on disk, not of the
            # opener: honoring the caller's shard count here would send
            # existing signatures to the wrong directories.
            self.num_shards = meta["num_shards"]
            self.ring_replicas = meta["ring_replicas"]
            self._next_seq = meta["next_seq"]
            self.evicted_reports = meta.get("evicted_reports", 0)
            self.evicted_bytes = meta.get("evicted_bytes", 0)
            self.byte_budget = (
                byte_budget if byte_budget is not None else meta.get("byte_budget")
            )
        else:
            if num_shards < 1:
                raise ValueError("need at least one shard")
            self.num_shards = num_shards
            self.ring_replicas = ring_replicas
            self._next_seq = 0
            self.evicted_reports = 0
            self.evicted_bytes = 0
            self.byte_budget = byte_budget
            self.root.mkdir(parents=True, exist_ok=True)
        self._ring = self._build_ring()
        self._entries: list[StoredEntry] = []
        for shard in range(self.num_shards):
            self._entries.extend(self._read_shard_index(shard))
        self._entries.sort(key=lambda entry: entry.seq)
        if self._entries:
            # store.json is written after the index append; recover the
            # counter if a crash landed between the two.
            self._next_seq = max(self._next_seq, self._entries[-1].seq + 1)
        self.total_bytes = sum(entry.byte_size for entry in self._entries)
        self._sweep_orphans()
        if not meta_path.exists():
            self._write_meta()

    def _sweep_orphans(self) -> None:
        """Delete blobs with no index record (a crash between the blob
        write and the index append, or a dropped partial trailing
        record); otherwise they would accumulate invisibly outside the
        byte budget."""
        indexed = {(entry.shard, entry.filename) for entry in self._entries}
        for shard in range(self.num_shards):
            shard_dir = self._shard_dir(shard)
            if not shard_dir.is_dir():
                continue
            for blob in shard_dir.glob("*.bugnet"):
                if (shard, blob.name) not in indexed:
                    blob.unlink()

    # -- consistent hashing ------------------------------------------------

    def _build_ring(self) -> list[tuple[int, int]]:
        points = []
        for shard in range(self.num_shards):
            for replica in range(self.ring_replicas):
                token = hashlib.sha256(f"shard-{shard}#{replica}".encode()).digest()
                points.append((int.from_bytes(token[:8], "big"), shard))
        points.sort()
        return points

    def shard_of(self, digest: str) -> int:
        """Map a signature digest to its shard via the hash ring."""
        key = int(digest[:16], 16)
        index = bisect.bisect_right(self._ring, (key, -1))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    # -- persistence -------------------------------------------------------

    def _shard_dir(self, shard: int) -> Path:
        return self.root / f"shard-{shard:02d}"

    def _index_path(self, shard: int) -> Path:
        return self._shard_dir(shard) / "index.bin"

    def _read_shard_index(self, shard: int) -> list[StoredEntry]:
        path = self._index_path(shard)
        if not path.exists():
            return []
        data = path.read_bytes()
        if data[:4] != _INDEX_MAGIC:
            raise LogDecodeError(f"bad shard index magic in {path}")
        reader = _IndexReader(data[4:])
        version = reader.u32()
        if version != _INDEX_VERSION:
            raise LogDecodeError(f"unsupported shard index version {version}")
        entries = []
        while reader.remaining:
            try:
                entries.append(_unpack_entry(reader, shard))
            except LogDecodeError:
                # A crash mid-append leaves a partial trailing record:
                # the report it described was never acknowledged, so
                # dropping it (and any orphaned blob) recovers the store
                # instead of bricking every future open.
                break
        return entries

    def _rewrite_shard_index(self, shard: int) -> None:
        out = io.BytesIO()
        out.write(_INDEX_MAGIC)
        _write_u32(out, _INDEX_VERSION)
        for entry in self._entries:
            if entry.shard == shard:
                out.write(_pack_entry(entry))
        self._index_path(shard).write_bytes(out.getvalue())

    def _append_shard_index(self, entry: StoredEntry) -> None:
        path = self._index_path(entry.shard)
        if not path.exists():
            path.write_bytes(_INDEX_MAGIC + _U32.pack(_INDEX_VERSION))
        with open(path, "ab") as handle:
            handle.write(_pack_entry(entry))

    def _write_meta(self) -> None:
        (self.root / "store.json").write_text(json.dumps({
            "num_shards": self.num_shards,
            "ring_replicas": self.ring_replicas,
            "next_seq": self._next_seq,
            "byte_budget": self.byte_budget,
            "evicted_reports": self.evicted_reports,
            "evicted_bytes": self.evicted_bytes,
        }, indent=2) + "\n")

    # -- mutation ----------------------------------------------------------

    def add(
        self,
        digest: str,
        blob: bytes,
        replay_window: int = 0,
        fault_kind: str = "",
        program_name: str = "",
        observed_at: int | None = None,
    ) -> StoredEntry:
        """Store one validated report blob under its signature digest.

        ``observed_at`` defaults to the (store-monotonic) sequence
        number, so recency and eviction order stay correct across
        separate ingest invocations; pass an explicit value only when
        the caller has a real fleet-wide observation clock.
        """
        seq = self._next_seq
        self._next_seq += 1
        if observed_at is None:
            observed_at = seq
        shard = self.shard_of(digest)
        entry = StoredEntry(
            digest=digest,
            seq=seq,
            observed_at=observed_at,
            byte_size=len(blob),
            replay_window=replay_window,
            fault_kind=fault_kind,
            program_name=program_name,
            shard=shard,
            filename=f"{seq:08d}-{digest[:12]}.bugnet",
        )
        shard_dir = self._shard_dir(shard)
        shard_dir.mkdir(parents=True, exist_ok=True)
        (shard_dir / entry.filename).write_bytes(blob)
        self._entries.append(entry)
        self._append_shard_index(entry)
        self.total_bytes += entry.byte_size
        if self.byte_budget is not None:
            while self.total_bytes > self.byte_budget and self._evict_oldest(entry):
                pass
        self._write_meta()
        return entry

    def _evict_oldest(self, protect: StoredEntry) -> bool:
        """Drop the oldest stored report (never the one just added)."""
        victim = None
        for entry in self._entries:
            if entry is protect:
                continue
            if victim is None or entry.order_key < victim.order_key:
                victim = entry
        if victim is None:
            return False
        self._entries.remove(victim)
        self.total_bytes -= victim.byte_size
        self.evicted_reports += 1
        self.evicted_bytes += victim.byte_size
        path = self._shard_dir(victim.shard) / victim.filename
        if path.exists():
            path.unlink()
        self._rewrite_shard_index(victim.shard)
        return True

    # -- queries -----------------------------------------------------------

    def entries(self, digest: str | None = None) -> list[StoredEntry]:
        """Stored reports in ingest order (optionally one signature's)."""
        if digest is None:
            return list(self._entries)
        return [entry for entry in self._entries if entry.digest == digest]

    def signatures(self) -> list[str]:
        """Distinct signature digests with resident reports."""
        return sorted({entry.digest for entry in self._entries})

    def path_of(self, entry: StoredEntry) -> Path:
        """Filesystem path of a stored report blob."""
        return self._shard_dir(entry.shard) / entry.filename

    def load(self, entry: StoredEntry):
        """Deserialize a stored report; returns (report, recorder config)."""
        return load_crash_report(self.path_of(entry).read_bytes())

    def __len__(self) -> int:
        return len(self._entries)
