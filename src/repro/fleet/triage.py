"""Signature bucketing and triage ranking over a :class:`ReportStore`.

Sundmark et al.'s industrial observation: replay debugging pays off once
report handling is *systematized* — a developer opens the top bucket,
not a random report.  Triage groups stored reports by signature, ranks
buckets by occurrence count (ties: most recently observed first, then
digest for determinism), and picks one representative report per bucket
— the one with the **largest replay window**, because that is the
report a developer can chase furthest back from the crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import Table, format_bytes
from repro.fleet.store import ReportStore, StoredEntry


@dataclass
class Bucket:
    """All stored reports sharing one crash signature."""

    digest: str
    fault_kind: str
    program_name: str
    entries: list[StoredEntry] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Occurrences (reports resident in the store)."""
        return len(self.entries)

    @property
    def first_seen(self) -> int:
        return min(entry.observed_at for entry in self.entries)

    @property
    def last_seen(self) -> int:
        return max(entry.observed_at for entry in self.entries)

    @property
    def bytes_stored(self) -> int:
        return sum(entry.byte_size for entry in self.entries)

    @property
    def racy(self) -> bool:
        """True when ingest-time validation race-keyed this bucket.

        Read straight from the stored index (v3) — no replay needed at
        triage time.  Any entry suffices: race evidence is part of the
        signature, so a bucket is either all-racy or all-not.
        """
        return any(entry.race_pcs for entry in self.entries)

    @property
    def race_pcs(self) -> tuple[int, ...]:
        """PCs of the racing remote stores this bucket is keyed on."""
        pcs: set[int] = set()
        for entry in self.entries:
            pcs.update(entry.race_pcs)
        return tuple(sorted(pcs))

    @property
    def representative(self) -> StoredEntry:
        """The report to open first: largest replay window, oldest wins ties
        (it has been reproducing the longest)."""
        return min(
            self.entries, key=lambda entry: (-entry.replay_window, entry.seq)
        )

    @property
    def rank_key(self):
        """Most occurrences first, then most recent, then stable digest."""
        return (-self.count, -self.last_seen, self.digest)

    def to_dict(self) -> dict:
        """JSON-friendly rendering (the ``bugnet triage --json`` shape)."""
        rep = self.representative
        return {
            "signature": self.digest,
            "program": self.program_name,
            "fault_kind": self.fault_kind,
            "count": self.count,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "bytes_stored": self.bytes_stored,
            "racy": self.racy,
            "race_pcs": list(self.race_pcs),
            "representative": {
                "seq": rep.seq,
                "shard": rep.shard,
                "filename": rep.filename,
                "replay_window": rep.replay_window,
            },
        }


def build_buckets(store: ReportStore) -> list[Bucket]:
    """Bucket every stored report by signature, ranked for triage."""
    buckets: dict[str, Bucket] = {}
    for entry in store.entries():
        bucket = buckets.get(entry.digest)
        if bucket is None:
            bucket = buckets[entry.digest] = Bucket(
                digest=entry.digest,
                fault_kind=entry.fault_kind,
                program_name=entry.program_name,
            )
        bucket.entries.append(entry)
    return sorted(buckets.values(), key=lambda bucket: bucket.rank_key)


def render_triage(buckets: list[Bucket], limit: int | None = None,
                  autopsies: "dict[str, object] | None" = None) -> str:
    """The triage table a developer reads top-down.

    *autopsies* (digest → :class:`~repro.forensics.autopsy.BucketAutopsy`)
    links each bucket to its automated root-cause analysis: the table
    gains a ``root cause`` column naming the verdict and the culprit
    source line (``bugnet triage --autopsy`` / ``bugnet autopsy
    --store``).
    """
    headers = ["#", "signature", "program", "fault", "count",
               "window", "stored", "representative"]
    if autopsies is not None:
        headers.append("root cause")
    table = Table("Crash triage (ranked by occurrences)", headers)
    shown = buckets if limit is None else buckets[:limit]
    for rank, bucket in enumerate(shown, start=1):
        rep = bucket.representative
        row = [
            rank,
            bucket.digest[:12],
            bucket.program_name,
            # Race-keyed buckets are flagged inline: the bucket's
            # identity is the racing store, not the (schedule-
            # dependent) fault site.
            bucket.fault_kind + (" [racy]" if bucket.racy else ""),
            bucket.count,
            rep.replay_window,
            format_bytes(bucket.bytes_stored),
            f"shard-{rep.shard:02d}/{rep.filename}",
        ]
        if autopsies is not None:
            row.append(_autopsy_cell(autopsies.get(bucket.digest)))
        table.add(*row)
    lines = [table.render()]
    if limit is not None and len(buckets) > limit:
        lines.append(f"... and {len(buckets) - limit} more bucket(s)")
    return "\n".join(lines)


def _autopsy_cell(result) -> str:
    """One-cell summary of a bucket's autopsy outcome."""
    if result is None:
        return "-"
    if getattr(result, "error", ""):
        return f"error: {result.error}"
    autopsy = result.autopsy
    if autopsy is None:
        return "-"
    cell = autopsy.verdict
    if autopsy.culprit_line is not None:
        cell += f" @ line {autopsy.culprit_line}"
    if autopsy.race_adjacent:
        cell += " [race]"
    return cell
