"""Signature bucketing and triage ranking over a :class:`ReportStore`.

Sundmark et al.'s industrial observation: replay debugging pays off once
report handling is *systematized* — a developer opens the top bucket,
not a random report.  Triage groups stored reports by signature, ranks
buckets by occurrence count (ties: most recently observed first, then
digest for determinism), and picks one representative report per bucket
— the one with the **largest replay window**, because that is the
report a developer can chase furthest back from the crash.

Counts outlive blobs: retention/budget eviction folds evicted reports
into the store's per-signature rollups
(:meth:`~repro.fleet.store.ReportStore.rollups`), and triage merges
those back in.  A bucket therefore ranks on its *total* occurrence
count — a bug that crashed the fleet ten thousand times last quarter
still tops the table even after its blobs aged out; only the
representative (which needs a resident blob) degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import Table, format_bytes
from repro.fleet.store import ReportStore, StoredEntry


@dataclass
class Bucket:
    """All stored reports sharing one crash signature."""

    digest: str
    fault_kind: str
    program_name: str
    entries: list[StoredEntry] = field(default_factory=list)
    #: Evicted occurrences folded in from the store's rollups — the
    #: part of the bucket's history whose blobs no longer exist.
    rolled_up: int = 0
    rollup: "dict | None" = None

    @property
    def count(self) -> int:
        """Occurrences with a resident (replayable) report."""
        return len(self.entries)

    @property
    def total_count(self) -> int:
        """Lifetime occurrences: resident + rolled-up evictions."""
        return self.count + self.rolled_up

    @property
    def first_seen(self) -> int:
        seen = [entry.observed_at for entry in self.entries]
        if self.rollup is not None:
            seen.append(self.rollup.get("first_seen", 0))
        return min(seen)

    @property
    def last_seen(self) -> int:
        seen = [entry.observed_at for entry in self.entries]
        if self.rollup is not None:
            seen.append(self.rollup.get("last_seen", 0))
        return max(seen)

    @property
    def bytes_stored(self) -> int:
        return sum(entry.byte_size for entry in self.entries)

    @property
    def racy(self) -> bool:
        """True when ingest-time validation race-keyed this bucket.

        Read straight from the stored index (v3) — no replay needed at
        triage time.  Any entry suffices: race evidence is part of the
        signature, so a bucket is either all-racy or all-not.
        """
        return bool(self.race_pcs)

    @property
    def race_pcs(self) -> tuple[int, ...]:
        """PCs of the racing remote stores this bucket is keyed on."""
        pcs: set[int] = set()
        for entry in self.entries:
            pcs.update(entry.race_pcs)
        if self.rollup is not None:
            pcs.update(self.rollup.get("race_pcs", ()))
        return tuple(sorted(pcs))

    @property
    def representative(self) -> "StoredEntry | None":
        """The report to open first: largest replay window, oldest wins
        ties (it has been reproducing the longest).  ``None`` for a
        rollup-only bucket — every blob was evicted, the count alone
        survives."""
        if not self.entries:
            return None
        return min(
            self.entries, key=lambda entry: (-entry.replay_window, entry.seq)
        )

    @property
    def rank_key(self):
        """Most occurrences first, then most recent, then stable digest."""
        return (-self.total_count, -self.last_seen, self.digest)

    def to_dict(self) -> dict:
        """JSON-friendly rendering (the ``bugnet triage --json`` shape)."""
        rep = self.representative
        return {
            "signature": self.digest,
            "program": self.program_name,
            "fault_kind": self.fault_kind,
            "count": self.count,
            "rolled_up": self.rolled_up,
            "total_count": self.total_count,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "bytes_stored": self.bytes_stored,
            "racy": self.racy,
            "race_pcs": list(self.race_pcs),
            "representative": None if rep is None else {
                "seq": rep.seq,
                "shard": rep.shard,
                "filename": rep.filename,
                "replay_window": rep.replay_window,
            },
        }


def build_buckets(store: ReportStore,
                  include_rollups: bool = True) -> list[Bucket]:
    """Bucket every stored report by signature, ranked for triage.

    With *include_rollups* (the default) evicted occurrences from the
    store's retention/budget rollups keep contributing to each bucket's
    total count and recency — a bucket may even be rollup-only, with no
    resident representative left to open.
    """
    buckets: dict[str, Bucket] = {}
    for entry in store.entries():
        bucket = buckets.get(entry.digest)
        if bucket is None:
            bucket = buckets[entry.digest] = Bucket(
                digest=entry.digest,
                fault_kind=entry.fault_kind,
                program_name=entry.program_name,
            )
        bucket.entries.append(entry)
    if include_rollups:
        for digest, slot in store.rollups().items():
            bucket = buckets.get(digest)
            if bucket is None:
                bucket = buckets[digest] = Bucket(
                    digest=digest,
                    fault_kind=slot.get("fault_kind", ""),
                    program_name=slot.get("program_name", ""),
                )
            bucket.rolled_up = int(slot.get("count", 0))
            bucket.rollup = slot
    return sorted(buckets.values(), key=lambda bucket: bucket.rank_key)


def render_triage(buckets: list[Bucket], limit: int | None = None,
                  autopsies: "dict[str, object] | None" = None) -> str:
    """The triage table a developer reads top-down.

    *autopsies* (digest → :class:`~repro.forensics.autopsy.BucketAutopsy`)
    links each bucket to its automated root-cause analysis: the table
    gains a ``root cause`` column naming the verdict and the culprit
    source line (``bugnet triage --autopsy`` / ``bugnet autopsy
    --store``).
    """
    headers = ["#", "signature", "program", "fault", "count",
               "window", "stored", "representative"]
    if autopsies is not None:
        headers.append("root cause")
    table = Table("Crash triage (ranked by occurrences)", headers)
    shown = buckets if limit is None else buckets[:limit]
    for rank, bucket in enumerate(shown, start=1):
        rep = bucket.representative
        count = str(bucket.count)
        if bucket.rolled_up:
            count = f"{bucket.total_count} ({bucket.rolled_up} evicted)"
        row = [
            rank,
            bucket.digest[:12],
            bucket.program_name,
            # Race-keyed buckets are flagged inline: the bucket's
            # identity is the racing store, not the (schedule-
            # dependent) fault site.
            bucket.fault_kind + (" [racy]" if bucket.racy else ""),
            count,
            rep.replay_window if rep is not None else "-",
            format_bytes(bucket.bytes_stored),
            (f"shard-{rep.shard:02d}/{rep.filename}" if rep is not None
             else "(all blobs evicted)"),
        ]
        if autopsies is not None:
            row.append(_autopsy_cell(autopsies.get(bucket.digest)))
        table.add(*row)
    lines = [table.render()]
    if limit is not None and len(buckets) > limit:
        lines.append(f"... and {len(buckets) - limit} more bucket(s)")
    return "\n".join(lines)


def _autopsy_cell(result) -> str:
    """One-cell summary of a bucket's autopsy outcome."""
    if result is None:
        return "-"
    if getattr(result, "error", ""):
        return f"error: {result.error}"
    autopsy = result.autopsy
    if autopsy is None:
        return "-"
    cell = autopsy.verdict
    if autopsy.culprit_line is not None:
        cell += f" @ line {autopsy.culprit_line}"
    if autopsy.race_adjacent:
        cell += " [race]"
    return cell
