"""Pure crash-report validation: decode → replay → fault probe.

The single validation implementation shared by the batch CLI pipeline
(:class:`~repro.fleet.ingest.IngestPipeline`) and the live ingestion
service (:mod:`repro.fleet.service`): one report blob in, one verdict
out, **no side effects** — no store writes, no shared mutable state.
That purity is what lets the service fan validation out across a
process pool while the batch path runs it inline, with test-pinned
identical outcomes (``tests/test_fleet_ingest.py``).

The module also carries the process-pool plumbing: a picklable
:class:`ResolverSpec` describing how a worker process should build its
program resolver (assembled programs are not picklable-cheap, source
text is), a pool initializer, and a module-level work function —
everything a ``ProcessPoolExecutor`` needs to run validation in a
separate interpreter.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.arch.program import Program
from repro.common.errors import ReplayDivergence, ReproError
from repro.fleet.signature import (
    DEFAULT_TAIL_DEPTH,
    CrashSignature,
    ReplayedTail,
    replay_tail,
    route_digest,
    signature_from_tail,
)
from repro.obs import REGISTRY, SpanRecorder
from repro.replay.replayer import Replayer
from repro.tracing.serialize import load_crash_report

#: Per-stage validation timing.  Spans nest: ``replay`` contains the
#: per-thread ``chain-replay`` stages plus ``mrl-merge`` and
#: ``race-inference`` for multithreaded reports, so the nested stage
#: histograms overlap their parent by design.
_STAGE_SECONDS = REGISTRY.histogram(
    "bugnet_validate_stage_seconds",
    "Wall time of one named validation stage (see DESIGN.md §11).",
    ("stage",),
)
_VALIDATE_OUTCOMES = REGISTRY.counter(
    "bugnet_validate_outcomes_total",
    "Validation verdicts, before store commit.",
    ("outcome",),
)

#: Everything a hostile/corrupt blob can legitimately raise while being
#: decoded or replayed: our own error hierarchy, zlib/struct framing
#: errors, field-validation errors from reconstructing the recorder
#: config, and lookup failures from corrupt dictionary-encoded FLL
#: payloads (``LookupError`` covers ``KeyError`` and ``IndexError`` —
#: a flipped bit in a compressed record indexes an empty dictionary
#: entry, which must reject the report, not traceback through
#: ``bugnet ingest``).
DECODE_ERRORS = (ReproError, zlib.error, struct.error, ValueError,
                 LookupError)

ProgramResolver = Callable[[str], "Program | None"]

#: Instructions from the end of the faulting thread's replay whose
#: *loads* anchor race-evidence inference.  The crash idioms BugNet
#: targets dereference a value loaded at most a couple of instructions
#: before the fault (the pointer load feeding the crashing access);
#: a wider window would sweep in benign shared traffic (worker-pool
#: scratch buffers) and key race buckets on noise.
RACE_EVIDENCE_WINDOW = 4


@dataclass
class IngestResult:
    """Outcome of ingesting one report."""

    label: str
    accepted: bool
    reason: str                        # "ok" or the rejection reason
    signature: CrashSignature | None = None
    entry: object | None = None        # StoredEntry once committed
    instructions_replayed: int = 0
    #: Top-level validation stage timings in milliseconds (empty when
    #: the result never went through ``validate_report`` — e.g. a
    #: protocol-level rejection synthesized by the service).
    stage_ms: dict = field(default_factory=dict)

    @property
    def digest(self) -> str | None:
        """Signature digest, when validation got that far."""
        return self.signature.digest if self.signature else None


@dataclass
class ValidatedReport:
    """A report that survived validation, ready to commit."""

    label: str
    blob: bytes
    observed_at: int | None
    signature: CrashSignature
    fault_kind: str
    program_name: str
    instructions: int    # validated replay window = instructions replayed
    stage_ms: dict = field(default_factory=dict)  # top-level stage timings
    #: Cluster ring routing digest (:func:`repro.fleet.signature.
    #: route_digest`) — replay-free, so clients and forwarding nodes
    #: compute the identical key from the raw blob.
    route_key: str = ""


def route_key_of_blob(blob: bytes) -> "str | None":
    """Cluster ring routing digest of a raw report blob, or None when
    the blob does not decode.

    This is the replay-free half of validation: clients and forwarding
    nodes decode just far enough to read (program, fault kind, fault
    PC) and route on :func:`~repro.fleet.signature.route_digest`.  An
    undecodable blob has no route key — any node may coordinate it,
    since validation will reject it identically everywhere.
    """
    try:
        report, _config = load_crash_report(blob)
    except DECODE_ERRORS:
        return None
    return route_digest(report.program_name, report.fault_kind,
                        report.fault_pc)


def validate_report(
    label: str,
    blob: bytes,
    observed_at: "int | None",
    resolver: ProgramResolver,
    tail_depth: int = DEFAULT_TAIL_DEPTH,
    probe: bool = True,
    spans: "SpanRecorder | None" = None,
) -> "ValidatedReport | IngestResult":
    """Validate one crash-report blob; pure function of its inputs.

    Returns a :class:`ValidatedReport` on success or a rejecting
    :class:`IngestResult` naming the reason.  The pipeline: deserialize
    the blob, resolve the program binary it names, replay the resident
    log chain of **every thread with logs** (compiled-dispatch replay),
    cross-check the MRL ordering constraints across threads, check the
    faulting thread's replay ends on the recorded faulting PC, and
    optionally re-execute the faulting instruction against the replayed
    state to confirm the fault reproduces.

    Single-thread reports take exactly the old fast path.  For
    multithreaded reports the whole-report replay additionally infers
    the data races feeding the crash; the racing remote stores' PCs
    become the signature's race evidence, so schedule-different
    manifestations of one race dedup into one bucket — and a report
    whose *non-faulting* thread logs are corrupt is rejected here, at
    ingest, instead of crashing ``bugnet autopsy`` after commit.

    Every validation runs under a span recorder (*spans*, or a private
    one): the named stage timings land in the
    ``bugnet_validate_stage_seconds`` histograms and, as a flat
    millisecond map, on the returned outcome's ``stage_ms``.  Pass a
    fresh recorder per call — ``bugnet profile`` passes its own to
    render the breakdown.
    """
    recorder = spans if spans is not None else SpanRecorder()
    result = _validate(
        label, blob, observed_at, resolver, tail_depth, probe, recorder
    )
    result.stage_ms = recorder.stage_ms()
    if REGISTRY.enabled:
        for span in recorder.spans:
            _STAGE_SECONDS.labels(span.name).observe(span.seconds)
        _VALIDATE_OUTCOMES.labels(
            "accepted" if isinstance(result, ValidatedReport)
            else "rejected"
        ).inc()
    return result


def _validate(
    label: str,
    blob: bytes,
    observed_at: "int | None",
    resolver: ProgramResolver,
    tail_depth: int,
    probe: bool,
    recorder: SpanRecorder,
) -> "ValidatedReport | IngestResult":
    """The un-instrumented validation pipeline behind
    :func:`validate_report` (which owns metrics + ``stage_ms``)."""
    try:
        with recorder.span("decode"):
            report, config = load_crash_report(blob)
    except DECODE_ERRORS as error:
        return IngestResult(label, False, f"decode: {error}")
    with recorder.span("resolve"):
        program = resolver(report.program_name)
    if program is None:
        return IngestResult(
            label, False, f"unknown program {report.program_name!r}"
        )
    race_pcs: "tuple[int, ...]" = ()
    try:
        with recorder.span("replay"):
            if len(report.thread_ids) > 1:
                tail, race_pcs = _validate_threads(
                    report, config, program, tail_depth, recorder)
            else:
                tail = replay_tail(report, config, program, tail_depth)
    except DECODE_ERRORS as error:
        return IngestResult(label, False, f"replay: {error}")
    last_fll = tail.last_fll
    if last_fll.fault_pc is None:
        # The faulting thread's final resident checkpoint never
        # recorded a fault point: the fault interval was stripped or
        # the report was tampered with.  Accepting it would skip
        # every fault check below.
        return IngestResult(
            label, False,
            "final checkpoint records no fault point "
            "(fault interval missing from the chain)",
        )
    if last_fll.fault_pc != report.fault_pc:
        return IngestResult(
            label, False,
            f"fault pc mismatch: log says {last_fll.fault_pc:#010x}, "
            f"report says {report.fault_pc:#010x}",
        )
    if tail.end_pc != report.fault_pc:
        return IngestResult(
            label, False,
            f"replay ends at {tail.end_pc:#010x}, "
            f"not the faulting pc {report.fault_pc:#010x}",
        )
    if probe:
        with recorder.span("fault-probe"):
            reproduced = probe_fault(report, config, program, tail)
        if not reproduced:
            return IngestResult(
                label, False,
                f"fault does not reproduce at {report.fault_pc:#010x}",
            )
    with recorder.span("signature"):
        signature = signature_from_tail(report, tail, race_pcs=race_pcs)
    return ValidatedReport(
        label=label,
        blob=blob,
        observed_at=observed_at,
        signature=signature,
        fault_kind=report.fault_kind,
        program_name=report.program_name,
        # The *validated* window: instructions the chain actually
        # replayed (an ungrounded prefix would overstate it).
        instructions=tail.instructions,
        route_key=route_digest(
            report.program_name, report.fault_kind, report.fault_pc
        ),
    )


def _validate_threads(
    report, config, program, tail_depth, recorder=None,
) -> "tuple[ReplayedTail, tuple[int, ...]]":
    """Chain-replay every thread with grounded logs; returns the
    faulting thread's tail plus the inferred race evidence.

    The slim block-compiled replay (:func:`replay_all_threads` with
    ``slim=True``) replays each thread's grounded chain, decodes every
    MRL, maps the entries onto replay indices (rejecting out-of-range
    entries), and cross-checks constraint feasibility — an infeasible
    (cyclic) constraint system, a corrupt FLL/MRL payload, or a chain
    that diverges from the binary all raise into the caller's
    rejection path, naming the offending thread.  The faulting thread
    replays first and in full; every other thread records only the
    accesses at the addresses feeding the crash (identical race
    evidence, pinned by ``tests/test_fleet_mt_validation.py``).
    """
    from repro.obs import NULL_RECORDER
    from repro.replay.races import ReportLogs, replay_all_threads

    if recorder is None:
        recorder = NULL_RECORDER
    logs = ReportLogs(report, grounded=True)
    threads = logs.threads()
    faulting = report.faulting_tid
    if faulting not in threads:
        raise ReplayDivergence(
            f"no replayable chain for faulting thread {faulting} "
            f"(threads with logs: {report.thread_ids or 'none'})"
        )
    mt = replay_all_threads(
        logs, {tid: program for tid in threads}, config, slim=True,
        tail_depth=max(tail_depth, 1), faulting_tid=faulting,
        evidence_window=RACE_EVIDENCE_WINDOW, spans=recorder,
    )
    thread = mt.traced[faulting]
    tail = ReplayedTail(
        tail_pcs=tuple(thread.tail_pcs[-max(tail_depth, 1):]),
        instructions=thread.instructions,
        end_pc=thread.end_pc,
        intervals=thread.intervals,
        end_regs=thread.end_regs,
        memory=thread.memory,
        last_fll=report.replay_chain(faulting)[-1],
    )
    from repro.analysis.static.lockset import cached_race_candidates

    with recorder.span("race-inference"):
        candidates = cached_race_candidates(program)
        evidence = race_evidence(mt, faulting, candidates=candidates)
    return tail, evidence


def race_evidence(
    mt,
    faulting_tid: int,
    window: int = RACE_EVIDENCE_WINDOW,
    max_reports: int = 64,
    candidates=None,
) -> "tuple[int, ...]":
    """PCs of remote stores racing with the accesses feeding the crash.

    The relevance anchor is the set of addresses the faulting thread
    *loaded* within its last *window* replayed instructions — the
    pointer/operand loads feeding the faulting access.  A data race on
    one of those addresses whose store side belongs to another thread
    is the schedule-stable identity of a racy crash: the store PC stays
    put while the manifestation site moves with the interleaving.
    Returns ``()`` for race-free reports (the signature then keys on
    the fault site exactly as for single-thread reports).

    *candidates* is the static lockset pruning set
    (:func:`repro.analysis.static.lockset.cached_race_candidates`);
    pairs it proved non-racing are skipped inside
    :func:`~repro.replay.races.infer_races` without changing which
    races are reported.
    """
    from repro.replay.races import infer_races

    thread = mt.traced[faulting_tid]
    cutoff = thread.instructions - window
    relevant = set()
    # Accesses are (index, addr, value, is_load[, pc]) — the traced
    # path records 4-tuples, the slim path 5-tuples with embedded PCs.
    for entry in reversed(thread.accesses):
        if entry[0] < cutoff:
            break  # accesses are in execution order
        if entry[3]:
            relevant.add(entry[1])
    if not relevant:
        return ()
    races = infer_races(mt, sync=[], max_reports=max_reports,
                        addrs=relevant, candidates=candidates)
    pcs = set()
    for race in races:
        for side, kind in zip((race.first, race.second), race.kinds):
            if kind == "store" and side[0] != faulting_tid:
                pcs.add(side[2])
    return tuple(sorted(pcs))


def probe_fault(report, config, program, tail) -> bool:
    """Re-execute the faulting instruction against the replayed state
    the validation replay already produced."""
    replayer = Replayer(program, config)
    fault = replayer.probe_fault(
        tail.last_fll, tail.memory, tail.end_pc, tail.end_regs,
        mapped_pages=report.mapped_pages,
    )
    return fault is not None and fault.kind == report.fault_kind


# -- process-pool plumbing ---------------------------------------------------

@dataclass(frozen=True)
class ResolverSpec:
    """Picklable recipe for building a program resolver in a worker.

    ``sources`` maps resolver names to BN32 *source text* (read in the
    parent, assembled in the worker — source strings pickle cheaply and
    carry no interpreter state); ``include_bug_suite`` additionally
    resolves Table-1 bug names, which is how fleet-sim traffic runs
    unattended.
    """

    sources: tuple = field(default_factory=tuple)  # ((name, source), ...)
    include_bug_suite: bool = True

    def build(self) -> ProgramResolver:
        """Assemble the spec into an actual resolver (worker side)."""
        from repro.arch.assembler import assemble

        extra: dict[str, Program] = {}
        for name, source in self.sources:
            program = assemble(source, name=name)
            extra[name] = program
            extra[name.rsplit("/", 1)[-1]] = program
        if self.include_bug_suite:
            from repro.forensics.autopsy import bug_suite_resolver

            return bug_suite_resolver(extra)
        return extra.get

    @classmethod
    def from_paths(cls, paths, include_bug_suite: bool = True
                   ) -> "ResolverSpec":
        """Spec from ``--source`` file paths (read here, assembled in
        the worker)."""
        sources = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                sources.append((str(path), handle.read()))
        return cls(sources=tuple(sources),
                   include_bug_suite=include_bug_suite)


_WORKER_RESOLVER: "ProgramResolver | None" = None


def pool_initializer(spec: ResolverSpec) -> None:
    """``ProcessPoolExecutor`` initializer: build the worker's resolver
    once, so every validation reuses the assembled (and replay-compiled)
    programs."""
    global _WORKER_RESOLVER
    _WORKER_RESOLVER = spec.build()


def pool_validate(
    label: str,
    blob: bytes,
    observed_at: "int | None",
    tail_depth: int = DEFAULT_TAIL_DEPTH,
    probe: bool = True,
) -> "ValidatedReport | IngestResult":
    """Module-level work function (picklable by reference) run on pool
    workers; requires :func:`pool_initializer`."""
    if _WORKER_RESOLVER is None:  # pragma: no cover - misconfiguration
        raise RuntimeError("validation worker used without pool_initializer")
    return validate_report(label, blob, observed_at, _WORKER_RESOLVER,
                           tail_depth=tail_depth, probe=probe)


def validate_many(
    items: "list[tuple[str, bytes, int | None]]",
    resolver: ProgramResolver,
    tail_depth: int = DEFAULT_TAIL_DEPTH,
    probe: bool = True,
) -> "list[ValidatedReport | IngestResult]":
    """Validate a chunk of ``(label, blob, observed_at)`` items.

    Chunking amortizes the per-call executor/IPC handoff that would
    otherwise rival the validation itself at high upload rates; the
    verdicts are exactly item-wise :func:`validate_report`.
    """
    return [
        validate_report(label, blob, observed_at, resolver,
                        tail_depth=tail_depth, probe=probe)
        for label, blob, observed_at in items
    ]


def pool_validate_many(
    items: "list[tuple[str, bytes, int | None]]",
    tail_depth: int = DEFAULT_TAIL_DEPTH,
    probe: bool = True,
) -> "list[ValidatedReport | IngestResult]":
    """Chunked :func:`pool_validate` (one IPC round-trip per chunk)."""
    if _WORKER_RESOLVER is None:  # pragma: no cover - misconfiguration
        raise RuntimeError("validation worker used without pool_initializer")
    return validate_many(items, _WORKER_RESOLVER,
                         tail_depth=tail_depth, probe=probe)


def pool_validate_many_observed(
    items: "list[tuple[str, bytes, int | None]]",
    tail_depth: int = DEFAULT_TAIL_DEPTH,
    probe: bool = True,
) -> "tuple[list[ValidatedReport | IngestResult], dict]":
    """:func:`pool_validate_many` plus the worker's metrics delta.

    The worker's process-local registry accumulated stage histograms
    and replay counters while validating this chunk; ``take_delta``
    snapshots *and resets* them, so shipping the delta back with the
    verdicts hands the parent exactly this chunk's metrics once.  The
    service merges deltas additively — order doesn't matter.

    A forked worker inherits the parent's registry *contents* (anything
    the parent recorded before the pool spawned); merging those back
    would double-count them, so the first thing a chunk does is discard
    whatever the registry already holds.  Between chunks the registry
    is empty (the trailing ``take_delta`` zeroed it), so the discard is
    a no-op everywhere except right after the fork.
    """
    REGISTRY.take_delta()
    results = pool_validate_many(items, tail_depth=tail_depth, probe=probe)
    return results, REGISTRY.take_delta()
