"""Pure crash-report validation: decode → replay → fault probe.

The single validation implementation shared by the batch CLI pipeline
(:class:`~repro.fleet.ingest.IngestPipeline`) and the live ingestion
service (:mod:`repro.fleet.service`): one report blob in, one verdict
out, **no side effects** — no store writes, no shared mutable state.
That purity is what lets the service fan validation out across a
process pool while the batch path runs it inline, with test-pinned
identical outcomes (``tests/test_fleet_ingest.py``).

The module also carries the process-pool plumbing: a picklable
:class:`ResolverSpec` describing how a worker process should build its
program resolver (assembled programs are not picklable-cheap, source
text is), a pool initializer, and a module-level work function —
everything a ``ProcessPoolExecutor`` needs to run validation in a
separate interpreter.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.arch.program import Program
from repro.common.errors import ReproError
from repro.fleet.signature import (
    DEFAULT_TAIL_DEPTH,
    CrashSignature,
    replay_tail,
    signature_from_tail,
)
from repro.replay.replayer import Replayer
from repro.tracing.serialize import load_crash_report

#: Everything a hostile/corrupt blob can legitimately raise while being
#: decoded: our own error hierarchy, zlib/struct framing errors, and
#: field-validation errors from reconstructing the recorder config.
DECODE_ERRORS = (ReproError, zlib.error, struct.error, ValueError, KeyError)

ProgramResolver = Callable[[str], "Program | None"]


@dataclass
class IngestResult:
    """Outcome of ingesting one report."""

    label: str
    accepted: bool
    reason: str                        # "ok" or the rejection reason
    signature: CrashSignature | None = None
    entry: object | None = None        # StoredEntry once committed
    instructions_replayed: int = 0

    @property
    def digest(self) -> str | None:
        """Signature digest, when validation got that far."""
        return self.signature.digest if self.signature else None


@dataclass
class ValidatedReport:
    """A report that survived validation, ready to commit."""

    label: str
    blob: bytes
    observed_at: int | None
    signature: CrashSignature
    fault_kind: str
    program_name: str
    instructions: int    # validated replay window = instructions replayed


def validate_report(
    label: str,
    blob: bytes,
    observed_at: "int | None",
    resolver: ProgramResolver,
    tail_depth: int = DEFAULT_TAIL_DEPTH,
    probe: bool = True,
) -> "ValidatedReport | IngestResult":
    """Validate one crash-report blob; pure function of its inputs.

    Returns a :class:`ValidatedReport` on success or a rejecting
    :class:`IngestResult` naming the reason.  The pipeline: deserialize
    the blob, resolve the program binary it names, replay the faulting
    thread's whole resident log chain (compiled-dispatch replay), check
    it ends on the recorded faulting PC, and optionally re-execute the
    faulting instruction against the replayed state to confirm the
    fault reproduces.
    """
    try:
        report, config = load_crash_report(blob)
    except DECODE_ERRORS as error:
        return IngestResult(label, False, f"decode: {error}")
    program = resolver(report.program_name)
    if program is None:
        return IngestResult(
            label, False, f"unknown program {report.program_name!r}"
        )
    try:
        tail = replay_tail(report, config, program, tail_depth)
    except DECODE_ERRORS as error:
        return IngestResult(label, False, f"replay: {error}")
    last_fll = tail.last_fll
    if last_fll.fault_pc is None:
        # The faulting thread's final resident checkpoint never
        # recorded a fault point: the fault interval was stripped or
        # the report was tampered with.  Accepting it would skip
        # every fault check below.
        return IngestResult(
            label, False,
            "final checkpoint records no fault point "
            "(fault interval missing from the chain)",
        )
    if last_fll.fault_pc != report.fault_pc:
        return IngestResult(
            label, False,
            f"fault pc mismatch: log says {last_fll.fault_pc:#010x}, "
            f"report says {report.fault_pc:#010x}",
        )
    if tail.end_pc != report.fault_pc:
        return IngestResult(
            label, False,
            f"replay ends at {tail.end_pc:#010x}, "
            f"not the faulting pc {report.fault_pc:#010x}",
        )
    if probe and not probe_fault(report, config, program, tail):
        return IngestResult(
            label, False,
            f"fault does not reproduce at {report.fault_pc:#010x}",
        )
    return ValidatedReport(
        label=label,
        blob=blob,
        observed_at=observed_at,
        signature=signature_from_tail(report, tail),
        fault_kind=report.fault_kind,
        program_name=report.program_name,
        # The *validated* window: instructions the chain actually
        # replayed (an ungrounded prefix would overstate it).
        instructions=tail.instructions,
    )


def probe_fault(report, config, program, tail) -> bool:
    """Re-execute the faulting instruction against the replayed state
    the validation replay already produced."""
    replayer = Replayer(program, config)
    fault = replayer.probe_fault(
        tail.last_fll, tail.memory, tail.end_pc, tail.end_regs,
        mapped_pages=report.mapped_pages,
    )
    return fault is not None and fault.kind == report.fault_kind


# -- process-pool plumbing ---------------------------------------------------

@dataclass(frozen=True)
class ResolverSpec:
    """Picklable recipe for building a program resolver in a worker.

    ``sources`` maps resolver names to BN32 *source text* (read in the
    parent, assembled in the worker — source strings pickle cheaply and
    carry no interpreter state); ``include_bug_suite`` additionally
    resolves Table-1 bug names, which is how fleet-sim traffic runs
    unattended.
    """

    sources: tuple = field(default_factory=tuple)  # ((name, source), ...)
    include_bug_suite: bool = True

    def build(self) -> ProgramResolver:
        """Assemble the spec into an actual resolver (worker side)."""
        from repro.arch.assembler import assemble

        extra: dict[str, Program] = {}
        for name, source in self.sources:
            program = assemble(source, name=name)
            extra[name] = program
            extra[name.rsplit("/", 1)[-1]] = program
        if self.include_bug_suite:
            from repro.forensics.autopsy import bug_suite_resolver

            return bug_suite_resolver(extra)
        return extra.get

    @classmethod
    def from_paths(cls, paths, include_bug_suite: bool = True
                   ) -> "ResolverSpec":
        """Spec from ``--source`` file paths (read here, assembled in
        the worker)."""
        sources = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                sources.append((str(path), handle.read()))
        return cls(sources=tuple(sources),
                   include_bug_suite=include_bug_suite)


_WORKER_RESOLVER: "ProgramResolver | None" = None


def pool_initializer(spec: ResolverSpec) -> None:
    """``ProcessPoolExecutor`` initializer: build the worker's resolver
    once, so every validation reuses the assembled (and replay-compiled)
    programs."""
    global _WORKER_RESOLVER
    _WORKER_RESOLVER = spec.build()


def pool_validate(
    label: str,
    blob: bytes,
    observed_at: "int | None",
    tail_depth: int = DEFAULT_TAIL_DEPTH,
    probe: bool = True,
) -> "ValidatedReport | IngestResult":
    """Module-level work function (picklable by reference) run on pool
    workers; requires :func:`pool_initializer`."""
    if _WORKER_RESOLVER is None:  # pragma: no cover - misconfiguration
        raise RuntimeError("validation worker used without pool_initializer")
    return validate_report(label, blob, observed_at, _WORKER_RESOLVER,
                           tail_depth=tail_depth, probe=probe)


def validate_many(
    items: "list[tuple[str, bytes, int | None]]",
    resolver: ProgramResolver,
    tail_depth: int = DEFAULT_TAIL_DEPTH,
    probe: bool = True,
) -> "list[ValidatedReport | IngestResult]":
    """Validate a chunk of ``(label, blob, observed_at)`` items.

    Chunking amortizes the per-call executor/IPC handoff that would
    otherwise rival the validation itself at high upload rates; the
    verdicts are exactly item-wise :func:`validate_report`.
    """
    return [
        validate_report(label, blob, observed_at, resolver,
                        tail_depth=tail_depth, probe=probe)
        for label, blob, observed_at in items
    ]


def pool_validate_many(
    items: "list[tuple[str, bytes, int | None]]",
    tail_depth: int = DEFAULT_TAIL_DEPTH,
    probe: bool = True,
) -> "list[ValidatedReport | IngestResult]":
    """Chunked :func:`pool_validate` (one IPC round-trip per chunk)."""
    if _WORKER_RESOLVER is None:  # pragma: no cover - misconfiguration
        raise RuntimeError("validation worker used without pool_initializer")
    return validate_many(items, _WORKER_RESOLVER,
                         tail_depth=tail_depth, probe=probe)
