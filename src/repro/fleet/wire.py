"""Length-prefixed wire protocol shared by ``bugnet serve`` and its
clients (``bugnet load-sim``, the test harnesses).

One frame carries one message::

    u32 total_length (big-endian, excludes itself)
    u32 header_length
    header_length bytes of UTF-8 JSON   # {"op": "upload", ...}
    body bytes                           # the crash-report blob, if any

JSON headers keep the protocol debuggable and extensible; the binary
body rides beside them so report blobs are never base64-inflated.
Frames are bounded (``max_frame``) so a hostile length prefix cannot
balloon memory — the reader rejects oversized frames *before*
allocating.

The server also answers plain ``GET /stats`` and ``GET /healthz`` HTTP
requests on the same port (the first bytes of a connection
disambiguate), so operators can curl a running service without a
client.
"""

from __future__ import annotations

import asyncio
import json
import struct

_U32 = struct.Struct(">I")

#: Default ceiling for one frame (header + body).  Crash reports are
#: compressed logs of bounded replay windows — far below this.
MAX_FRAME = 32 * 1024 * 1024

#: Wire protocol version, carried in every frame header as ``"v"``.
#: A frame without the key is version 1 (the pre-versioning format —
#: identical on the wire).  A receiver that sees a *newer* version
#: answers with a structured ``unsupported-version`` rejection instead
#: of guessing at fields it does not know; see :func:`version_error`.
PROTOCOL_VERSION = 1


class FrameError(Exception):
    """Malformed or oversized frame."""


def frame_version(header: dict) -> int:
    """The protocol version a received frame claims (missing key = 1)."""
    version = header.get("v", 1)
    if not isinstance(version, int) or version < 1:
        raise FrameError(f"bad protocol version {version!r}")
    return version


def version_error(header: dict) -> "dict | None":
    """Structured rejection for a newer-than-supported frame, else None.

    Servers call this before dispatching on ``op``: a frame from a
    newer client may carry fields with semantics this build does not
    implement, and half-understanding them is worse than an explicit
    refusal the client can surface to its operator.
    """
    try:
        version = frame_version(header)
    except FrameError as error:
        return {"status": "error", "reason": "malformed frame",
                "detail": str(error)}
    if version > PROTOCOL_VERSION:
        return {
            "status": "error",
            "reason": "unsupported-version",
            "detail": (f"frame is protocol v{version}, this node "
                       f"speaks up to v{PROTOCOL_VERSION}"),
            "max_supported": PROTOCOL_VERSION,
        }
    return None


def header_epoch(header: dict) -> "int | None":
    """The cluster-topology epoch a frame claims, or ``None``.

    Distinct from the *protocol* version ``"v"``: the protocol version
    gates frame semantics, the epoch gates ring placement.  Plain
    clients never send one (uploads are epoch-free — the receiving
    node routes them under its own topology); cluster nodes stamp
    every peer-to-peer op so a stale ring is caught before it can
    mis-route (see :func:`stale_epoch_error`).
    """
    epoch = header.get("epoch")
    if isinstance(epoch, int) and epoch >= 1:
        return epoch
    return None


def stale_epoch_error(epoch: int, spec: "dict | None" = None) -> dict:
    """The structured refresh-me/refresh-you response for an epoch
    mismatch.

    Sent by whichever side holds the *newer* view knowledge: a node
    that receives an older-epoch frame answers with this (including
    its spec, so the sender can adopt it in one round-trip); a node
    that receives a *newer*-epoch frame also answers with this (its
    own, older epoch and no spec — the sender then pushes a
    ``spec-update``).  Either way the op is refused: serving it under
    mismatched rings would silently mis-route.
    """
    response = {"status": "error", "reason": "stale-epoch", "epoch": epoch}
    if spec is not None:
        response["spec"] = spec
    return response


def is_stale_epoch(response: "dict | None") -> bool:
    """Whether a peer response is the stale-epoch refusal."""
    return (isinstance(response, dict)
            and response.get("status") == "error"
            and response.get("reason") == "stale-epoch")


def encode_frame(header: dict, body: bytes = b"") -> bytes:
    """Serialize one frame (stamping the protocol version)."""
    if "v" not in header:
        header = {"v": PROTOCOL_VERSION, **header}
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    total = 4 + len(header_bytes) + len(body)
    return b"".join((
        _U32.pack(total), _U32.pack(len(header_bytes)), header_bytes, body,
    ))


def decode_payload(payload: bytes) -> "tuple[dict, bytes]":
    """Split a frame payload (everything after the total-length prefix)
    into its JSON header and binary body."""
    if len(payload) < 4:
        raise FrameError("frame too short for a header length")
    (header_length,) = _U32.unpack_from(payload)
    if 4 + header_length > len(payload):
        raise FrameError("header length exceeds frame")
    try:
        header = json.loads(payload[4: 4 + header_length].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise FrameError(f"bad frame header: {error}") from error
    if not isinstance(header, dict):
        raise FrameError("frame header must be a JSON object")
    return header, payload[4 + header_length:]


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME,
    prefix: "bytes | None" = None,
    on_bytes=None,
) -> "tuple[dict, bytes] | None":
    """Read one frame; returns ``None`` on clean EOF before a frame.

    *prefix* supplies the 4 length bytes when the caller already
    consumed them (the server peeks them to route HTTP vs native
    connections).  *on_bytes* (if given) receives the frame's full
    wire size — how the service meters per-connection traffic."""
    if prefix is None:
        try:
            prefix = await reader.readexactly(4)
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise FrameError("connection closed mid-frame") from error
    (total,) = _U32.unpack(prefix)
    if total > max_frame:
        raise FrameError(f"frame of {total} bytes exceeds limit {max_frame}")
    if total < 4:
        raise FrameError("frame too short for a header length")
    try:
        payload = await reader.readexactly(total)
    except asyncio.IncompleteReadError as error:
        raise FrameError("connection closed mid-frame") from error
    if on_bytes is not None:
        on_bytes(4 + total)
    return decode_payload(payload)


async def write_frame(
    writer: asyncio.StreamWriter, header: dict, body: bytes = b"",
    on_bytes=None,
) -> None:
    """Write one frame and flush it."""
    data = encode_frame(header, body)
    if on_bytes is not None:
        on_bytes(len(data))
    writer.write(data)
    await writer.drain()
