"""Replay forensics: the automated analyses replay makes possible.

The recorder (``repro.tracing``) captures execution; the replayer
(``repro.replay``) reproduces it; the fleet subsystem (``repro.fleet``)
triages floods of reports into ranked buckets.  This package closes the
loop from "crash reports in" to "root causes out":

* :mod:`repro.forensics.ddg` — dynamic dependence graph (register,
  memory, and control edges) plus the shared per-address access index,
  all built in a single replay pass over the FLL chain,
* :mod:`repro.forensics.slicing` — backward dynamic slices from any
  (position, register | address | node) criterion, in particular from
  the faulting access,
* :mod:`repro.forensics.provenance` — def-use chains answering "where
  did this value come from", ending at an FLL first-load, an initial
  register, or a kernel boundary,
* :mod:`repro.forensics.autopsy` — the unattended pipeline: replay a
  triage bucket's representative report, slice from the fault, classify
  a verdict (``bugnet autopsy``).
"""

from repro.forensics.autopsy import (
    Autopsy,
    BucketAutopsy,
    autopsy_store,
    bug_suite_resolver,
    perform_autopsy,
)
from repro.forensics.ddg import DDG, AccessIndex, build_ddg
from repro.forensics.provenance import (
    ProvenanceStep,
    defining_store,
    render_provenance,
    value_provenance,
)
from repro.forensics.slicing import (
    Slice,
    SliceCriterion,
    SliceOrigin,
    backward_slice,
    slice_from_fault,
)

__all__ = [
    "DDG",
    "AccessIndex",
    "build_ddg",
    "Slice",
    "SliceCriterion",
    "SliceOrigin",
    "backward_slice",
    "slice_from_fault",
    "ProvenanceStep",
    "value_provenance",
    "defining_store",
    "render_provenance",
    "Autopsy",
    "BucketAutopsy",
    "perform_autopsy",
    "autopsy_store",
    "bug_suite_resolver",
]
