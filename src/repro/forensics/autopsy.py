"""Automated fleet autopsies: replay → slice → verdict, unattended.

The paper's payoff is not replay for its own sake but the debugging
automation replay enables (§7): from a crash, walk the dynamic
dependences backwards and point at the defect.  An *autopsy* does that
for one crash report without a human in the loop:

1. replay the faulting thread's grounded log chain once, building the
   dynamic dependence graph (:mod:`repro.forensics.ddg`),
2. compute the backward slice from the faulting access
   (:mod:`repro.forensics.slicing`),
3. walk the faulting operand's provenance chain to the *culprit* — the
   store that planted the bad value, or the window boundary it crossed,
4. classify a verdict and, for multithreaded reports, check whether the
   culprit address is touched by an inferred data race
   (:mod:`repro.replay.races`).

:func:`autopsy_store` runs the pipeline over a whole fleet store's
triage buckets (one representative report per bucket, the ingest
worker-pool discipline: analysis fans out, output order stays
deterministic), which is what ``bugnet autopsy --store`` and the CI
smoke job drive.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.arch.program import Program
from repro.common.config import BugNetConfig
from repro.common.errors import ReproError
from repro.forensics.ddg import DDG, reg_uses
from repro.forensics.provenance import (
    ProvenanceStep,
    defining_store,
    render_provenance,
    value_provenance,
)
from repro.forensics.slicing import (
    ORIGIN_CONSTANT,
    ORIGIN_FIRST_LOAD,
    ORIGIN_REMOTE_STORE,
    ORIGIN_UNLOGGED_MEMORY,
    Slice,
    slice_from_fault,
)
from repro.system.fault import CrashReport

# -- verdict taxonomy (see DESIGN.md §7) -----------------------------------

#: A store wrote 0 into the word the crash later dereferenced.
VERDICT_NULL_POINTER = "null-pointer-store"
#: A store wrote a non-pointer value into a dereferenced word.
VERDICT_CORRUPTED_POINTER = "corrupted-pointer-store"
#: A store corrupted a code pointer / return address (fetch fault).
VERDICT_CODE_POINTER = "corrupted-code-pointer"
#: The bad value entered the window through an FLL first-load: the
#: defect predates the replayable window (or lives in another thread).
VERDICT_UNINITIALIZED = "uninitialized-first-load"
#: The bad value was already in a register when the window opened, or
#: was materialized by a kernel/syscall boundary.
VERDICT_PRE_WINDOW = "pre-window-origin"
#: The faulting operand is constant (r0/immediate-only lineage).
VERDICT_CONSTANT = "constant-operand"
#: Arithmetic fault: the offending operand's definition is the culprit.
VERDICT_ARITHMETIC = "arithmetic-operand"
#: The bad address was computed, not loaded: an overflow-prone
#: arithmetic op on the lineage produced a wild access (the paper's
#: python audioop class).
VERDICT_WILD_ARITHMETIC = "wild-address-arithmetic"
#: The bad value was planted by another thread's store, racing with the
#: faulting thread's accesses (culprit located via MRL race inference).
VERDICT_RACE_REMOTE = "race-adjacent-remote-store"
#: Another thread's store planted the value but no race was inferred
#: (properly synchronized, or sync edges unavailable).
VERDICT_REMOTE_STORE = "cross-thread-store"
#: Nothing replayable to analyze.
VERDICT_NO_WINDOW = "no-replayable-window"

ALL_VERDICTS = frozenset({
    VERDICT_NULL_POINTER, VERDICT_CORRUPTED_POINTER, VERDICT_CODE_POINTER,
    VERDICT_UNINITIALIZED, VERDICT_PRE_WINDOW, VERDICT_CONSTANT,
    VERDICT_ARITHMETIC, VERDICT_WILD_ARITHMETIC, VERDICT_RACE_REMOTE,
    VERDICT_REMOTE_STORE, VERDICT_NO_WINDOW,
})

#: Ops whose wraparound/shift-out makes a computed address wild.
_OVERFLOW_OPS = frozenset({"mul", "sll", "sllv", "sub"})


@dataclass
class Autopsy:
    """The root-cause report for one crash."""

    program_name: str
    fault_kind: str
    fault_pc: int
    fault_line: int
    verdict: str
    window: int = 0
    culprit_index: int | None = None
    culprit_pc: int | None = None
    culprit_line: int | None = None
    culprit_value: int | None = None
    culprit_addr: int | None = None
    origin: str = ""
    slice_size: int = 0
    slice_pcs: tuple[int, ...] = ()
    slice_lines: tuple[int, ...] = ()
    provenance: list[ProvenanceStep] = field(default_factory=list)
    race_adjacent: bool = False
    races: tuple[str, ...] = ()
    #: Whether every dynamic race above lies in the static lockset
    #: candidate set (None: race-free report or static analysis
    #: unavailable).  False is loud — a dynamically observed race the
    #: static analysis proved impossible means the analysis (or the
    #: logs) is wrong, and the escapes are listed for inspection.
    static_confirmed: bool | None = None
    static_escapes: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """The ``bugnet autopsy --json`` shape."""
        return {
            "program": self.program_name,
            "fault_kind": self.fault_kind,
            "fault_pc": self.fault_pc,
            "fault_line": self.fault_line,
            "verdict": self.verdict,
            "window": self.window,
            "culprit": None if self.culprit_pc is None else {
                "index": self.culprit_index,
                "pc": self.culprit_pc,
                "line": self.culprit_line,
                "value": self.culprit_value,
                "addr": self.culprit_addr,
            },
            "origin": self.origin,
            "slice_size": self.slice_size,
            "slice_lines": sorted(self.slice_lines),
            "race_adjacent": self.race_adjacent,
            "races": list(self.races),
            "static_confirmed": self.static_confirmed,
            "static_escapes": list(self.static_escapes),
        }

    def render(self) -> str:
        """Human-readable root-cause report."""
        lines = [
            f"autopsy: {self.program_name} — {self.fault_kind} fault at "
            f"pc={self.fault_pc:#010x} (line {self.fault_line})",
            f"  verdict : {self.verdict}"
            + (" [race-adjacent]" if self.race_adjacent else ""),
        ]
        if self.culprit_pc is not None:
            wrote = ("" if self.culprit_value is None
                     else f"wrote {self.culprit_value:#x} ")
            lines.append(
                f"  culprit : store at pc={self.culprit_pc:#010x} "
                f"(line {self.culprit_line}) {wrote}"
                f"to {self.culprit_addr:#010x} "
                f"[instruction {self.culprit_index} of {self.window}]"
            )
        if self.origin:
            lines.append(f"  origin  : {self.origin}")
        lines.append(
            f"  slice   : {self.slice_size} of {self.window} window "
            f"instructions over {len(self.slice_lines)} source line(s)"
        )
        if self.provenance:
            lines.append("  lineage :")
            lines.append(render_provenance(self.provenance))
        for race in self.races:
            lines.append(f"  race    : {race}")
        if self.static_confirmed is True:
            lines.append("  static  : all races lie in the lockset "
                         "candidate set")
        elif self.static_confirmed is False:
            lines.append("  static  : ANALYSIS BUG — dynamic race(s) "
                         "outside the static candidate set:")
            for escape in self.static_escapes:
                lines.append(f"            {escape}")
        return "\n".join(lines)


def _primary_fault_reg(program: Program, ddg: DDG, fault_pc: int,
                       fault_kind: str) -> tuple[int | None, int]:
    """(register to chase, observation index) for the faulting operand.

    Memory faults chase the base register (`rs` holds the dereferenced
    pointer), arithmetic faults the divisor (`rt`), instruction faults
    the target register of the final committed jump.
    """
    ins = program.fetch(fault_pc)
    end = len(ddg)
    if fault_kind == "instruction" or ins is None:
        if not end:
            return None, 0
        last = ddg.events[end - 1]
        last_ins = program.fetch(last.pc)
        if last_ins is not None and last_ins.op in ("jr", "jalr"):
            return (last_ins.rs or None), end - 1
        # A fall-through into garbage: no register computed the target.
        return None, end - 1
    if fault_kind == "arithmetic":
        return (ins.rt or None), end
    candidates = reg_uses(ins)
    if ins.op in ("lw", "sw"):
        return (ins.rs or None), end
    return (candidates[0] if candidates else None), end


def _infer_report_races(report: CrashReport, config: BugNetConfig,
                        program: Program, max_reports: int = 32):
    """Races inferred over every thread's logs in the report.

    Runs the compiled traced replay (``fast=True``) — bit-identical
    race output to the reference interpreter, at fleet-batch speed.
    ``LookupError`` joins ``ReproError`` in the guard: corrupt
    dictionary-encoded FLL payloads surface as bare lookup failures,
    and an autopsy must degrade to "no race evidence", never crash
    (ingest-time validation rejects such reports up front, but stores
    written by older builds can still hold them).
    """
    from repro.replay.races import ReportLogs, infer_races, replay_all_threads

    try:
        replay = replay_all_threads(
            ReportLogs(report),
            {tid: program for tid in report.thread_ids},
            config,
            fast=True,
        )
        # Deliberately UNPRUNED (no static candidates): the autopsy
        # cross-checks the dynamic races against the static set below,
        # which only means something if the dynamic side is independent.
        return infer_races(replay, sync=[], max_reports=max_reports)
    except (ReproError, LookupError):
        return []


def _static_cross_check(program: Program, races) -> tuple[bool | None,
                                                          tuple[str, ...]]:
    """Check dynamic races against the static lockset candidate set.

    Returns ``(confirmed, escapes)``: every race whose PC pair the
    static analysis *proved* non-racing is an escape — evidence the
    analysis (or the logs) is wrong, rendered loudly in the autopsy.
    Pairs with PCs the analysis never classified are conservatively
    fine.  ``(None, ())`` when no candidate set is available.
    """
    from repro.analysis.static.lockset import cached_race_candidates

    candidates = cached_race_candidates(program)
    if candidates is None:
        return None, ()
    escapes = tuple(
        str(race) for race in races
        if not candidates.may_race(race.first[2], race.second[2])
    )
    return not escapes, escapes


def _remote_store_side(races, addr: int, local_tid: int):
    """(tid, index, pc) of a racing *store* to *addr* by another thread."""
    for race in races:
        if race.addr != addr:
            continue
        for side, kind in zip((race.first, race.second), race.kinds):
            if kind == "store" and side[0] != local_tid:
                return side
    return None


def _classify(fault_kind: str, culprit: ProvenanceStep | None,
              steps: list[ProvenanceStep]) -> tuple[str, str]:
    """(verdict, origin description) from the provenance walk."""
    origin_step = next((step for step in steps if step.kind == "origin"),
                       None)
    origin_text = (origin_step.origin.describe()
                   if origin_step is not None and origin_step.origin
                   else "")
    if culprit is not None:
        if fault_kind == "instruction":
            return VERDICT_CODE_POINTER, origin_text
        if fault_kind == "arithmetic":
            return VERDICT_ARITHMETIC, origin_text
        if culprit.value == 0:
            return VERDICT_NULL_POINTER, origin_text
        return VERDICT_CORRUPTED_POINTER, origin_text
    if origin_step is not None and origin_step.origin is not None:
        kind = origin_step.origin.kind
        if kind in (ORIGIN_FIRST_LOAD, ORIGIN_UNLOGGED_MEMORY):
            return VERDICT_UNINITIALIZED, origin_text
        if any(step.kind == "def" and step.op in _OVERFLOW_OPS
               for step in steps):
            return VERDICT_WILD_ARITHMETIC, origin_text
        if kind == ORIGIN_CONSTANT:
            return VERDICT_CONSTANT, origin_text
        return VERDICT_PRE_WINDOW, origin_text
    if fault_kind == "arithmetic":
        return VERDICT_ARITHMETIC, origin_text
    return VERDICT_CONSTANT, origin_text


def perform_autopsy(
    report: CrashReport,
    config: BugNetConfig,
    program: Program,
    races: bool = True,
    ddg: DDG | None = None,
) -> Autopsy:
    """Root-cause one crash report (one replay pass, then graph work)."""
    tid = report.faulting_tid
    flls = report.replay_chain(tid)
    if not flls:
        return Autopsy(
            program_name=report.program_name,
            fault_kind=report.fault_kind,
            fault_pc=report.fault_pc,
            fault_line=report.fault_source_line,
            verdict=VERDICT_NO_WINDOW,
        )
    if ddg is None:
        ddg = DDG.build(program, config, flls)
    fault_slice: Slice = slice_from_fault(
        ddg, program, report.fault_pc, report.fault_kind)
    reg, position = _primary_fault_reg(
        program, ddg, report.fault_pc, report.fault_kind)
    if reg is not None:
        steps = value_provenance(ddg, index=position, reg=reg)
    else:
        steps = []
    culprit = defining_store(steps)
    verdict, origin_text = _classify(report.fault_kind, culprit, steps)

    # Value planted by another thread?  The provenance terminal says so
    # outright for remote-store origins; a first-load origin *may* also
    # be remote data (a word this thread never wrote locally) — race
    # inference decides below.
    terminal = next((step.origin for step in steps
                     if step.kind == "origin" and step.origin is not None),
                    None)
    remote_addr = None
    if (culprit is None and terminal is not None
            and terminal.addr is not None):
        # Only when no local culprit exists: a remote terminal further
        # up a local-culprit chain describes the culprit's *input*, not
        # the faulting value itself.
        if terminal.kind == ORIGIN_REMOTE_STORE:
            remote_addr = terminal.addr
            verdict = VERDICT_REMOTE_STORE
        elif terminal.kind == ORIGIN_FIRST_LOAD:
            remote_addr = terminal.addr   # candidate, pending race check

    race_strings: tuple[str, ...] = ()
    race_adjacent = False
    remote_culprit = None
    static_confirmed: bool | None = None
    static_escapes: tuple[str, ...] = ()
    if races and len(report.thread_ids) > 1:
        watch_addr = (culprit.addr if culprit is not None else remote_addr)
        inferred = _infer_report_races(report, config, program)
        relevant = [race for race in inferred
                    if watch_addr is not None and race.addr == watch_addr]
        race_strings = tuple(str(race) for race in relevant)
        race_adjacent = bool(relevant)
        if relevant:
            static_confirmed, static_escapes = _static_cross_check(
                program, relevant)
        if culprit is None and remote_addr is not None:
            remote_culprit = _remote_store_side(
                inferred, remote_addr, report.faulting_tid)
            if remote_culprit is not None:
                verdict = VERDICT_RACE_REMOTE

    result = Autopsy(
        program_name=report.program_name,
        fault_kind=report.fault_kind,
        fault_pc=report.fault_pc,
        fault_line=report.fault_source_line,
        verdict=verdict,
        window=len(ddg),
        origin=origin_text,
        slice_size=len(fault_slice),
        slice_pcs=tuple(sorted(fault_slice.pcs(ddg))),
        slice_lines=tuple(sorted(fault_slice.source_lines(ddg))),
        provenance=steps,
        race_adjacent=race_adjacent,
        races=race_strings,
        static_confirmed=static_confirmed,
        static_escapes=static_escapes,
    )
    if culprit is not None:
        result.culprit_index = culprit.index
        result.culprit_pc = culprit.pc
        result.culprit_line = culprit.line
        result.culprit_value = culprit.value
        result.culprit_addr = culprit.addr
    elif remote_culprit is not None:
        # The racing store another thread executed: located by the MRL
        # race inference, indexed in that thread's replay stream.
        tid, index, pc = remote_culprit
        result.culprit_index = index
        result.culprit_pc = pc
        result.culprit_line = program.source_line_of(pc)
        result.culprit_addr = remote_addr
    return result


# -- fleet batch -----------------------------------------------------------

ProgramResolver = Callable[[str], "Program | None"]


@dataclass
class BucketAutopsy:
    """One triage bucket joined with its autopsy (or a resolution error)."""

    digest: str
    program_name: str
    count: int
    replay_window: int
    autopsy: Autopsy | None = None
    error: str = ""

    def to_dict(self) -> dict:
        payload = {
            "signature": self.digest,
            "program": self.program_name,
            "count": self.count,
            "replay_window": self.replay_window,
        }
        if self.autopsy is not None:
            payload["autopsy"] = self.autopsy.to_dict()
        if self.error:
            payload["error"] = self.error
        return payload


def bug_suite_resolver(extra: "dict[str, Program] | None" = None,
                       ) -> ProgramResolver:
    """Resolve program names against the Table-1 bug suite (plus extras).

    Fleet-sim traffic names programs by bug name (``bc-1.06`` …); the
    suite's sources are part of the repository, so whole-fleet autopsies
    run unattended with no ``--binary`` flags.  Assembled programs are
    cached per name.
    """
    from repro.workloads.bugs import BUGS_BY_NAME

    cache: dict[str, Program] = dict(extra or {})

    def resolve(name: str) -> "Program | None":
        if name in cache:
            return cache[name]
        bug = BUGS_BY_NAME.get(name)
        if bug is None:
            return None
        cache[name] = bug.program()
        return cache[name]

    return resolve


def autopsy_store(
    store,
    resolver: ProgramResolver,
    workers: int = 1,
    limit: int | None = None,
    races: bool = True,
) -> list[BucketAutopsy]:
    """Autopsy every triage bucket's representative report.

    Analysis (replay + graph construction) is side-effect-free, so a
    batch fans out across *workers* threads exactly like ingest-time
    validation; results come back in triage rank order regardless of
    worker scheduling.
    """
    from repro.fleet.triage import build_buckets

    buckets = build_buckets(store)
    if limit is not None:
        buckets = buckets[:limit]

    def analyze(bucket) -> BucketAutopsy:
        outcome = BucketAutopsy(
            digest=bucket.digest,
            program_name=bucket.program_name,
            count=bucket.count,
            replay_window=bucket.representative.replay_window,
        )
        try:
            report, config = store.load(bucket.representative)
        except ReproError as error:
            outcome.error = f"load: {error}"
            return outcome
        program = resolver(report.program_name)
        if program is None:
            outcome.error = f"unknown program {report.program_name!r}"
            return outcome
        try:
            outcome.autopsy = perform_autopsy(
                report, config, program, races=races)
        except (ReproError, LookupError) as error:
            # LookupError: corrupt dictionary-encoded logs in a store
            # written before ingest-time thread validation; one bad
            # bucket must not kill the whole unattended batch.
            outcome.error = f"analysis: {error}"
        return outcome

    if workers <= 1 or len(buckets) <= 1:
        return [analyze(bucket) for bucket in buckets]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(analyze, buckets))
