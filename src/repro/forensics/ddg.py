"""Dynamic dependence graphs over a replayed window (one replay pass).

The replayed instruction stream is the raw material every automated
analysis needs: which instruction defined the register this one reads,
which store produced the value this load observed, which branch decided
that this instruction ran at all.  :func:`build_ddg` derives all three
edge kinds — register def-use, memory def-use, and (conservative)
dynamic control dependence — in a **single replay pass** over the FLL
chain; every later query (slices, provenance walks, debugger lookups)
is pure graph traversal with no re-replay.

Node identity is the global instruction index within the window (the
same indexing :class:`~repro.replay.debugger.ReplayDebugger` uses for
``position``).  Dependences that leave the window terminate in explicit
*origins* rather than nodes:

* ``initial register`` — the value was in the register file when the
  window opened (the first FLL header),
* ``interval header`` — the register was re-materialized by a later
  FLL header with a value replay did not produce, i.e. a kernel/syscall
  effect at that interval boundary (syscalls replay as NOPs; their
  register results come back through the next header),
* ``first load`` — the value entered through an FLL first-load record,
* ``unlogged memory`` — replay-simulated memory with no in-window store
  (state carried across intervals of the same chain).

Control dependence is the *last dynamic decision* approximation: each
node depends on the most recent conditional branch or indirect jump
before it.  That over-approximates (transitively it pulls in every
prior decision) but never misses a decision that could have kept the
node from executing — the direction backward slicing needs to stay
sound (see ``slicing.py``).

The :class:`AccessIndex` built alongside is shared with the debugger:
per-address access and store timelines, so ``memory_at`` /
``last_writer`` / ``access_history`` are binary searches instead of
O(window) scans per query.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.arch.isa import BRANCH_OPS, I_OPS, JR_OPS, R_OPS, Instruction
from repro.arch.program import Program
from repro.common.config import BugNetConfig
from repro.replay.replayer import IntervalReplay, ReplayEvent, Replayer
from repro.tracing.fll import FLL

#: Dynamic decisions: ops whose outcome picks the successor instruction
#: based on data (unconditional j/jal are static and decide nothing).
DECISION_OPS = frozenset(BRANCH_OPS) | frozenset(JR_OPS)

#: Registers the kernel reads on a syscall (v0 number, a0-a3 arguments).
_SYSCALL_USES = (2, 4, 5, 6, 7)


def reg_uses(ins: Instruction) -> tuple[int, ...]:
    """Register numbers *ins* reads (r0 excluded — it is constant zero)."""
    op = ins.op
    if op in R_OPS or op in BRANCH_OPS:
        regs = (ins.rs, ins.rt)
    elif op in I_OPS or op == "lw" or op in JR_OPS:
        regs = (ins.rs,)
    elif op == "sw":
        regs = (ins.rs, ins.rt)
    elif op == "syscall":
        regs = _SYSCALL_USES
    else:  # lui, j, jal, nop, break
        regs = ()
    return tuple(reg for reg in regs if reg)


def reg_def(ins: Instruction) -> int | None:
    """The register *ins* writes, or None (r0 writes are discarded)."""
    op = ins.op
    if op == "jal":
        return 31
    if op in R_OPS or op in I_OPS or op in ("lui", "lw", "jalr"):
        return ins.rd or None
    return None


class AccessIndex:
    """Per-address access/store timelines over a window, built once.

    Every query the debugger used to answer with a linear scan over the
    event list becomes a ``bisect`` over these per-address lists.
    Addresses are the word-aligned addresses the events carry.
    """

    __slots__ = ("_accesses", "_access_positions", "_stores")

    def __init__(self) -> None:
        # addr -> list of (index, kind, value), in execution order
        self._accesses: dict[int, list[tuple[int, str, int]]] = {}
        # addr -> list of index (parallel, for bisect)
        self._access_positions: dict[int, list[int]] = {}
        # addr -> list of store index
        self._stores: dict[int, list[int]] = {}

    @classmethod
    def from_events(cls, events: list[ReplayEvent]) -> "AccessIndex":
        """Index every load/store in *events* (one O(window) pass)."""
        index = cls()
        accesses = index._accesses
        positions = index._access_positions
        stores = index._stores
        for position, event in enumerate(events):
            if event.store is not None:
                addr, value = event.store
                kind = "store"
                stores.setdefault(addr, []).append(position)
            elif event.load is not None:
                addr, value = event.load
                kind = "load"
            else:
                continue
            accesses.setdefault(addr, []).append((position, kind, value))
            positions.setdefault(addr, []).append(position)
        return index

    def accesses(self, addr: int) -> list[tuple[int, str, int]]:
        """Every (index, kind, value) access to *addr*, oldest first."""
        return list(self._accesses.get(addr, ()))

    def value_at(self, addr: int, position: int) -> int | None:
        """The last value *addr* held strictly before *position* (the
        most recent access reveals it: stores write it, loads observe
        it); None when untouched so far."""
        timeline = self._access_positions.get(addr)
        if not timeline:
            return None
        slot = bisect_left(timeline, position) - 1
        if slot < 0:
            return None
        return self._accesses[addr][slot][2]

    def last_store_before(self, addr: int, position: int) -> int | None:
        """Index of the most recent store to *addr* before *position*."""
        stores = self._stores.get(addr)
        if not stores:
            return None
        slot = bisect_left(stores, position) - 1
        if slot < 0:
            return None
        return stores[slot]

    def first_store_at_or_after(self, addr: int, position: int) -> int | None:
        """Index of the first store to *addr* at or after *position*."""
        stores = self._stores.get(addr)
        if not stores:
            return None
        slot = bisect_right(stores, position - 1)
        if slot >= len(stores):
            return None
        return stores[slot]

    def addresses(self) -> list[int]:
        """Every address touched in the window."""
        return sorted(self._accesses)


@dataclass(frozen=True)
class NodeView:
    """One DDG node, unpacked for inspection/rendering."""

    index: int
    pc: int
    op: str
    event: ReplayEvent
    uses: tuple[tuple[int, int], ...]   # (reg, dependence encoding)
    defines: int | None
    mem_dep: int | None
    ctrl_dep: int | None


class DDG:
    """The dynamic dependence graph of one replayed window.

    Register dependences are encoded per use as an int: a value ``>= 0``
    is the defining node's index; a negative value ``-(k+1)`` means the
    register was materialized by interval *k*'s FLL header (``k == 0``
    is the initial register file; ``k > 0`` is a kernel/syscall effect
    at that interval boundary).
    """

    HEADER = -1  # encoding base: -(interval + 1)

    __slots__ = (
        "program", "events", "index", "interval_starts", "end_regs",
        "fault_pc", "_reg_uses", "_mem_dep", "_ctrl_dep", "_def_reg",
        "_reg_timeline", "replay_intervals", "remote_loads",
    )

    def __init__(self, program: Program) -> None:
        self.program = program
        self.events: list[ReplayEvent] = []
        self.index = AccessIndex()
        self.interval_starts: list[int] = []
        self.end_regs: tuple[int, ...] = ()
        self.fault_pc: int | None = None
        self._reg_uses: list[tuple[tuple[int, int], ...]] = []
        self._mem_dep: list[int | None] = []
        self._ctrl_dep: list[int | None] = []
        self._def_reg: list[int | None] = []
        # reg -> [(position, encoding)] — node defs and header resets,
        # positions ascending; a reset at interval k is recorded at the
        # interval's first index with encoding -(k+1).
        self._reg_timeline: dict[int, list[tuple[int, int]]] = {}
        # Loads whose logged value disagrees with the last local store:
        # the true def is a store on another thread (the FLL delivered
        # the post-invalidation value).  Their mem_dep is None.
        self.remote_loads: set[int] = set()
        self.replay_intervals = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, program: Program, config: BugNetConfig,
              flls: list[FLL]) -> "DDG":
        """Replay *flls* once and derive every dependence edge."""
        replays = Replayer(program, config).replay(flls)
        return cls.from_replays(program, flls, replays)

    @classmethod
    def from_replays(cls, program: Program, flls: list[FLL],
                     replays: list[IntervalReplay],
                     index: "AccessIndex | None" = None) -> "DDG":
        """Build from an already-performed replay (no extra pass).

        *index* adopts a prebuilt :class:`AccessIndex` over the same
        event stream (the debugger passes its own) instead of
        re-deriving an identical one.
        """
        ddg = cls(program)
        if index is not None:
            ddg.index = index
        ddg._ingest(flls, replays, populate_index=index is None)
        return ddg

    def _ingest(self, flls: list[FLL],
                replays: list[IntervalReplay],
                populate_index: bool = True) -> None:
        events = self.events
        reg_uses_out = self._reg_uses
        mem_dep = self._mem_dep
        ctrl_dep = self._ctrl_dep
        def_reg = self._def_reg
        timeline = self._reg_timeline
        fetch = self.program.fetch
        accesses = self.index._accesses
        access_positions = self.index._access_positions
        stores = self.index._stores

        # Current defining encoding per register (avoid bisect on build).
        current: list[int] = [self.HEADER] * 32
        last_store: dict[int, int] = {}
        last_decision: int | None = None
        position = 0
        self.replay_intervals = len(replays)
        for number, replay in enumerate(replays):
            self.interval_starts.append(position)
            if number > 0:
                # Registers whose header value replay did not produce
                # were changed outside the replayed stream (a syscall
                # the kernel serviced at this boundary): kill their defs.
                header = flls[number].header.regs
                previous = replays[number - 1].end_regs
                encoding = -(number + 1)
                for reg in range(1, 32):
                    if header[reg] != previous[reg]:
                        current[reg] = encoding
                        timeline.setdefault(reg, []).append(
                            (position, encoding))
            for event in replay.events:
                events.append(event)
                ins = fetch(event.pc)
                uses = tuple(
                    (reg, current[reg]) for reg in reg_uses(ins)
                )
                reg_uses_out.append(uses)
                if event.store is not None:
                    addr, value = event.store
                    if populate_index:
                        stores.setdefault(addr, []).append(position)
                        accesses.setdefault(addr, []).append(
                            (position, "store", value))
                        access_positions.setdefault(addr, []).append(position)
                    last_store[addr] = position
                    mem_dep.append(None)
                elif event.load is not None:
                    addr, value = event.load
                    if populate_index:
                        accesses.setdefault(addr, []).append(
                            (position, "load", value))
                        access_positions.setdefault(addr, []).append(position)
                    dep = last_store.get(addr)
                    if dep is not None and events[dep].store[1] != value:
                        # The observed value is not what the last local
                        # store wrote: the FLL interposed (directly, or
                        # via replay memory warmed by an earlier logged
                        # load) a value a *remote* thread's store
                        # produced.  The local edge would be a lie.
                        self.remote_loads.add(position)
                        dep = None
                    mem_dep.append(dep)
                else:
                    mem_dep.append(None)
                ctrl_dep.append(last_decision)
                defined = reg_def(ins)
                def_reg.append(defined)
                if defined is not None:
                    current[defined] = position
                    timeline.setdefault(defined, []).append(
                        (position, position))
                if ins.op in DECISION_OPS:
                    last_decision = position
                position += 1
        if replays:
            self.end_regs = replays[-1].end_regs
        if flls:
            self.fault_pc = flls[-1].fault_pc

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def node(self, index: int) -> NodeView:
        """Unpack node *index* for inspection."""
        event = self.events[index]
        return NodeView(
            index=index,
            pc=event.pc,
            op=event.op,
            event=event,
            uses=self._reg_uses[index],
            defines=self._def_reg[index],
            mem_dep=self._mem_dep[index],
            ctrl_dep=self._ctrl_dep[index],
        )

    def uses_of(self, index: int) -> tuple[tuple[int, int], ...]:
        """(register, dependence encoding) pairs node *index* reads."""
        return self._reg_uses[index]

    def mem_dep_of(self, index: int) -> int | None:
        """Defining store of the load at *index* (None: from log/memory)."""
        return self._mem_dep[index]

    def ctrl_dep_of(self, index: int) -> int | None:
        """The decision (branch/indirect jump) governing node *index*."""
        return self._ctrl_dep[index]

    def def_of(self, index: int) -> int | None:
        """Register node *index* defines."""
        return self._def_reg[index]

    def reg_def_before(self, reg: int, position: int) -> int:
        """Dependence encoding of *reg*'s value just before *position*.

        ``>= 0`` — defining node index; ``< 0`` — interval-header origin
        (``-(k+1)`` for interval *k*; ``-1`` is the initial register
        file).  Register 0 is always the initial (constant) origin.
        """
        if reg == 0:
            return self.HEADER
        timeline = self._reg_timeline.get(reg)
        if not timeline:
            return self.HEADER
        # A node def at p is visible to positions > p; a header reset at
        # an interval-start p is visible to p itself (it happens before
        # the node executes).  Header encodings are negative, node
        # encodings non-negative, so the key (position, -1) admits
        # exactly the resets at ``position`` and nothing defined by it.
        slot = bisect_right(timeline, (position, -1)) - 1
        if slot < 0:
            return self.HEADER
        return timeline[slot][1]

    def interval_of(self, index: int) -> int:
        """Interval number containing node *index*."""
        return bisect_right(self.interval_starts, index) - 1

    def was_first_load(self, index: int) -> bool:
        """True when the load at *index* consumed an FLL record."""
        return self.events[index].from_log


def build_ddg(program: Program, config: BugNetConfig,
              flls: list[FLL]) -> DDG:
    """Module-level convenience for :meth:`DDG.build`."""
    return DDG.build(program, config, flls)
