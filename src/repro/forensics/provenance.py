"""Value provenance: "where did this value come from?" as a def-use chain.

Where a slice answers *everything that could have influenced* a value,
provenance answers the narrower debugging question: the chain of defs
the value actually flowed through, walked backwards until it leaves the
window — at an FLL first-load, an initial register, an interval-header
(kernel) effect, or a constant.  It is what the debugger's ``why``
command prints and what the autopsy verdict classifier walks to find
the *culprit store* (the store that planted a bad pointer in memory).

At a multi-operand ALU node the chain follows the **most recently
defined** operand — in address arithmetic the stale base pointer was
set up long ago and the freshly computed (possibly corrupt) offset is
the interesting lineage — and records the operands it did not take so
nothing is silently dropped.  Dependences the chain skips are still in
the full backward slice; provenance trades completeness for a readable
chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.disasm import disassemble, symbol_map
from repro.arch.registers import reg_name
from repro.forensics.ddg import DDG
from repro.forensics.slicing import (
    ORIGIN_CONSTANT,
    SliceOrigin,
    _header_origin,
    _memory_origin,
    memory_def_at,
)

_MAX_STEPS = 64


@dataclass(frozen=True)
class ProvenanceStep:
    """One hop of a provenance chain."""

    kind: str               # "def" | "load" | "store" | "origin"
    index: int | None       # node index (None for origins)
    pc: int | None
    line: int | None
    text: str               # rendered explanation
    value: int | None = None
    addr: int | None = None
    op: str = ""            # the node's opcode ("" for origins)
    origin: SliceOrigin | None = None
    skipped: tuple[int, ...] = ()   # operand registers the chain did not follow

    def __str__(self) -> str:
        return self.text


def _describe_node(ddg: DDG, index: int) -> tuple[int, str]:
    event = ddg.events[index]
    ins = ddg.program.fetch(event.pc)
    line = ddg.program.source_line_of(event.pc)
    text = disassemble(ins, symbol_map(ddg.program)) if ins else "???"
    return line, text


def value_provenance(
    ddg: DDG,
    index: int | None = None,
    reg: int | None = None,
    addr: int | None = None,
    max_steps: int = _MAX_STEPS,
) -> list[ProvenanceStep]:
    """The def-use chain behind a register or memory value.

    *index* is the observation position (default: the window end); give
    either *reg* (register number) or *addr* (word address).  Returns
    the chain newest-first, ending in an ``origin`` step.
    """
    position = len(ddg) if index is None else index
    steps: list[ProvenanceStep] = []
    program = ddg.program

    def origin_step(origin: SliceOrigin) -> None:
        steps.append(ProvenanceStep(
            kind="origin", index=origin.index, pc=None, line=None,
            text=f"origin: {origin.describe()}", origin=origin,
        ))

    # Resolve the starting point to a node (or an immediate origin).
    node: int | None = None
    if reg is not None:
        encoding = ddg.reg_def_before(reg, position)
        if encoding < 0:
            origin_step(_header_origin(reg, encoding))
            return steps
        node = encoding
    elif addr is not None:
        addr &= ~3
        node, origin = memory_def_at(ddg, addr, position)
        if node is None:
            origin_step(origin)
            return steps
    else:
        raise ValueError("provenance needs a reg or an addr")

    while node is not None and len(steps) < max_steps:
        event = ddg.events[node]
        ins = program.fetch(event.pc)
        line, text = _describe_node(ddg, node)
        uses = ddg.uses_of(node)
        if event.store is not None:
            store_addr, value = event.store
            label = next((name for name, a in program.symbols.items()
                          if a == store_addr), None)
            where = f"{store_addr:#010x}" + (f" <{label}>" if label else "")
            steps.append(ProvenanceStep(
                kind="store", index=node, pc=event.pc, line=line,
                text=(f"[{node}] store {value:#x} -> {where} at "
                      f"pc={event.pc:#x} (line {line}): {text}"),
                value=value, addr=store_addr, op=event.op,
            ))
            # Continue with the stored value's lineage (the rt operand).
            follow_reg = ins.rt if ins is not None else 0
            follow = next(
                (encoding for use_reg, encoding in uses
                 if use_reg == follow_reg), None)
            skipped = tuple(r for r, _ in uses if r != follow_reg)
        elif event.load is not None:
            load_addr, value = event.load
            steps.append(ProvenanceStep(
                kind="load", index=node, pc=event.pc, line=line,
                text=(f"[{node}] loaded {value:#x} from {load_addr:#010x} "
                      f"at pc={event.pc:#x} (line {line}): {text}"),
                value=value, addr=load_addr, op=event.op,
            ))
            dep = ddg.mem_dep_of(node)
            if dep is None:
                origin_step(_memory_origin(ddg, load_addr, node, index=node))
                return steps
            node = dep
            continue
        else:
            defined = ddg.def_of(node)
            name = reg_name(defined) if defined is not None else "?"
            steps.append(ProvenanceStep(
                kind="def", index=node, pc=event.pc, line=line,
                text=(f"[{node}] {name} defined at pc={event.pc:#x} "
                      f"(line {line}): {text}"),
                op=event.op,
            ))
            # Follow the most recently defined operand.  A header reset
            # at interval k happened at that interval's first position
            # (just before the node there executed), so rank encodings
            # by their actual position in time, not by raw value.
            def recency(encoding: int) -> float:
                if encoding >= 0:
                    return float(encoding)
                return ddg.interval_starts[-encoding - 1] - 0.5

            follow = None
            follow_reg = 0
            skipped = ()
            if uses:
                follow_reg, follow = max(
                    uses, key=lambda use: recency(use[1]))
                skipped = tuple(r for r, _ in uses if r != follow_reg)
        # Shared tail for store/def: follow the chosen register encoding.
        if follow is None:
            origin_step(SliceOrigin(kind=ORIGIN_CONSTANT, index=node))
            return steps
        if follow < 0:
            origin_step(_header_origin(follow_reg, follow, index=node))
            return steps
        if skipped:
            import dataclasses

            steps[-1] = dataclasses.replace(steps[-1], skipped=skipped)
        node = follow
    return steps


def defining_store(steps: list[ProvenanceStep]) -> ProvenanceStep | None:
    """The first store on a provenance chain (the autopsy culprit)."""
    return next((step for step in steps if step.kind == "store"), None)


def render_provenance(steps: list[ProvenanceStep]) -> str:
    """Multi-line rendering for the debugger's ``why`` command."""
    if not steps:
        return "(no provenance: value never defined in this window)"
    return "\n".join(f"  {step.text}" for step in steps)
