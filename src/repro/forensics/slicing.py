"""Backward dynamic slicing over a :class:`~repro.forensics.ddg.DDG`.

A slice criterion names a value: a register as of some position, a
memory word as of some position, or a node itself (the instruction and
everything it consumed).  The backward slice is the set of window
instructions whose execution or produced values could have influenced
that value — computed by transitive closure over the DDG's register,
memory, and (optionally) control edges.  Because the DDG was built in
one replay pass, slicing is pure graph traversal: no re-replay per
query, whatever the criterion.

With ``control=True`` (the default) the slice follows each node's
dynamic decision chain.  The DDG's last-decision approximation makes
that closure a superset of true dynamic control dependence, which is
the direction that keeps slices *sound*: any store outside the slice
can have its value perturbed without changing the criterion value,
because (a) no data path reaches the criterion and (b) every decision
that shaped the executed path — and that store's chance to feed one —
is itself in the slice (property-tested by perturbed re-execution in
``tests/test_forensics_slice.py``).  ``control=False`` gives the tight
value-lineage slice provenance and verdict classification use.

The criterion for a crash comes from :func:`slice_from_fault`: the
faulting instruction never committed, so for memory/arithmetic faults
the slice starts from the registers it *would* have read at the window
end; for instruction-fetch faults (a jump into garbage) it starts from
the last committed instruction — the jump that computed the bad target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.program import Program
from repro.forensics.ddg import DDG, reg_uses

#: Origin kinds a slice can terminate in (values that entered the
#: window from outside it).
ORIGIN_INITIAL_REGISTER = "initial-register"
ORIGIN_INTERVAL_HEADER = "interval-header"
ORIGIN_FIRST_LOAD = "first-load"
ORIGIN_UNLOGGED_MEMORY = "unlogged-memory"
ORIGIN_REMOTE_STORE = "remote-store"
ORIGIN_CONSTANT = "constant"


@dataclass(frozen=True)
class SliceCriterion:
    """What to slice from.

    Exactly one of *reg*, *addr*, *node* should be set.  *index* is the
    position the value is observed at: the state **before** instruction
    ``index`` executes (``len(ddg)`` means the window end).  For *node*
    criteria, the node itself is included and *index* is ignored.
    """

    index: int
    reg: int | None = None
    addr: int | None = None
    node: int | None = None


@dataclass(frozen=True)
class SliceOrigin:
    """A terminal the slice reached: where a value entered the window."""

    kind: str                 # one of the ORIGIN_* constants
    reg: int | None = None    # for register origins
    addr: int | None = None   # for memory origins
    interval: int | None = None   # for interval-header origins
    index: int | None = None  # the node whose input terminated here

    def describe(self) -> str:
        """Human-readable rendering."""
        if self.kind == ORIGIN_INITIAL_REGISTER:
            return f"r{self.reg} as of the window start"
        if self.kind == ORIGIN_INTERVAL_HEADER:
            return (f"r{self.reg} materialized by interval "
                    f"{self.interval}'s header (kernel/syscall effect)")
        if self.kind == ORIGIN_FIRST_LOAD:
            return f"FLL first-load of {self.addr:#010x}"
        if self.kind == ORIGIN_UNLOGGED_MEMORY:
            return f"unlogged memory at {self.addr:#010x}"
        if self.kind == ORIGIN_REMOTE_STORE:
            return (f"store to {self.addr:#010x} by another thread "
                    f"(FLL-delivered value disagrees with the last "
                    f"local store)")
        return self.kind


@dataclass
class Slice:
    """A backward dynamic slice: window nodes plus terminal origins."""

    criteria: tuple[SliceCriterion, ...]
    nodes: frozenset[int]
    origins: tuple[SliceOrigin, ...]
    control: bool = True
    seeds: tuple[int, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, index: int) -> bool:
        return index in self.nodes

    def pcs(self, ddg: DDG) -> set[int]:
        """Static PCs the slice covers."""
        events = ddg.events
        return {events[index].pc for index in self.nodes}

    def source_lines(self, ddg: DDG) -> set[int]:
        """Source lines the slice covers."""
        program = ddg.program
        return {program.source_line_of(pc) for pc in self.pcs(ddg)}

    def contains_pc(self, ddg: DDG, pc: int) -> bool:
        """True when any dynamic instance of *pc* is in the slice."""
        return pc in self.pcs(ddg)


def _seed_from_criterion(
    ddg: DDG, criterion: SliceCriterion,
    seeds: list[int], origins: list[SliceOrigin],
) -> None:
    if criterion.node is not None:
        seeds.append(criterion.node)
        return
    if criterion.reg is not None:
        encoding = ddg.reg_def_before(criterion.reg, criterion.index)
        if encoding >= 0:
            seeds.append(encoding)
        else:
            origins.append(_header_origin(criterion.reg, encoding))
        return
    if criterion.addr is not None:
        node, origin = memory_def_at(ddg, criterion.addr, criterion.index)
        if node is not None:
            seeds.append(node)
        else:
            origins.append(origin)
        return
    raise ValueError("criterion names neither reg, addr, nor node")


def memory_def_at(ddg: DDG, addr: int, position: int,
                  ) -> "tuple[int | None, SliceOrigin | None]":
    """The defining store of *addr*'s value as of *position*.

    Returns ``(node, None)`` for an in-window store, or ``(None,
    origin)`` when the value entered from outside the window (first
    load, unlogged memory, or a remote thread's store).  The subtlety:
    the last *access* decides — a logged load newer than the last local
    store means the window's value was delivered by the log, not the
    store.
    """
    timeline = ddg.index._access_positions.get(addr)
    if not timeline:
        return None, _memory_origin(ddg, addr, position)
    from bisect import bisect_left

    slot = bisect_left(timeline, position) - 1
    if slot < 0:
        return None, _memory_origin(ddg, addr, position)
    last_access = timeline[slot]
    event = ddg.events[last_access]
    if event.store is not None:
        return last_access, None
    if last_access in ddg.remote_loads:
        return None, SliceOrigin(kind=ORIGIN_REMOTE_STORE, addr=addr,
                                 index=last_access)
    dep = ddg.mem_dep_of(last_access)
    if dep is not None:
        return dep, None
    return None, _memory_origin(ddg, addr, last_access, index=last_access)


def _header_origin(reg: int, encoding: int,
                   index: int | None = None) -> SliceOrigin:
    interval = -encoding - 1
    kind = (ORIGIN_INITIAL_REGISTER if interval == 0
            else ORIGIN_INTERVAL_HEADER)
    return SliceOrigin(kind=kind, reg=reg, interval=interval, index=index)


def _memory_origin(ddg: DDG, addr: int,
                   before: int, index: int | None = None) -> SliceOrigin:
    """Classify a memory value with no in-window defining store."""
    if index is not None and index in ddg.remote_loads:
        return SliceOrigin(kind=ORIGIN_REMOTE_STORE, addr=addr, index=index)
    for position, kind, _value in ddg.index.accesses(addr):
        if position > before:
            break
        if kind == "load" and ddg.was_first_load(position):
            return SliceOrigin(kind=ORIGIN_FIRST_LOAD, addr=addr,
                               index=index if index is not None else position)
    return SliceOrigin(kind=ORIGIN_UNLOGGED_MEMORY, addr=addr, index=index)


def backward_slice(
    ddg: DDG,
    criterion: "SliceCriterion | list[SliceCriterion]",
    control: bool = True,
) -> Slice:
    """Compute the backward dynamic slice of *criterion*.

    Accepts a single criterion or a list (the union slice — what
    :func:`slice_from_fault` uses for multi-operand faulting
    instructions).
    """
    criteria = (criterion if isinstance(criterion, (list, tuple))
                else [criterion])
    seeds: list[int] = []
    origins: list[SliceOrigin] = []
    for single in criteria:
        _seed_from_criterion(ddg, single, seeds, origins)

    visited: set[int] = set()
    stack = [seed for seed in seeds if seed not in visited]
    mem_dep = ddg._mem_dep
    ctrl_dep = ddg._ctrl_dep
    reg_uses_of = ddg._reg_uses
    events = ddg.events
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        for reg, encoding in reg_uses_of[node]:
            if encoding >= 0:
                if encoding not in visited:
                    stack.append(encoding)
            else:
                origins.append(_header_origin(reg, encoding, index=node))
        if events[node].load is not None:
            dep = mem_dep[node]
            if dep is not None:
                if dep not in visited:
                    stack.append(dep)
            else:
                origins.append(_memory_origin(
                    ddg, events[node].load[0], node, index=node))
        if control:
            decision = ctrl_dep[node]
            if decision is not None and decision not in visited:
                stack.append(decision)

    unique_origins = tuple(dict.fromkeys(origins))
    return Slice(
        criteria=tuple(criteria),
        nodes=frozenset(visited),
        origins=unique_origins,
        control=control,
        seeds=tuple(seeds),
    )


def fault_criteria(ddg: DDG, program: Program, fault_pc: int,
                   fault_kind: str) -> list[SliceCriterion]:
    """Criteria describing what the faulting instruction consumed.

    The faulting instruction never committed.  For memory/arithmetic
    faults its operand registers as of the window end are the criterion;
    for instruction-fetch faults (``fault_pc`` points into garbage) the
    criterion is the final committed instruction — the jump or branch
    that produced the bad target.
    """
    if not len(ddg):
        return []
    ins = program.fetch(fault_pc)
    if fault_kind == "instruction" or ins is None:
        last = len(ddg) - 1
        return [SliceCriterion(index=last, node=last)]
    end = len(ddg)
    criteria = [SliceCriterion(index=end, reg=reg)
                for reg in reg_uses(ins)]
    if not criteria:
        # The faulting access uses no register lineage at all (a
        # constant/r0-based address): slice from the last committed
        # instruction so the path that reached the fault is covered.
        last = len(ddg) - 1
        criteria = [SliceCriterion(index=last, node=last)]
    return criteria


def slice_from_fault(ddg: DDG, program: Program, fault_pc: int,
                     fault_kind: str, control: bool = True) -> Slice:
    """The backward slice from a crash (union over the fault's operands)."""
    return backward_slice(
        ddg, fault_criteria(ddg, program, fault_pc, fault_kind),
        control=control,
    )
