"""The full-system machine: cores, threads, coherence, recording.

:class:`~repro.mp.machine.Machine` interleaves instructions from every
core one at a time — a sequentially consistent memory model by
construction, matching the paper's assumption (Section 4.6.1) — and
wires the BugNet recorders into the data path.
"""

from repro.mp.machine import Machine, MachineResult

__all__ = ["Machine", "MachineResult"]
