"""The simulated machine: the paper's "baseline architecture plus BugNet".

One :class:`Machine` runs one process (one binary, one or more threads)
on ``num_cores`` cores.  Each global step executes exactly one
instruction on one core, which makes the memory model sequentially
consistent by construction.  Threads are pinned to cores
(``tid % num_cores``); a timer quantum preempts threads when several
share a core.

Recording follows the paper's scheme:

* a fresh checkpoint interval opens lazily before a thread's next user
  instruction whenever none is active;
* intervals close on reaching the maximum length, on every syscall
  (synchronous interrupt), on preemption/context switch, and on faults —
  where the faulting PC is recorded and a :class:`CrashReport` with all
  the process's logs is assembled (Section 4.8);
* DMA transfers invalidate cached blocks so delivered data re-logs on
  first use (Section 4.5);
* cross-core coherence replies append Memory Race Log entries
  (Section 4.6.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.arch.cpu import CPU
from repro.arch.loader import load_program
from repro.arch.memory import Memory
from repro.arch.program import Program
from repro.cache.coherence import Directory
from repro.cache.hierarchy import FirstLoadHierarchy
from repro.common.config import BugNetConfig, MachineConfig
from repro.common.errors import Fault
from repro.replay.validation import TraceCollector
from repro.system.devices import ConsoleDevice, InputDevice
from repro.system.dma import DMAEngine
from repro.system.fault import CrashReport, collect_crash_report
from repro.system.kernel import Kernel, Thread, ThreadState
from repro.tracing.backing import BusModel, LogStore
from repro.tracing.recorder import BugNetRecorder, TracedMemoryInterface


class _PlainInterface:
    """Uncached, unrecorded memory path (baseline runs, Table 1 windows)."""

    __slots__ = ("memory", "last_load", "last_store")

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        self.last_load = None
        self.last_store = None

    def load(self, addr: int) -> int:
        value = self.memory.load(addr)
        self.last_load = (addr, value)
        return value

    def store(self, addr: int, value: int) -> None:
        self.memory.store(addr, value)
        self.last_store = (addr, value & 0xFFFFFFFF)


@dataclass
class MachineResult:
    """Everything a run produced."""

    crash: CrashReport | None
    exit_codes: dict[int, int]
    console_text: str
    console_values: list[int]
    global_steps: int
    instructions: dict[int, int]
    log_store: LogStore | None
    timed_out: bool = False
    bus_models: list[BusModel] = field(default_factory=list)

    @property
    def crashed(self) -> bool:
        """True if the run ended in a fault."""
        return self.crash is not None


class Machine:
    """One simulated multiprocessor running one traced process."""

    def __init__(
        self,
        program: Program,
        config: MachineConfig | None = None,
        bugnet: BugNetConfig | None = None,
        record: bool = True,
        collect_traces: bool = False,
        trace_digest_only: bool = False,
        input_words: list[int] | None = None,
        dma_delay: int = 0,
        pid: int = 1,
        fast_path: bool = True,
    ) -> None:
        self.program = program
        self.config = config or MachineConfig()
        self.bugnet = bugnet or BugNetConfig()
        self.record = record
        self.collect_traces = collect_traces
        self.trace_digest_only = trace_digest_only
        self.pid = pid
        self.fast_path = fast_path

        self.memory = Memory()
        self.console = ConsoleDevice()
        self.input = InputDevice(input_words)
        self.global_steps = 0

        cores = self.config.num_cores
        self.directory = Directory() if cores > 1 else None
        self.hierarchies = [
            FirstLoadHierarchy(self.config.l1, self.config.l2, core_id=core)
            for core in range(cores)
        ]
        if self.directory is not None:
            for core, hierarchy in enumerate(self.hierarchies):
                self.directory.attach(core, hierarchy)
        self.bus_models = [
            BusModel(block_size=self.config.l1.block_size,
                     cb_bytes=self.bugnet.checkpoint_buffer_bytes)
            for _ in range(cores)
        ]
        self._bus_marks = [(0, 0) for _ in range(cores)]  # (fills, writebacks)

        self.dma = DMAEngine(
            memory=self.memory,
            directory=self.directory,
            hierarchies=self.hierarchies,
            block_shift=self.hierarchies[0].block_shift,
        )
        self.kernel = Kernel(
            memory=self.memory,
            console=self.console,
            input_device=self.input,
            dma=self.dma,
            dma_delay=dma_delay,
            pid=pid,
        )
        self.kernel.now = lambda: self.global_steps
        self.kernel.init_heap(64 * 1024)

        self.log_store = LogStore(self.bugnet) if record else None
        self.recorders: dict[int, BugNetRecorder] = {}
        self.collectors: dict[int, TraceCollector] = {}
        self._interfaces: dict[int, object] = {}
        self._core_current: list[Thread | None] = [None] * cores
        self._quantum_left: list[int] = [0] * cores
        self._rng = random.Random(self.config.interleave_seed)
        self.crash: CrashReport | None = None
        # Optional root-cause tracking for the bug studies (Table 1):
        # map of watched PCs; hits record (thread-local instruction count,
        # global step) of the most recent execution.
        self.watch_pcs: set[int] = set()
        self.pc_hits: dict[tuple[int, int], tuple[int, int]] = {}

    # -- process setup ------------------------------------------------------

    def spawn(self, entry: str = "main", args: tuple[int, ...] = ()) -> Thread:
        """Create a thread at label *entry*; a0 = tid, a1.. = *args*."""
        tid = len(self.kernel.threads)
        if tid >= self.bugnet.max_live_threads:
            raise ValueError("too many threads for the configured TID width")
        core = tid % self.config.num_cores
        if self.bugnet.bit_clear_period > 1 and tid >= self.config.num_cores:
            # The aggressive bit-preservation scheme keeps per-thread
            # state in the (per-core) cache arrays; sharing a core would
            # let one thread's bits suppress another thread's logging.
            raise ValueError(
                "bit_clear_period > 1 requires one thread per core"
            )
        sp = load_program(
            self.program, self.memory, thread_id=tid,
            stack_bytes=self.config.stack_bytes,
        )
        if self.record:
            recorder = BugNetRecorder(
                self.bugnet, self.hierarchies[core], self.log_store,
                pid=self.pid, tid=tid, clock=lambda: self.global_steps,
            )
            recorder.interval_listener = self._make_bus_listener(core)
            self.recorders[tid] = recorder
            interface = TracedMemoryInterface(
                self.memory, self.hierarchies[core], recorder,
                core_id=core, directory=self.directory,
                remote_state_of=self.remote_state_of,
            )
        else:
            interface = _PlainInterface(self.memory)
        self._interfaces[tid] = interface
        cpu = CPU(self.program, interface, thread_id=tid)
        cpu.pc = self.program.pc_of(entry) if entry != "main" else self.program.entry_pc
        cpu.regs["sp"] = sp
        cpu.regs["a0"] = tid
        for position, value in enumerate(args):
            cpu.regs[f"a{position + 1}"] = value
        thread = Thread(tid=tid, cpu=cpu, core=core)
        self.kernel.add_thread(thread)
        if self.collect_traces:
            self.collectors[tid] = TraceCollector(digest_only=self.trace_digest_only)
        return thread

    def _make_bus_listener(self, core: int):
        def listener(fll, mrl, reason) -> None:
            hierarchy = self.hierarchies[core]
            prev_fills, prev_wb = self._bus_marks[core]
            self.bus_models[core].account_window(
                instructions=max(fll.end_ic, 1),
                fills=hierarchy.memory_fills - prev_fills,
                writebacks=hierarchy.writebacks - prev_wb,
                log_bytes=fll.byte_size(self.bugnet) + mrl.byte_size(self.bugnet),
            )
            self._bus_marks[core] = (hierarchy.memory_fills, hierarchy.writebacks)
        return listener

    # -- coherence piggyback --------------------------------------------------

    def remote_state_of(self, core_id: int) -> tuple[int, int, int] | None:
        """(TID, CID, IC) registers of a remote core for reply piggybacks.

        Returns the state of the thread *currently resident* on the
        core, or ``None`` when no thread with an open interval is there
        — a descheduled thread's interval is closed, so piggybacking its
        final (CID, IC) would let MRL entries point at a closed (and
        eventually recycled) interval.
        """
        thread = self._core_current[core_id]
        if thread is None:
            return None
        recorder = self.recorders.get(thread.tid)
        if recorder is None or not recorder.active:
            return None
        return recorder.remote_state()

    # -- scheduling ----------------------------------------------------------

    def _pick_next(self, core: int) -> Thread | None:
        """Round-robin choice among READY threads pinned to *core*."""
        threads = self.kernel.threads
        current = self._core_current[core]
        start = (current.tid + 1) if current is not None else 0
        count = len(threads)
        for offset in range(count):
            thread = threads[(start + offset) % count]
            if thread.core == core and thread.state == ThreadState.READY:
                return thread
        return None

    def _schedule(self, core: int) -> Thread | None:
        """Ensure *core* has a running thread; returns it (or None)."""
        current = self._core_current[core]
        if current is not None and current.state == ThreadState.RUNNING:
            return current
        candidate = self._pick_next(core)
        if candidate is None:
            self._core_current[core] = None
            return None
        candidate.state = ThreadState.RUNNING
        self._core_current[core] = candidate
        self._quantum_left[core] = self.config.timer_interval
        return candidate

    def _deschedule(self, core: int, thread: Thread, new_state: ThreadState,
                    reason: str) -> None:
        """Take *thread* off the core, closing its interval."""
        if self.record:
            self.recorders[thread.tid].end_interval(reason)
        if thread.state == ThreadState.RUNNING:
            thread.state = new_state
        self._core_current[core] = None

    # -- execution -----------------------------------------------------------

    def run(self, max_instructions: int = 10_000_000) -> MachineResult:
        """Run until exit, crash, deadlock-free block drain, or the cap."""
        if not self.kernel.threads:
            self.spawn()
        timed_out = False
        cores = self.config.num_cores
        core_pointer = 0
        # Single-core regions with no timer and no trace collection can
        # run whole bursts of instructions without per-instruction
        # scheduling overhead; commits are batch-accounted afterwards
        # (note_commits), which the differential tests prove emits
        # bit-identical logs.
        burst_ok = (
            self.fast_path
            and cores == 1
            and self.config.timer_interval == 0
            and not self.collectors
        )
        while self.crash is None:
            live = self.kernel.live()
            if not live:
                break
            if self.global_steps >= max_instructions:
                timed_out = True
                break
            # Find the cores with runnable work, then pick one: rotating
            # round-robin by default, seeded-random for interleaving
            # studies.
            busy = []
            for offset in range(cores):
                core = (core_pointer + offset) % cores
                thread = self._schedule(core)
                if thread is not None:
                    busy.append((core, thread))
            core_pointer = (core_pointer + 1) % cores
            if busy:
                if self.config.interleave_seed:
                    chosen = busy[self._rng.randrange(len(busy))]
                else:
                    chosen = busy[0]
            else:
                chosen = None
            if chosen is None:
                # Every live thread is blocked: fast-forward to the next
                # DMA completion, or report a genuine deadlock.
                next_dma = self.dma.next_completion
                if next_dma is None:
                    blocked = [t.tid for t in live]
                    raise RuntimeError(f"deadlock: threads {blocked} blocked forever")
                self.global_steps = max(self.global_steps + 1, next_dma)
                self.dma.advance(self.global_steps)
                continue
            if burst_ok and not self.dma.pending_count:
                self._burst_thread(
                    *chosen, budget=max_instructions - self.global_steps
                )
            else:
                self._step_thread(*chosen)
            if self.dma.pending_count:
                self.dma.advance(self.global_steps)
        return self._result(timed_out)

    def _burst_thread(self, core: int, thread: Thread, budget: int) -> None:
        """Run *thread* for up to *budget* instructions without returning
        to the scheduler (single-core fast path).

        Stops at a syscall (every syscall requests an interval break), a
        state change, a fault, the end of the checkpoint interval, or
        the budget.  Equivalent to repeated :meth:`_step_thread` calls:
        per-instruction effects that still matter (global step count,
        watched PCs) are maintained in the loop; commit accounting —
        per-instruction in the slow path — is flushed once at the end
        via ``note_commits``, which cannot be observed earlier because a
        single-core burst generates no coherence piggybacks.
        """
        cpu = thread.cpu
        recorder = self.recorders.get(thread.tid)
        if recorder is not None:
            if not recorder.active:
                recorder.begin_interval(cpu.pc, cpu.regs.snapshot())
            budget = min(budget, self.bugnet.checkpoint_interval - recorder.ic)
        kernel = self.kernel
        watch = self.watch_pcs
        step = cpu.step
        steps = 0
        fault = None
        while steps < budget:
            pc_before = cpu.pc
            try:
                step()
            except Fault as caught:
                if caught.pc is None:
                    caught.pc = pc_before
                fault = caught
                break
            self.global_steps += 1
            steps += 1
            if watch and pc_before in watch:
                self.pc_hits[(thread.tid, pc_before)] = (
                    cpu.inst_count, self.global_steps
                )
            if kernel.interval_break_requested:
                break
            if thread.state != ThreadState.RUNNING:
                break
        if recorder is not None and steps:
            recorder.note_commits(steps)
        if fault is not None:
            self._on_fault(core, thread, fault)
            return
        if kernel.interval_break_requested:
            kernel.interval_break_requested = False
            if recorder is not None:
                recorder.end_interval("syscall")
        if thread.state != ThreadState.RUNNING:
            self._core_current[core] = None

    def _step_thread(self, core: int, thread: Thread) -> None:
        cpu = thread.cpu
        interface = self._interfaces[thread.tid]
        recorder = self.recorders.get(thread.tid)
        if recorder is not None and not recorder.active:
            recorder.begin_interval(cpu.pc, cpu.regs.snapshot())
        interface.last_load = None
        interface.last_store = None
        pc_before = cpu.pc
        try:
            ins = cpu.step()
        except Fault as fault:
            if fault.pc is None:
                fault.pc = pc_before
            self._on_fault(core, thread, fault)
            return
        self.global_steps += 1
        if self.watch_pcs and pc_before in self.watch_pcs:
            self.pc_hits[(thread.tid, pc_before)] = (cpu.inst_count, self.global_steps)
        collector = self.collectors.get(thread.tid)
        if collector is not None:
            collector.commit(pc_before, ins.op, interface.last_load,
                             interface.last_store)
        if recorder is not None:
            recorder.note_commit()
        if self.kernel.interval_break_requested:
            self.kernel.interval_break_requested = False
            if recorder is not None:
                recorder.end_interval("syscall")
        state = thread.state
        if state != ThreadState.RUNNING:
            # exit, block or yield: the syscall already closed the interval.
            self._core_current[core] = None
            return
        if self.config.timer_interval:
            self._quantum_left[core] -= 1
            if self._quantum_left[core] <= 0:
                self._deschedule(core, thread, ThreadState.READY, "interrupt")

    def _on_fault(self, core: int, thread: Thread, fault: Fault) -> None:
        """Section 4.8: record fault point, freeze process, collect logs."""
        self.kernel.handle_fault(thread, fault)
        if self.record:
            recorder = self.recorders[thread.tid]
            if not recorder.active:
                # Fault on the very first instruction of a not-yet-open
                # interval: open and immediately finalize so the fault
                # point is recorded.
                recorder.begin_interval(thread.cpu.pc, thread.cpu.regs.snapshot())
            recorder.end_interval("fault", fault_pc=fault.pc)
            for other in self.kernel.threads:
                if other.tid != thread.tid:
                    self.recorders[other.tid].end_interval("crash")
            self.crash = collect_crash_report(
                pid=self.pid,
                program=self.program,
                store=self.log_store,
                faulting_tid=thread.tid,
                fault=fault,
                mapped_pages=self.memory.mapped_pages,
                total_instructions={
                    t.tid: t.cpu.inst_count for t in self.kernel.threads
                },
            )
        else:
            self.crash = collect_crash_report(
                pid=self.pid,
                program=self.program,
                store=LogStore(self.bugnet),
                faulting_tid=thread.tid,
                fault=fault,
                mapped_pages=self.memory.mapped_pages,
                total_instructions={
                    t.tid: t.cpu.inst_count for t in self.kernel.threads
                },
            )
        self._core_current[core] = None

    def _result(self, timed_out: bool) -> MachineResult:
        if self.record:
            for thread in self.kernel.threads:
                self.recorders[thread.tid].end_interval("shutdown")
        return MachineResult(
            crash=self.crash,
            exit_codes={
                t.tid: t.exit_code for t in self.kernel.threads
                if t.state == ThreadState.EXITED
            },
            console_text=self.console.text,
            console_values=list(self.console.values),
            global_steps=self.global_steps,
            instructions={t.tid: t.cpu.inst_count for t in self.kernel.threads},
            log_store=self.log_store,
            timed_out=timed_out,
            bus_models=self.bus_models,
        )


def run_program(
    program: Program,
    threads: int = 1,
    entries: list[str] | None = None,
    **machine_kwargs,
) -> MachineResult:
    """Convenience wrapper: build a machine, spawn threads, run."""
    machine = Machine(program, **machine_kwargs)
    for index in range(threads):
        entry = entries[index] if entries else "main"
        machine.spawn(entry=entry)
    return machine.run()
