"""Fleet observability: metrics registry, Prometheus encoding, spans.

Dependency-free by design — the fleet service, the batch pipeline and
the replay engine all instrument through this package, and none of
them may grow a third-party requirement for it.  See DESIGN.md §11.

Layout:

* :mod:`repro.obs.metrics` — counters / gauges / histograms with
  labeled families; thread-safe; snapshots merge additively so
  process-pool validation workers can report back deltas.
* :mod:`repro.obs.prom` — Prometheus text exposition (0.0.4) encoder
  and the small parser `bugnet load-sim` uses to cross-check scrapes.
* :mod:`repro.obs.spans` — the span recorder timing named stages of
  the validate path (`bugnet profile` renders the breakdown).
* :mod:`repro.obs.jsonlog` — one-line-per-event structured logging
  for `bugnet serve --log-json`.
"""

from repro.obs.jsonlog import JsonEventLogger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    MetricError,
    MetricsRegistry,
)
from repro.obs.prom import encode_prometheus, parse_prometheus
from repro.obs.spans import NULL_RECORDER, Span, SpanRecorder

__all__ = [
    "DEFAULT_BUCKETS",
    "JsonEventLogger",
    "MetricError",
    "MetricsRegistry",
    "NULL_RECORDER",
    "REGISTRY",
    "Span",
    "SpanRecorder",
    "encode_prometheus",
    "parse_prometheus",
]
