"""One-line-per-event structured JSON logging for the fleet service.

``bugnet serve --log-json`` emits exactly one JSON object per line on
stdout: one per admission outcome (upload_id, label, outcome,
signature, per-stage timings), plus service lifecycle events
(``service-start``, ``drain``, ``service-stop``).  Lines are flushed
eagerly so a log shipper tailing the pipe sees events as they settle
and the drain line survives process exit.
"""

from __future__ import annotations

import json
import sys
import time


class JsonEventLogger:
    """Disabled by default; when disabled, ``event()`` is one check."""

    def __init__(self, enabled: bool = False, stream=None) -> None:
        self.enabled = enabled
        self._stream = stream

    def event(self, event: str, **fields) -> None:
        if not self.enabled:
            return
        record = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        stream = self._stream if self._stream is not None else sys.stdout
        print(
            json.dumps(record, separators=(",", ":"), sort_keys=False,
                       default=str),
            file=stream,
            flush=True,
        )
