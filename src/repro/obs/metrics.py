"""Dependency-free metrics registry (DESIGN.md §11).

Three instrument kinds — counters, gauges, histograms — grouped into
*labeled families*: one family per metric name, one child per label
value tuple.  All mutation goes through a single per-registry lock, so
instruments are safe to share across the service's event loop, its
commit executor threads and the store's writer threads.

Process-pool validation workers cannot share the registry, so the
snapshot model is additive: a worker calls :meth:`MetricsRegistry.
take_delta` after a chunk (snapshot counters + histograms, then reset
them) and ships the plain-dict delta back over the pool's pickle
channel; the service merges it with :meth:`MetricsRegistry.merge`.
Counter and histogram merges are bucket-wise sums, so merging is
associative and commutative — deltas may arrive in any order, batched
or not, and the totals agree (``tests/test_obs_metrics.py`` pins
this).  Gauges describe *this* process's state (queue depth, shard
occupancy); they are set at scrape time and excluded from deltas.

Naming scheme: every family is ``bugnet_<subsystem>_<what>[_unit]``
with Prometheus conventions — ``_total`` for counters, ``_seconds`` /
``_bytes`` unit suffixes, label names from a small fixed vocabulary
(``outcome``, ``stage``, ``shard``, ``direction``, ``result``) so
cardinality stays bounded.

The registry can be disabled (``REGISTRY.enabled = False`` or the
``BUGNET_OBS_DISABLED`` environment variable): every instrument call
then returns after one attribute check, which is what the
``obs_overhead`` benchmark guard measures the <5 % ingest overhead
against.
"""

from __future__ import annotations

import bisect
import os
import re
import threading
from contextlib import contextmanager
from time import perf_counter

#: Default histogram buckets, in seconds.  Wide enough to cover both a
#: sub-millisecond store flock and a multi-second MT validation.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


class MetricError(ValueError):
    """Invalid metric definition or an inconsistent redefinition."""


class _Family:
    """One named metric family; children are keyed by label values."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: "tuple[str, ...]",
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: dict = {}

    def labels(self, *values: str):
        """The child for one label-value tuple (created on first use)."""
        if len(values) != len(self.labelnames):
            raise MetricError(
                f"{self.name} expects {len(self.labelnames)} label(s) "
                f"{self.labelnames}, got {values!r}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._registry._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _make_child(self):
        raise NotImplementedError

    # -- snapshot plumbing -------------------------------------------------
    def _meta(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "labelnames": self.labelnames,
        }

    def _samples(self) -> dict:
        """Label tuple -> plain-data value; caller holds the lock."""
        return {key: child._value() for key, child in self._children.items()}


class _CounterChild:
    __slots__ = ("_registry", "count")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._registry = registry
        self.count = 0.0

    def inc(self, amount: float = 1.0) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        if amount < 0:
            raise MetricError("counters only go up")
        with registry._lock:
            self.count += amount

    def _value(self) -> float:
        return self.count


class Counter(_Family):
    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._registry)

    def inc(self, amount: float = 1.0) -> None:
        """Unlabeled convenience: ``family.inc()`` == ``labels().inc()``."""
        self.labels().inc(amount)


class _GaugeChild:
    __slots__ = ("_registry", "value")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._registry = registry
        self.value = 0.0

    def set(self, value: float) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        with registry._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        with registry._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _value(self) -> float:
        return self.value


class Gauge(_Family):
    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._registry)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)


class _HistogramChild:
    __slots__ = ("_registry", "_bounds", "counts", "sum")

    def __init__(
        self, registry: "MetricsRegistry", bounds: "tuple[float, ...]"
    ) -> None:
        self._registry = registry
        self._bounds = bounds
        # One slot per finite bucket plus the +Inf overflow slot.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0

    def observe(self, value: float) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        index = bisect.bisect_left(self._bounds, value)
        with registry._lock:
            self.counts[index] += 1
            self.sum += value

    @contextmanager
    def time(self):
        start = perf_counter()
        try:
            yield
        finally:
            self.observe(perf_counter() - start)

    def _value(self) -> dict:
        return {"counts": list(self.counts), "sum": self.sum}


class Histogram(_Family):
    kind = "histogram"

    def __init__(self, registry, name, help, labelnames, buckets) -> None:
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise MetricError(f"{name}: histogram needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"{name}: duplicate histogram buckets")
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._registry, self.buckets)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def time(self):
        return self.labels().time()

    def _meta(self) -> dict:
        meta = super()._meta()
        meta["buckets"] = self.buckets
        return meta


class MetricsRegistry:
    """A set of metric families; see the module docstring for the model."""

    def __init__(self, enabled: bool = True) -> None:
        self._lock = threading.RLock()
        self._families: "dict[str, _Family]" = {}
        self.enabled = enabled

    # -- family definition (idempotent) ------------------------------------
    def _define(self, factory, name: str, help: str, labelnames, **extra):
        if not _METRIC_NAME.match(name):
            raise MetricError(f"bad metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise MetricError(f"{name}: bad label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = factory(self, name, help, labelnames, **extra)
                self._families[name] = family
                return family
        if type(family) is not factory or family.labelnames != labelnames:
            raise MetricError(f"{name} redefined with a different shape")
        if extra.get("buckets") is not None and family.buckets != tuple(
            sorted(float(b) for b in extra["buckets"] if b != float("inf"))
        ):
            raise MetricError(f"{name} redefined with different buckets")
        return family

    def counter(self, name: str, help: str, labelnames=()) -> Counter:
        return self._define(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames=()) -> Gauge:
        return self._define(Gauge, name, help, labelnames)

    def histogram(
        self, name: str, help: str, labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._define(
            Histogram, name, help, labelnames, buckets=buckets
        )

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain picklable ``{name: {type, help, labelnames, samples}}``."""
        with self._lock:
            return {
                name: dict(family._meta(), samples=family._samples())
                for name, family in self._families.items()
            }

    def take_delta(self) -> dict:
        """Snapshot counters + histograms, then zero them.

        The returned delta holds everything recorded since the last
        ``take_delta`` and nothing twice; ship it to the parent and
        :meth:`merge` it there.  Gauges are per-process state, not
        flow, so they never travel in deltas.
        """
        with self._lock:
            delta = {}
            for name, family in self._families.items():
                if family.kind == "gauge":
                    continue
                samples = family._samples()
                if not samples:
                    continue
                delta[name] = dict(family._meta(), samples=samples)
                for child in family._children.values():
                    if family.kind == "histogram":
                        child.counts = [0] * len(child.counts)
                        child.sum = 0.0
                    else:
                        child.count = 0.0
            return delta

    def merge(self, delta: dict) -> None:
        """Additively fold a snapshot/delta from another process in."""
        for name, data in delta.items():
            kind = data["type"]
            labelnames = tuple(data["labelnames"])
            if kind == "counter":
                family = self.counter(name, data["help"], labelnames)
            elif kind == "gauge":
                family = self.gauge(name, data["help"], labelnames)
            elif kind == "histogram":
                family = self.histogram(
                    name, data["help"], labelnames, data["buckets"]
                )
            else:
                raise MetricError(f"{name}: unknown metric type {kind!r}")
            for key, value in data["samples"].items():
                child = family.labels(*key)
                with self._lock:
                    if kind == "histogram":
                        if len(value["counts"]) != len(child.counts):
                            raise MetricError(
                                f"{name}: bucket count mismatch in merge"
                            )
                        for index, count in enumerate(value["counts"]):
                            child.counts[index] += count
                        child.sum += value["sum"]
                    elif kind == "gauge":
                        child.value += value
                    else:
                        child.count += value

    def reset(self) -> None:
        """Drop every family.  Test isolation helper."""
        with self._lock:
            self._families.clear()

    def sample_value(self, name: str, labels: "tuple[str, ...]" = ()):
        """One sample's current value, or ``None`` — for tests/stats."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            child = family._children.get(tuple(labels))
            return None if child is None else child._value()


#: The process-global registry every subsystem instruments against.
#: Workers inherit a fresh copy post-fork/spawn; the service merges
#: their deltas back into its own copy of this registry.
REGISTRY = MetricsRegistry(
    enabled=not os.environ.get("BUGNET_OBS_DISABLED")
)
