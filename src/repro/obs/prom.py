"""Prometheus text exposition (format 0.0.4) encoder + scrape parser.

The encoder turns a :class:`~repro.obs.metrics.MetricsRegistry` (or a
snapshot of one) into the ``# HELP`` / ``# TYPE`` / sample-line text a
Prometheus server scrapes from ``GET /metrics``.  Histograms are
exported with *cumulative* bucket counts, the implicit ``+Inf``
bucket, and ``_sum`` / ``_count`` series, per the format spec.

The parser is deliberately small: enough to read our own exposition
back so ``bugnet load-sim`` can cross-check its client-side tallies
against the server's counters and the tests can assert round-trips.
"""

from __future__ import annotations

import re

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INF = float("inf")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == _INF:
        return "+Inf"
    if value == -_INF:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labelnames, values, extra="") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, values)
    ]
    if extra:
        parts.append(extra)
    return "{%s}" % ",".join(parts) if parts else ""


def encode_prometheus(source) -> str:
    """Encode a registry (or ``registry.snapshot()``) to exposition text."""
    snapshot = source.snapshot() if hasattr(source, "snapshot") else source
    lines = []
    for name in sorted(snapshot):
        family = snapshot[name]
        labelnames = tuple(family["labelnames"])
        lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        for key in sorted(family["samples"]):
            value = family["samples"][key]
            if family["type"] == "histogram":
                cumulative = 0
                for bound, count in zip(
                    family["buckets"], value["counts"]
                ):
                    cumulative += count
                    bucket = _labels_text(
                        labelnames, key, f'le="{_format_value(bound)}"'
                    )
                    lines.append(
                        f"{name}_bucket{bucket} {cumulative}"
                    )
                total = cumulative + value["counts"][-1]
                inf_bucket = _labels_text(labelnames, key, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf_bucket} {total}")
                plain = _labels_text(labelnames, key)
                lines.append(
                    f"{name}_sum{plain} {_format_value(value['sum'])}"
                )
                lines.append(f"{name}_count{plain} {total}")
            else:
                plain = _labels_text(labelnames, key)
                lines.append(f"{name}{plain} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_LINE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(text: str) -> str:
    return (
        text.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return _INF
    if text == "-Inf":
        return -_INF
    return float(text)


def parse_prometheus(text: str) -> "dict[str, dict[tuple, float]]":
    """Scrape text -> ``{sample_name: {sorted_label_items: value}}``.

    Sample names keep their ``_bucket`` / ``_sum`` / ``_count``
    suffixes; label sets are ``tuple(sorted((name, value), ...))`` so
    lookups don't depend on exposition order.
    """
    samples: "dict[str, dict[tuple, float]]" = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels = tuple(
            sorted(
                (name, _unescape_label_value(value))
                for name, value in _LABEL_PAIR.findall(
                    match.group("labels") or ""
                )
            )
        )
        samples.setdefault(match.group("name"), {})[labels] = _parse_value(
            match.group("value")
        )
    return samples


def sample(
    samples: "dict[str, dict[tuple, float]]",
    name: str,
    default: float = 0.0,
    **labels: str,
) -> float:
    """One parsed sample by name + labels (``default`` when absent)."""
    family = samples.get(name)
    if not family:
        return default
    return family.get(tuple(sorted(labels.items())), default)
