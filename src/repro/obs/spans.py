"""Span recorder: named, nestable wall-time stages (DESIGN.md §11).

One :class:`SpanRecorder` accompanies one validation (or one profiled
replay).  Stages are context-managed::

    recorder = SpanRecorder()
    with recorder.span("decode"):
        report = load_crash_report(blob)
    with recorder.span("replay"):
        with recorder.span("chain-replay", detail="t0"):
            ...

Spans nest (the recorder keeps a stack); ``stage_ms()`` aggregates
*top-level* spans into the flat per-stage map attached to accept /
reject outcomes and fed into the ``bugnet_validate_stage_seconds``
histogram, while ``render()`` prints the full tree as the
flamegraph-style breakdown ``bugnet profile`` shows.  ``detail``
carries unbounded identifiers (thread ids, labels) that must *not*
become metric labels — span *names* are the bounded stage vocabulary.

Recording costs two ``perf_counter`` calls and one append per span —
noise next to a replay — so the validate path always records; callers
that want zero bookkeeping pass :data:`NULL_RECORDER`.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from time import perf_counter


class Span:
    """One completed stage: name, wall seconds, nesting depth."""

    __slots__ = ("name", "detail", "start", "seconds", "depth")

    def __init__(self, name, detail, start, seconds, depth) -> None:
        self.name = name
        self.detail = detail
        self.start = start
        self.seconds = seconds
        self.depth = depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f"{self.name}[{self.detail}]" if self.detail else self.name
        return f"Span({label}, {self.seconds * 1e3:.3f}ms, d{self.depth})"


class SpanRecorder:
    """Collects spans for one operation; not thread-safe by design —
    one recorder per validation, like one report per validation."""

    def __init__(self) -> None:
        self.spans: "list[Span]" = []
        self._depth = 0

    @contextmanager
    def span(self, name: str, detail: str = ""):
        self._depth += 1
        start = perf_counter()
        try:
            yield
        finally:
            seconds = perf_counter() - start
            self._depth -= 1
            self.spans.append(
                Span(name, detail, start, seconds, self._depth)
            )

    def wall_seconds(self) -> float:
        """Total time covered by top-level spans."""
        return sum(s.seconds for s in self.spans if s.depth == 0)

    def stage_seconds(self) -> "dict[str, float]":
        """Top-level spans aggregated by name, in recorded order."""
        stages: "dict[str, float]" = {}
        for span in sorted(
            (s for s in self.spans if s.depth == 0), key=lambda s: s.start
        ):
            stages[span.name] = stages.get(span.name, 0.0) + span.seconds
        return stages

    def stage_ms(self) -> "dict[str, float]":
        """`stage_seconds` in rounded milliseconds — the wire/JSON form."""
        return {
            name: round(seconds * 1e3, 3)
            for name, seconds in self.stage_seconds().items()
        }

    def render(self, total: "float | None" = None, width: int = 28) -> str:
        """Indented per-stage breakdown with bars scaled to *total*
        (defaults to the recorded top-level wall time)."""
        if not self.spans:
            return "(no spans recorded)"
        if total is None or total <= 0:
            total = self.wall_seconds() or 1e-12
        lines = []
        for span in sorted(self.spans, key=lambda s: (s.start, -s.depth)):
            share = span.seconds / total
            bar = "█" * max(1, round(share * width)) if share > 0 else ""
            label = "  " * span.depth + span.name
            if span.detail:
                label += f" [{span.detail}]"
            lines.append(
                f"{label:<34} {span.seconds * 1e3:>9.2f} ms "
                f"{share * 100:>5.1f}%  {bar}"
            )
        return "\n".join(lines)


class _NullRecorder:
    """Recorder-shaped no-op; `span()` hands back a shared context."""

    spans: "list[Span]" = []

    def span(self, name: str, detail: str = ""):
        return nullcontext()

    def wall_seconds(self) -> float:
        return 0.0

    def stage_seconds(self) -> "dict[str, float]":
        return {}

    def stage_ms(self) -> "dict[str, float]":
        return {}


NULL_RECORDER = _NullRecorder()
