"""Deterministic replay from BugNet logs (paper Section 5).

* :mod:`repro.replay.replayer` — single-thread replay: re-execute the
  binary from each FLL header, feeding logged first-load values at the
  right load ordinals and simulating the dictionary identically,
* :mod:`repro.replay.races` — multithreaded stitching: a valid
  sequentially-consistent interleaving from the MRLs, plus
  happens-before data-race inference,
* :mod:`repro.replay.validation` — trace equivalence checks used by
  tests, examples and the benchmarks,
* :mod:`repro.replay.fastreplay` — compiled-dispatch replay for the
  validation hot path (no per-instruction events; bit-identical end
  state, equivalence-tested against the reference interpreter).
"""

from repro.replay.fastreplay import FastIntervalResult, fast_replay_interval
from repro.replay.races import MultiThreadReplay, RaceReport, infer_races
from repro.replay.replayer import IntervalReplay, ReplayEvent, Replayer
from repro.replay.validation import TraceCollector, assert_traces_equal

__all__ = [
    "Replayer",
    "IntervalReplay",
    "ReplayEvent",
    "FastIntervalResult",
    "fast_replay_interval",
    "MultiThreadReplay",
    "RaceReport",
    "infer_races",
    "TraceCollector",
    "assert_traces_equal",
]
