"""A deterministic-replay debugger over BugNet logs.

This is the developer-side tool the paper's architecture exists to
enable: step through the exact pre-crash execution, set breakpoints and
memory watchpoints, inspect registers and reconstructed memory — and
*travel backwards*, which determinism makes trivial: stepping to an
earlier point is just re-replaying the interval prefix (the Ronsse & De
Bosschere "debugging backwards in time" experience, built on FLLs).

The debugger replays the whole shipped window once up front.  From that
single pass it shares the forensics access index
(:class:`~repro.forensics.ddg.AccessIndex`): ``memory_at`` /
``access_history`` / ``last_writer`` are per-address binary searches
instead of O(window) scans per query, and the ``why`` command walks the
dynamic dependence graph to explain where a register or memory value
came from.

Example::

    debugger = ReplayDebugger(program, config, crash.flls_for(tid))
    debugger.add_watchpoint(0x10001000, size=1)   # watch a byte range
    hit = debugger.run()             # stops at the first watchpoint hit
    print(debugger.where())          # pc, source line, disassembly
    print(debugger.why("t5"))        # def-use chain behind t5's value
    debugger.reverse_step()          # go back one instruction
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.disasm import disassemble, symbol_map
from repro.arch.memory import Memory
from repro.arch.program import Program
from repro.arch.registers import reg_num
from repro.common.config import BugNetConfig
from repro.forensics.ddg import DDG, AccessIndex
from repro.replay.replayer import IntervalReplay, ReplayEvent, Replayer


@dataclass(frozen=True)
class StopReason:
    """Why execution paused."""

    kind: str              # "breakpoint" | "watchpoint" | "step" | "end"
    index: int             # global instruction index (0-based)
    detail: str = ""

    def __str__(self) -> str:
        text = f"stopped: {self.kind} at instruction {self.index}"
        return f"{text} ({self.detail})" if self.detail else text


class ReplayDebugger:
    """Navigate a replayed execution window."""

    def __init__(self, program: Program, config: BugNetConfig,
                 flls: list) -> None:
        if not flls:
            raise ValueError("no FLLs to debug")
        self.program = program
        self.config = config
        self.flls = flls
        self._symbols = symbol_map(program)
        replayer = Replayer(program, config)
        self._replays: list[IntervalReplay] = replayer.replay(flls)
        self.events: list[ReplayEvent] = [
            event for replay in self._replays for event in replay.events
        ]
        self._interval_starts: list[int] = []
        start = 0
        for replay in self._replays:
            self._interval_starts.append(start)
            start += replay.instructions
        # Shared forensics index: every memory query is a bisect.
        self._index = AccessIndex.from_events(self.events)
        self._ddg: DDG | None = None        # built lazily from _replays
        self._registers_cache: tuple[int, tuple[int, ...]] | None = None
        self.position = 0  # index of the NEXT instruction to "execute"
        self.breakpoints: set[int] = set()
        self.watchpoints: list[tuple[int, int]] = []   # [start, end) ranges

    # -- configuration -----------------------------------------------------

    def add_breakpoint(self, where: "int | str") -> int:
        """Break before executing the instruction at a pc or label."""
        pc = self.program.pc_of(where) if isinstance(where, str) else where
        self.breakpoints.add(pc)
        return pc

    def add_watchpoint(self, addr: int, size: int = 4) -> tuple[int, int]:
        """Break after any load or store overlapping ``[addr, addr+size)``.

        Accesses are whole words; a watched byte range catches the word
        access that covers it, so watching a single byte still sees the
        adjacent-word store that clobbers it (no silent ``addr & ~3``
        rounding).
        """
        if size < 1:
            raise ValueError("watchpoint size must be >= 1")
        span = (addr, addr + size)
        self.watchpoints.append(span)
        return span

    def _watch_hit(self, event: ReplayEvent):
        """(word addr, kind, (start, end)) when *event* touches a watch."""
        for kind, access in (("load", event.load), ("store", event.store)):
            if access is None:
                continue
            word = access[0]
            for start, end in self.watchpoints:
                if word < end and start < word + 4:
                    return word, kind, (start, end)
        return None

    # -- navigation ---------------------------------------------------------

    @property
    def length(self) -> int:
        """Total replayable instructions."""
        return len(self.events)

    @property
    def at_end(self) -> bool:
        """True when positioned past the last instruction."""
        return self.position >= self.length

    def step(self) -> StopReason:
        """Execute one instruction."""
        if self.at_end:
            return StopReason("end", self.position, "window exhausted")
        self.position += 1
        return StopReason("step", self.position)

    def reverse_step(self) -> StopReason:
        """Go back one instruction (determinism makes this exact)."""
        if self.position > 0:
            self.position -= 1
        return StopReason("step", self.position, "reverse")

    def run(self) -> StopReason:
        """Run forward until a breakpoint/watchpoint or the window end."""
        while not self.at_end:
            event = self.events[self.position]
            if event.pc in self.breakpoints:
                return StopReason(
                    "breakpoint", self.position,
                    f"pc={event.pc:#x} {self._symbols.get(event.pc, '')}",
                )
            hit = self._watch_hit(event)
            if hit is not None:
                self.position += 1  # stop AFTER the access, state visible
                word, kind, (start, end) = hit
                return StopReason(
                    "watchpoint", self.position,
                    f"{kind} {word:#010x} overlaps watch "
                    f"[{start:#x},{end:#x}) at pc={event.pc:#x}",
                )
            self.position += 1
        return StopReason("end", self.position, "window exhausted")

    def run_back(self) -> StopReason:
        """Run *backwards* to the previous break/watch hit.

        The event just executed (the one we are stopped on) is skipped,
        matching gdb's reverse-continue semantics.
        """
        if self.position > 0:
            self.position -= 1
        while self.position > 0:
            self.position -= 1
            event = self.events[self.position]
            if event.pc in self.breakpoints:
                return StopReason("breakpoint", self.position,
                                  f"pc={event.pc:#x}")
            hit = self._watch_hit(event)
            if hit is not None:
                self.position += 1
                word, kind, (start, end) = hit
                return StopReason(
                    "watchpoint", self.position,
                    f"{kind} {word:#010x} overlaps watch "
                    f"[{start:#x},{end:#x}) (reverse)",
                )
        return StopReason("end", 0, "window start")

    def seek(self, index: int) -> None:
        """Jump to an absolute instruction index."""
        if not 0 <= index <= self.length:
            raise IndexError(f"index {index} outside window 0..{self.length}")
        self.position = index

    # -- inspection ---------------------------------------------------------

    def current_event(self) -> ReplayEvent | None:
        """The instruction about to execute (None at the window end)."""
        if self.at_end:
            return None
        return self.events[self.position]

    def last_event(self) -> ReplayEvent | None:
        """The most recently executed instruction."""
        if self.position == 0:
            return None
        return self.events[self.position - 1]

    def where(self) -> str:
        """Human-readable position: pc, source line, disassembly."""
        event = self.current_event() or self.last_event()
        if event is None:
            return "(empty window)"
        ins = self.program.fetch(event.pc)
        text = disassemble(ins, self._symbols) if ins else "???"
        line = self.program.source_line_of(event.pc)
        marker = "next" if not self.at_end else "last"
        return (f"[{self.position}/{self.length}] {marker}: "
                f"pc={event.pc:#010x} line {line}: {text}")

    def registers(self) -> tuple[int, ...]:
        """Register file contents at the current position.

        Reconstructed by re-replaying from the enclosing interval start —
        cheap because intervals are bounded — and cached per position,
        so repeated inspection at one stop re-replays nothing.  Any
        navigation (seek/step/run) lands on a different position and
        naturally invalidates the cache.
        """
        cached = self._registers_cache
        if cached is not None and cached[0] == self.position:
            return cached[1]
        regs = self._reconstruct_registers()
        self._registers_cache = (self.position, regs)
        return regs

    def _reconstruct_registers(self) -> tuple[int, ...]:
        interval_index = self._interval_of(self.position)
        start = self._interval_starts[interval_index]
        if self.position == start:
            return self.flls[interval_index].header.regs
        memory = self._memory_before_interval(interval_index)
        replayer = Replayer(self.program, self.config)
        partial = replayer.replay_interval(
            self._sliced_fll(interval_index, self.position - start),
            memory=memory,
        )
        return partial.end_regs

    def memory_at(self, addr: int) -> int | None:
        """The value of *addr* at the current position, if reconstructable.

        Returns None when the word was never touched inside the window
        before this point (the paper, Section 7.1: untouched locations
        cannot be examined — and were, by the same token, irrelevant).
        """
        return self._index.value_at(addr & ~3, self.position)

    def access_history(self, addr: int) -> list[tuple[int, str, int]]:
        """Every (index, kind, value) access to *addr* within the window."""
        return self._index.accesses(addr & ~3)

    def last_writer(self, addr: int) -> ReplayEvent | None:
        """The most recent store to *addr* before the current position."""
        index = self._index.last_store_before(addr & ~3, self.position)
        if index is None:
            return None
        return self.events[index]

    def why(self, what: "int | str", position: int | None = None) -> str:
        """Explain where a value came from: its def-use chain.

        *what* is a register name (``"t5"``, ``"$sp"``, ``"r8"``) or a
        memory address; the chain is walked backwards from *position*
        (default: the current position) until the value leaves the
        window — at an FLL first-load, the initial register file, or a
        kernel/syscall boundary.  Built on the dependence graph derived
        from the window replay the debugger already performed (no
        re-replay).
        """
        from repro.forensics.provenance import (
            render_provenance,
            value_provenance,
        )

        where = self.position if position is None else position
        ddg = self.ddg()
        if isinstance(what, str):
            steps = value_provenance(ddg, index=where, reg=reg_num(what))
        else:
            steps = value_provenance(ddg, index=where, addr=what & ~3)
        return render_provenance(steps)

    def ddg(self) -> DDG:
        """The window's dynamic dependence graph (built once, lazily,
        from the replay this debugger already performed)."""
        if self._ddg is None:
            self._ddg = DDG.from_replays(self.program, self.flls,
                                         self._replays, index=self._index)
        return self._ddg

    # -- internals ----------------------------------------------------------

    def _interval_of(self, index: int) -> int:
        for number in range(len(self._interval_starts) - 1, -1, -1):
            if index >= self._interval_starts[number]:
                return number
        return 0

    def _memory_before_interval(self, interval_index: int) -> Memory:
        memory = Memory(fault_checks=False)
        replayer = Replayer(self.program, self.config)
        for fll in self.flls[:interval_index]:
            replayer.replay_interval(fll, memory=memory,
                                     collect_events=False)
        return memory

    def _sliced_fll(self, interval_index: int, instructions: int):
        """A truncated view of an interval: replay only its prefix.

        The record count is conservatively left intact; the replayer is
        driven by ``end_ic`` and unconsumed-record checking is skipped by
        constructing the slice via dataclasses.replace.
        """
        import dataclasses

        fll = self.flls[interval_index]
        start = self._interval_starts[interval_index]
        prefix_events = [
            event for event in
            self.events[start: start + instructions]
        ]
        consumed = sum(1 for event in prefix_events if event.from_log)
        return dataclasses.replace(
            fll, end_ic=instructions, num_records=consumed, fault_pc=None,
        )
