"""Compiled-dispatch replay: the validation hot path, several times the
interpreter's speed.

:class:`~repro.replay.replayer.Replayer` re-decodes every instruction
through a ~35-way string-compare chain and builds a
:class:`~repro.replay.replayer.ReplayEvent` per step — the right shape
for debugger front-ends, and measured at ~90% of fleet-ingest
validation time.  Validation needs none of that: only the final
machine state (PC, registers, memory), the FLL cursor bookkeeping, and
the last ``tail_depth`` PCs for the crash signature.

This module compiles a :class:`~repro.arch.program.Program` once into a
table of per-instruction closures ("threaded code"): each closure has
its operands, masks and precomputed successor index bound at closure
creation and returns the next instruction index, so the replay loop is
just ``idx = fns[idx]()`` — a single Python call per instruction.  The
closure bodies are generated with ``exec`` once per opcode at import
(not per program) so there is no inner-function indirection.  Loads
still go through :class:`~repro.replay.replayer._ReplayMemory` — the
single source of truth for first-load-log consumption and dictionary
simulation — so the fast path cannot drift from the reference on what
matters.

Semantics are bit-identical to ``Replayer.replay_interval`` (end PC,
end registers, memory contents, records consumed, divergence behavior
on corrupt logs); ``tests/test_fastreplay.py`` pins the equivalence
across the Table-1 bug suite and adversarial corruptions.  Control
transfers to invalid addresses are routed through a one-past-the-end
sentinel slot so a fetch fault fires exactly when the fetch would —
never early — and an interval that *ends* on the transfer still
reports the bad target as its end PC (how corrupted-code-pointer crash
reports validate).
"""

from __future__ import annotations

from collections import deque

from repro.arch.isa import CODE_BASE, INSTRUCTION_BYTES
from repro.arch.memory import Memory
from repro.arch.program import Program
from repro.common.config import BugNetConfig
from repro.common.errors import (
    ArithmeticFault,
    Fault,
    InstructionFault,
    ReplayDivergence,
)
from repro.obs import REGISTRY as _OBS
from repro.tracing.dictionary import DictionaryCompressor
from repro.tracing.fll import FLL, FLLReader

#: One ``inc`` per replayed *interval* (by its instruction count), not
#: per instruction — the loop itself stays untouched.
_REPLAYED_INSTRUCTIONS = _OBS.counter(
    "bugnet_replay_instructions_total",
    "Instructions replayed on the compiled fast path.",
)
_PLAN_CACHE = _OBS.counter(
    "bugnet_fastreplay_plan_cache_total",
    "Compiled-plan cache lookups, by result.",
    ("result",),
)
_PLAN_CACHE_HIT = _PLAN_CACHE.labels("hit")
_PLAN_CACHE_MISS = _PLAN_CACHE.labels("miss")

MASK = 0xFFFFFFFF
_SIGN = 0x80000000
_WRAP = 0x100000000


def _signed(value: int) -> int:
    return value - _WRAP if value & _SIGN else value


def _static_target(pc: int, count: int) -> "int | None":
    """Instruction index for an absolute branch/jump target, or None if
    the target is not a fetchable code address."""
    if pc & 3:
        return None
    index = (pc - CODE_BASE) >> 2
    if 0 <= index < count:
        return index
    return None


# -- opcode code generation --------------------------------------------------
#
# For every straight-line opcode we exec-compile (once, at import) a
# factory ``make(rd, rs, rt, imm, pc, nxt, off_end, regs, load, store,
# badpc) -> run`` whose ``run`` closure does the whole instruction
# inline and returns the next instruction index.  Two source variants
# exist per opcode: the common one (``off_end is None``) and the
# fall-off-the-end one, which stashes the past-the-end PC in ``badpc``
# before routing to the sentinel slot.  ``rd == 0`` (r0 is hardwired
# zero) picks a discarding variant at closure-creation time, not per
# step.

_ALU_EXPRS = {
    # op: (expression writing rd, expression is side-effect free)
    "addi": "(regs[rs] + imm) & MASK",
    "add": "(regs[rs] + regs[rt]) & MASK",
    "sub": "(regs[rs] - regs[rt]) & MASK",
    "mul": "(_signed(regs[rs]) * _signed(regs[rt])) & MASK",
    "and": "regs[rs] & regs[rt]",
    "or": "regs[rs] | regs[rt]",
    "xor": "regs[rs] ^ regs[rt]",
    "nor": "~(regs[rs] | regs[rt]) & MASK",
    "andi": "regs[rs] & imm16",
    "ori": "regs[rs] | imm16",
    "xori": "regs[rs] ^ imm16",
    "sll": "(regs[rs] << imm) & MASK",
    "srl": "regs[rs] >> imm",
    "sra": "(_signed(regs[rs]) >> imm) & MASK",
    "sllv": "(regs[rs] << (regs[rt] & 31)) & MASK",
    "srlv": "regs[rs] >> (regs[rt] & 31)",
    "srav": "(_signed(regs[rs]) >> (regs[rt] & 31)) & MASK",
    "slt": "1 if _signed(regs[rs]) < _signed(regs[rt]) else 0",
    "sltu": "1 if regs[rs] < regs[rt] else 0",
    "slti": "1 if _signed(regs[rs]) < imm else 0",
    "sltiu": "1 if regs[rs] < imm_mask else 0",
    "lui": "lui_value",
}

_BRANCH_CONDS = {
    "beq": "regs[rs] == regs[rt]",
    "bne": "regs[rs] != regs[rt]",
    "blt": "_signed(regs[rs]) < _signed(regs[rt])",
    "bge": "_signed(regs[rs]) >= _signed(regs[rt])",
    "bltu": "regs[rs] < regs[rt]",
    "bgeu": "regs[rs] >= regs[rt]",
}

_MAKE_SRC = """
def make(rd, rs, rt, imm, pc, nxt, off_end, taken, taken_bad,
         regs, load, store, badpc):
    imm16 = imm & 0xFFFF
    imm_mask = imm & MASK
    lui_value = (imm << 16) & MASK
    nxt_pc = pc + 4
{body}
    return run
"""


def _compile_make(body_lines: "list[str]"):
    body = "\n".join("    " + line for line in body_lines)
    env = {
        "MASK": MASK,
        "_signed": _signed,
        "ArithmeticFault": ArithmeticFault,
        "InstructionFault": InstructionFault,
        "_dynamic_jump": None,  # patched below once defined
    }
    # .replace, not .format: closure bodies contain f-string braces.
    exec(_MAKE_SRC.replace("{body}", body), env)
    return env["make"]


def _alu_makers(expr: str):
    """(common, off_end) maker pair for a pure write-rd expression."""
    common = _compile_make([
        "if rd:",
        "    def run():",
        f"        regs[rd] = {expr}",
        "        return nxt",
        "else:",
        "    def run():",
        "        return nxt",
    ])
    at_end = _compile_make([
        "if rd:",
        "    def run():",
        f"        regs[rd] = {expr}",
        "        badpc[0] = nxt_pc",
        "        return nxt",
        "else:",
        "    def run():",
        "        badpc[0] = nxt_pc",
        "        return nxt",
    ])
    return common, at_end


def _branch_makers(cond: str):
    common = _compile_make([
        "if taken_bad is None:",
        "    def run():",
        f"        if {cond}:",
        "            return taken",
        "        return nxt",
        "else:",
        "    def run():",
        f"        if {cond}:",
        "            badpc[0] = taken_bad",
        "            return taken",
        "        return nxt",
    ])
    at_end = _compile_make([
        "if taken_bad is None:",
        "    def run():",
        f"        if {cond}:",
        "            return taken",
        "        badpc[0] = nxt_pc",
        "        return nxt",
        "else:",
        "    def run():",
        f"        if {cond}:",
        "            badpc[0] = taken_bad",
        "            return taken",
        "        badpc[0] = nxt_pc",
        "        return nxt",
    ])
    return common, at_end


_SIMPLE_MAKERS = {op: _alu_makers(expr) for op, expr in _ALU_EXPRS.items()}
# Replay semantics: syscalls and nops commit and fall through.
_SIMPLE_MAKERS["nop"] = _alu_makers("0")  # rd is always 0 for nop
_SIMPLE_MAKERS["syscall"] = _SIMPLE_MAKERS["nop"]
_SIMPLE_MAKERS.update(
    {op: _branch_makers(cond) for op, cond in _BRANCH_CONDS.items()}
)

_SIMPLE_MAKERS["lw"] = (
    _compile_make([
        "if rd:",
        "    def run():",
        "        regs[rd] = load((regs[rs] + imm) & MASK) & MASK",
        "        return nxt",
        "else:",
        "    def run():",
        "        load((regs[rs] + imm) & MASK)",
        "        return nxt",
    ]),
    _compile_make([
        "if rd:",
        "    def run():",
        "        regs[rd] = load((regs[rs] + imm) & MASK) & MASK",
        "        badpc[0] = nxt_pc",
        "        return nxt",
        "else:",
        "    def run():",
        "        load((regs[rs] + imm) & MASK)",
        "        badpc[0] = nxt_pc",
        "        return nxt",
    ]),
)

_SIMPLE_MAKERS["sw"] = (
    _compile_make([
        "def run():",
        "    store((regs[rs] + imm) & MASK, regs[rt])",
        "    return nxt",
    ]),
    _compile_make([
        "def run():",
        "    store((regs[rs] + imm) & MASK, regs[rt])",
        "    badpc[0] = nxt_pc",
        "    return nxt",
    ]),
)

# Signed div/rem: fault semantics match the interpreter exactly
# (ArithmeticFault at the instruction's PC; rd written only when rd).
_DIV_BODY = [
    "def run():",
    "    divisor = _signed(regs[rt])",
    "    if divisor == 0:",
    "        raise ArithmeticFault(",
    "            f'integer divide by zero at {pc:#010x}', pc=pc)",
    "    dividend = _signed(regs[rs])",
    "    quotient = abs(dividend) // abs(divisor)",
    "    if (dividend < 0) != (divisor < 0):",
    "        quotient = -quotient",
    "    result = {result}",
    "    if rd:",
    "        regs[rd] = result & MASK",
    "    {end}",
    "    return nxt",
]


def _div_makers(result: str):
    def render(end: str):
        return [line.replace("{result}", result).replace("{end}", end)
                for line in _DIV_BODY]
    return (_compile_make(render("pass")),
            _compile_make(render("badpc[0] = nxt_pc")))


_SIMPLE_MAKERS["div"] = _div_makers("quotient")
_SIMPLE_MAKERS["rem"] = _div_makers("dividend - quotient * divisor")

_DIVU_BODY = [
    "def run():",
    "    divisor = regs[rt]",
    "    if divisor == 0:",
    "        raise ArithmeticFault(",
    "            f'integer divide by zero at {pc:#010x}', pc=pc)",
    "    if rd:",
    "        regs[rd] = (regs[rs] {oper} divisor) & MASK",
    "    {end}",
    "    return nxt",
]


def _divu_makers(oper: str):
    def render(end: str):
        return [line.replace("{oper}", oper).replace("{end}", end)
                for line in _DIVU_BODY]
    return (_compile_make(render("pass")),
            _compile_make(render("badpc[0] = nxt_pc")))


_SIMPLE_MAKERS["divu"] = _divu_makers("//")
_SIMPLE_MAKERS["remu"] = _divu_makers("%")

_SIMPLE_MAKERS["break"] = (
    _compile_make([
        "def run():",
        "    raise InstructionFault(f'break trap at {pc:#010x}', pc=pc)",
    ]),
) * 2

_SIMPLE_MAKERS["j"] = (
    _compile_make([
        "if taken_bad is None:",
        "    def run():",
        "        return taken",
        "else:",
        "    def run():",
        "        badpc[0] = taken_bad",
        "        return taken",
    ]),
) * 2

_SIMPLE_MAKERS["jal"] = (
    _compile_make([
        "if taken_bad is None:",
        "    def run():",
        "        regs[31] = nxt_pc",
        "        return taken",
        "else:",
        "    def run():",
        "        regs[31] = nxt_pc",
        "        badpc[0] = taken_bad",
        "        return taken",
    ]),
) * 2


def _jump_makers():
    """jr/jalr: register-valued targets validated at the *next* fetch,
    exactly like the interpreter — a bad target only faults if the
    interval does not end on the jump itself."""
    def count_check(indent: str) -> "list[str]":
        return [indent + line for line in (
            "if target & 3:",
            "    badpc[0] = target",
            "    return sentinel",
            "index = (target - CODE_BASE) >> 2",
            "if 0 <= index < sentinel:",
            "    return index",
            "badpc[0] = target",
            "return sentinel",
        )]

    jr = _compile_make([
        "sentinel = taken",
        "CODE_BASE = taken_bad",
        "def run():",
        "    target = regs[rs]",
        *count_check("    "),
    ])
    jalr = _compile_make([
        "sentinel = taken",
        "CODE_BASE = taken_bad",
        "if rd:",
        "    def run():",
        "        target = regs[rs]",
        "        regs[rd] = nxt_pc",
        *count_check("        "),
        "else:",
        "    def run():",
        "        target = regs[rs]",
        *count_check("        "),
    ])
    return jr, jalr


_JR_MAKER, _JALR_MAKER = _jump_makers()
_SIMPLE_MAKERS["jr"] = (_JR_MAKER,) * 2
_SIMPLE_MAKERS["jalr"] = (_JALR_MAKER,) * 2


def _compile_program(program: Program):
    """The per-instruction compile plan: (maker, rd, rs, rt, imm, pc,
    nxt, taken, taken_bad) tuples, one per instruction."""
    instructions = program.instructions
    count = len(instructions)
    plan = []
    for index, ins in enumerate(instructions):
        op = ins.op
        pc = CODE_BASE + (index << 2)
        nxt = index + 1
        makers = _SIMPLE_MAKERS.get(op)
        if makers is None:  # pragma: no cover - assembler emits known ops
            raise InstructionFault(f"undecodable instruction {op!r}", pc=pc)
        maker = makers[1] if nxt == count else makers[0]
        taken = None
        taken_bad = None
        if op in ("beq", "bne", "blt", "bge", "bltu", "bgeu", "j", "jal"):
            taken = _static_target(ins.imm, count)
            if taken is None:
                taken = count
                taken_bad = ins.imm
        elif op in ("jr", "jalr"):
            # Reuse the taken/taken_bad slots to pass the sentinel index
            # and CODE_BASE to the dynamic-jump closures.
            taken = count
            taken_bad = CODE_BASE
        off_end = pc + INSTRUCTION_BYTES if nxt == count else None
        plan.append(
            (maker, ins.rd, ins.rs, ins.rt, ins.imm, pc, nxt, off_end,
             taken, taken_bad)
        )
    return plan, count


def compiled_plan(program: Program):
    """Per-program compile plan, computed once and cached on the
    program object itself (Program defines __eq__ and is unhashable, so
    a dict cache would either fail or compare whole instruction
    lists)."""
    cached = getattr(program, "_fastreplay_plan", None)
    if cached is None:
        _PLAN_CACHE_MISS.inc()
        cached = _compile_program(program)
        program._fastreplay_plan = cached
    else:
        _PLAN_CACHE_HIT.inc()
    return cached


# -- basic-block superinstructions -------------------------------------------
#
# The per-closure loop above still pays one Python call and one loop
# iteration per instruction.  Straight-line runs between branch targets
# and terminators (avg ~10 instructions on the bug suite) compile into a
# *single* exec-generated closure per basic block with every operand,
# mask, and successor index folded in as a literal, so the dispatch loop
# runs once per block.  Blocks are only entered at their leader with
# enough instruction budget left; interval boundaries mid-block, tails,
# and dynamic-jump landings fall back to the per-instruction closures,
# which keeps semantics (and fault behavior) exactly those of the
# single-step path.

#: Ops that end a basic block.
_TERMINATORS = frozenset(
    list(_BRANCH_CONDS) + ["j", "jal", "jr", "jalr", "break"]
)
#: Ops with a static transfer target contributing a leader.
_STATIC_TRANSFERS = frozenset(list(_BRANCH_CONDS) + ["j", "jal"])
#: Cap on block size: bounds codegen and the single-step fallback run
#: when an interval boundary cuts a block.
_MAX_BLOCK = 128

_LW_MAKERS = frozenset(_SIMPLE_MAKERS["lw"])
_SW_MAKERS = frozenset(_SIMPLE_MAKERS["sw"])

_SIGNED_RE = None  # compiled lazily (re imported below)


def _inline_expr(template: str, rd: int, rs: int, rt: int, imm: int) -> str:
    """Fold one opcode expression template into literal-operand source.

    Must mirror the closure environment of ``_MAKE_SRC`` exactly:
    ``imm16``/``imm_mask``/``lui_value`` derive from ``imm`` the same
    way, ``_signed`` inlines to the equivalent conditional expression.
    """
    import re
    global _SIGNED_RE
    if _SIGNED_RE is None:
        _SIGNED_RE = re.compile(r"_signed\((regs\[\d+\])\)")
    out = template
    out = out.replace("imm16", str(imm & 0xFFFF))
    out = out.replace("imm_mask", str(imm & MASK))
    out = out.replace("lui_value", str((imm << 16) & MASK))
    out = out.replace("regs[rs]", f"regs[{rs}]")
    out = out.replace("regs[rt]", f"regs[{rt}]")
    out = out.replace("imm", str(imm))
    out = out.replace("MASK", "0xFFFFFFFF")
    out = _SIGNED_RE.sub(
        r"(\1 - 0x100000000 if \1 & 0x80000000 else \1)", out)
    return out


def _emit_instruction(ins, index: int, count: int, offset: int,
                      slim: bool,
                      filtered: bool = False) -> "tuple[list[str], bool]":
    """Source lines for one instruction inside a block body; returns
    ``(lines, terminates)``.  ``offset`` is the instruction's position
    within its block (slim access indices are ``_p + offset``);
    *filtered* slim blocks record only accesses whose address is in the
    closed-over ``fset``."""
    op = ins.op
    rd, rs, rt, imm = ins.rd, ins.rs, ins.rt, ins.imm
    pc = CODE_BASE + (index << 2)
    lines: "list[str]" = []
    if op in _ALU_EXPRS:
        if rd:
            lines.append(f"regs[{rd}] = {_inline_expr(_ALU_EXPRS[op], rd, rs, rt, imm)}")
        return lines, False
    if op in ("nop", "syscall"):
        if rd:  # mirror the closure: nop/syscall with rd writes 0
            lines.append(f"regs[{rd}] = 0")
        return lines, False
    if op == "lw":
        addr = f"(regs[{rs}] + {imm}) & 0xFFFFFFFF"
        if slim:
            record = f"acc((_p + {offset}, _a, _v, True, {pc}))"
            lines.append(f"_a = {addr}")
            lines.append("_v = load(_a) & 0xFFFFFFFF")
            if filtered:
                lines.append("if _a in fset:")
                lines.append("    " + record)
            else:
                lines.append(record)
            if rd:
                lines.append(f"regs[{rd}] = _v")
        elif rd:
            lines.append(f"regs[{rd}] = load({addr}) & 0xFFFFFFFF")
        else:
            lines.append(f"load({addr})")
        return lines, False
    if op == "sw":
        addr = f"(regs[{rs}] + {imm}) & 0xFFFFFFFF"
        if slim:
            record = (f"acc((_p + {offset}, _a, regs[{rt}] & 0xFFFFFFFF, "
                      f"False, {pc}))")
            lines.append(f"_a = {addr}")
            lines.append(f"store(_a, regs[{rt}])")
            if filtered:
                lines.append("if _a in fset:")
                lines.append("    " + record)
            else:
                lines.append(record)
        else:
            lines.append(f"store({addr}, regs[{rt}])")
        return lines, False
    if op in ("div", "rem"):
        msg = f"integer divide by zero at {pc:#010x}"
        lines += [
            f"_d = regs[{rt}]",
            "if _d & 0x80000000:",
            "    _d -= 0x100000000",
            "if _d == 0:",
            f"    raise ArithmeticFault({msg!r}, pc={pc})",
            f"_n = regs[{rs}]",
            "if _n & 0x80000000:",
            "    _n -= 0x100000000",
            "_q = abs(_n) // abs(_d)",
            "if (_n < 0) != (_d < 0):",
            "    _q = -_q",
        ]
        if rd:
            result = "_q" if op == "div" else "(_n - _q * _d)"
            lines.append(f"regs[{rd}] = {result} & 0xFFFFFFFF")
        return lines, False
    if op in ("divu", "remu"):
        msg = f"integer divide by zero at {pc:#010x}"
        oper = "//" if op == "divu" else "%"
        lines += [
            f"_d = regs[{rt}]",
            "if _d == 0:",
            f"    raise ArithmeticFault({msg!r}, pc={pc})",
        ]
        if rd:
            lines.append(f"regs[{rd}] = (regs[{rs}] {oper} _d) & 0xFFFFFFFF")
        return lines, False
    if op == "break":
        msg = f"break trap at {pc:#010x}"
        lines.append(f"raise InstructionFault({msg!r}, pc={pc})")
        return lines, True
    if op in _BRANCH_CONDS:
        cond = _inline_expr(_BRANCH_CONDS[op], rd, rs, rt, imm)
        taken = _static_target(imm, count)
        lines.append(f"if {cond}:")
        if taken is None:
            lines.append(f"    badpc[0] = {imm}")
            lines.append(f"    return {count}")
        else:
            lines.append(f"    return {taken}")
        lines += _fallthrough(index, count, pc)
        return lines, True
    if op in ("j", "jal"):
        if op == "jal":
            lines.append(f"regs[31] = {pc + 4}")
        taken = _static_target(imm, count)
        if taken is None:
            lines.append(f"badpc[0] = {imm}")
            lines.append(f"return {count}")
        else:
            lines.append(f"return {taken}")
        return lines, True
    if op in ("jr", "jalr"):
        lines.append(f"_t = regs[{rs}]")
        if op == "jalr" and rd:
            lines.append(f"regs[{rd}] = {pc + 4}")
        lines += [
            "if _t & 3:",
            "    badpc[0] = _t",
            f"    return {count}",
            f"_i = (_t - {CODE_BASE}) >> 2",
            f"if 0 <= _i < {count}:",
            "    return _i",
            "badpc[0] = _t",
            f"return {count}",
        ]
        return lines, True
    raise InstructionFault(f"undecodable instruction {op!r}", pc=pc)


def _fallthrough(index: int, count: int, pc: int) -> "list[str]":
    if index + 1 >= count:
        return [f"badpc[0] = {pc + 4}", f"return {count}"]
    return [f"return {index + 1}"]


def _localize_registers(body: "list[str]") -> "list[str]":
    """Rewrite a block body to keep touched registers in local
    variables: one ``_rN = regs[N]`` load per register at block entry,
    fast locals inside, write-back of *written* registers before every
    ``return``.  Fault ``raise`` paths skip the write-back — a fault
    aborts the chain as a :class:`ReplayDivergence`, so post-fault
    register state is never observed.
    """
    import re
    reg_ref = re.compile(r"regs\[(\d+)\]")
    used = sorted({int(n) for line in body for n in reg_ref.findall(line)})
    if not used:
        return body
    written = sorted({
        int(match.group(1))
        for line in body
        for match in [re.match(r"\s*regs\[(\d+)\] = ", line)]
        if match
    })
    localized = [reg_ref.sub(lambda m: f"_r{m.group(1)}", line)
                 for line in body]
    out = [f"_r{n} = regs[{n}]" for n in used]
    for line in localized:
        stripped = line.lstrip()
        if stripped.startswith("return "):
            indent = line[: len(line) - len(stripped)]
            out.extend(f"{indent}regs[{n}] = _r{n}" for n in written)
        out.append(line)
    return out


def _emit_self_loop(instructions, leader: int, length: int, count: int,
                    slim: bool, filtered: bool) -> "list[str]":
    """Body of a *looper*: a self-loop block (terminating branch whose
    taken target is its own leader) compiled into an internal ``while``
    that runs up to ``_iters`` complete iterations without returning to
    the dispatch loop.  Returns ``(next_index, iterations_done)``;
    every iteration — including the exiting one — consumes exactly
    ``length`` instructions, so the driver adds ``done * length`` to
    its step count.  Slim loopers advance ``_p`` by ``length`` per
    iteration so recorded access indices stay chain-exact."""
    term_index = leader + length - 1
    term = instructions[term_index]
    body: "list[str]" = []
    for off, i in enumerate(range(leader, term_index)):
        emitted, _terminates = _emit_instruction(
            instructions[i], i, count, off, slim, filtered)
        body.extend(emitted)
    cond = _inline_expr(_BRANCH_CONDS[term.op], term.rd, term.rs,
                        term.rt, term.imm)
    body.append("_n += 1")
    body.append(f"if {cond}:")
    body.append("    if _n < _iters:")
    if slim:
        body.append(f"        _p += {length}")
    body.append("        continue")
    body.append(f"    return {leader}, _n")
    if term_index + 1 >= count:
        term_pc = CODE_BASE + (term_index << 2)
        body.append(f"badpc[0] = {term_pc + 4}")
        body.append(f"return {count}, _n")
    else:
        body.append(f"return {term_index + 1}, _n")
    full = ["_n = 0", "while True:"] + ["    " + line for line in body]
    return _localize_registers(full)


def _compile_blocks(program: Program, slim: bool, filtered: bool):
    """exec-compile the program's basic blocks into a single factory
    ``make_all(regs, load, store, badpc, acc, fset) -> ((leader,
    length, run, loop), ...)``.  Untraced ``run()`` closures take no
    argument; slim ones take ``_p``, the chain-global index of the
    block's first instruction (access indices fold in as ``_p +
    offset``).  ``loop`` is a looper for self-loop blocks
    (:func:`_emit_self_loop`) or ``None``."""
    instructions = program.instructions
    count = len(instructions)
    leaders = {0} if count else set()
    for index, ins in enumerate(instructions):
        if ins.op in _TERMINATORS:
            if index + 1 < count:
                leaders.add(index + 1)
            if ins.op in _STATIC_TRANSFERS:
                target = _static_target(ins.imm, count)
                if target is not None:
                    leaders.add(target)
    lines = [
        "def make_all(regs, load, store, badpc, acc, fset):",
        "    table = []",
    ]
    for leader in sorted(leaders):
        body: "list[str]" = []
        index = leader
        length = 0
        terminated = False
        while index < count:
            emitted, terminates = _emit_instruction(
                instructions[index], index, count, length, slim, filtered)
            body.extend(emitted)
            length += 1
            index += 1
            if (terminates or index >= count or index in leaders
                    or length >= _MAX_BLOCK):
                terminated = terminates
                if not terminates:
                    body.extend(_fallthrough(
                        index - 1, count, CODE_BASE + ((index - 1) << 2)))
                break
        body = _localize_registers(body)
        header = f"    def run_{leader}(_p):" if slim \
            else f"    def run_{leader}():"
        lines.append(header)
        lines.extend("        " + line for line in body)
        term = instructions[leader + length - 1]
        loop_name = "None"
        if (terminated and term.op in _BRANCH_CONDS
                and _static_target(term.imm, count) == leader):
            loop_name = f"loop_{leader}"
            loop_header = f"    def loop_{leader}(_p, _iters):" if slim \
                else f"    def loop_{leader}(_iters):"
            lines.append(loop_header)
            lines.extend("        " + line for line in _emit_self_loop(
                instructions, leader, length, count, slim, filtered))
        lines.append(
            f"    table.append(({leader}, {length}, run_{leader}, "
            f"{loop_name}))")
    lines.append("    return table")
    env = {
        "ArithmeticFault": ArithmeticFault,
        "InstructionFault": InstructionFault,
    }
    exec("\n".join(lines), env)
    return env["make_all"]


def compiled_blocks(program: Program, slim: bool, filtered: bool = False):
    """Per-program block factory, cached like :func:`compiled_plan`."""
    cached = getattr(program, "_fastreplay_blocks", None)
    if cached is None:
        cached = program._fastreplay_blocks = {}
    key = (slim, filtered)
    make_all = cached.get(key)
    if make_all is None:
        make_all = cached[key] = _compile_blocks(program, slim, filtered)
    return make_all


class _PredecodedReplayMemory:
    """:class:`~repro.replay.replayer._ReplayMemory` semantics over a
    pre-decoded record list (``FLLReader.decode_all``): the same
    skip-counting first-load-log cursor and dictionary simulation,
    without the per-record bit-reader calls on the load path."""

    __slots__ = ("memory", "dictionary", "records", "cursor", "skipped",
                 "consumed", "_count", "_peek", "_poke", "_update",
                 "_value_at")

    def __init__(self, memory: Memory, dictionary: DictionaryCompressor,
                 records: "list[tuple[int, bool, int]]") -> None:
        self.memory = memory
        self.dictionary = dictionary
        self.records = records
        self.cursor = 0
        self.skipped = 0
        self.consumed = 0
        # Bound-method locals: load() runs once per executed load
        # instruction, so the attribute chains are worth flattening.
        self._count = len(records)
        self._peek = memory.peek
        self._poke = memory.poke
        self._update = dictionary.lookup_update
        self._value_at = dictionary.value_at

    @property
    def pending(self) -> "tuple[int, bool, int] | None":
        if self.cursor < len(self.records):
            return self.records[self.cursor]
        return None

    def load(self, addr: int) -> int:
        cursor = self.cursor
        if cursor < self._count:
            record = self.records[cursor]
            if self.skipped == record[0]:
                _, encoded, raw = record
                value = self._value_at(raw) if encoded else raw
                self._poke(addr, value)
                self.cursor = cursor + 1
                self.skipped = 0
                self.consumed += 1
                self._update(value)
                return value
        value = self._peek(addr)
        self.skipped += 1
        self._update(value)
        return value


class FastIntervalResult:
    """End state of one fast-replayed interval (mirrors the fields of
    :class:`~repro.replay.replayer.IntervalReplay` that validation
    consumes; no per-instruction events exist on this path)."""

    __slots__ = ("fll", "end_pc", "end_regs", "records_consumed")

    def __init__(self, fll: FLL, end_pc: int, end_regs: tuple,
                 records_consumed: int) -> None:
        self.fll = fll
        self.end_pc = end_pc
        self.end_regs = end_regs
        self.records_consumed = records_consumed


class ChainTrace:
    """Access trace of a fast-replayed interval chain.

    The multi-thread validation path needs, per committed instruction,
    the PC and (for memory ops) the touched address — exactly what race
    inference consumes — without the per-instruction
    :class:`~repro.replay.replayer.ReplayEvent` objects the reference
    interpreter builds.  ``pcs[i]`` is the PC of the chain's *i*-th
    instruction; ``accesses`` holds ``(index, addr, value, is_load)``
    tuples in execution order.  One trace spans a whole chain: pass the
    same object to every :func:`fast_replay_interval` call so indices
    stay chain-global.
    """

    __slots__ = ("pcs", "accesses")

    def __init__(self) -> None:
        self.pcs: "list[int]" = []
        self.accesses: "list[tuple[int, int, int, bool]]" = []


class AccessTrace:
    """Slim trace for the fleet validation hot path: memory accesses
    only, no per-instruction PC list.

    Race inference needs each access's chain-global instruction index,
    address, value, direction, *and PC* — but never the PCs of
    non-memory instructions, which :class:`ChainTrace` pays ~one list
    append per instruction to keep.  This trace records
    ``(index, addr, value, is_load, pc)`` per memory op (the PC folded
    in at block-compile time) and counts instructions instead, so the
    traced replay runs on the block-compiled superinstruction path at
    untraced speed.  One trace spans a whole chain, like
    :class:`ChainTrace`.

    *filter_addrs* (a set) restricts recording to accesses whose
    address is in the set — how multi-thread validation replays
    *non-faulting* threads, whose accesses only matter at the addresses
    feeding the crash.  ``None`` records everything.
    """

    __slots__ = ("accesses", "instructions", "filter_addrs")

    def __init__(self, filter_addrs: "frozenset[int] | None" = None) -> None:
        self.accesses: "list[tuple[int, int, int, bool, int]]" = []
        self.instructions = 0
        self.filter_addrs = filter_addrs


def fast_replay_interval(
    program: Program,
    config: BugNetConfig,
    fll: FLL,
    memory: "Memory | None" = None,
    tail: "deque[int] | None" = None,
    tail_depth: int = 0,
    trace: "ChainTrace | None" = None,
    access_trace: "AccessTrace | None" = None,
) -> FastIntervalResult:
    """Replay one interval on the compiled path.

    *tail* (a bounded deque) receives the PCs of the interval's last
    ``tail_depth`` instructions — enough for signature extraction even
    when the final interval is shorter than the tail, because every
    interval contributes its own last ``tail_depth`` PCs in order.

    *trace* (a :class:`ChainTrace`) captures every committed PC and
    memory access instead: the multi-thread validation mode.  The
    wrappers it installs around the load/store closures change no
    semantics — end state stays bit-identical to the untraced path and
    to the reference interpreter (``tests/test_fastreplay.py``).

    *access_trace* (an :class:`AccessTrace`) is the slim alternative:
    memory accesses (with PCs) and an instruction count only, captured
    on the block-compiled superinstruction path, so traced replay costs
    what untraced replay does.  Mutually exclusive with *trace*.
    """
    if memory is None:
        memory = Memory(fault_checks=False)
    else:
        memory.fault_checks = False
    plan, count = compiled_plan(program)
    dictionary = DictionaryCompressor(config.dictionary)
    reader = FLLReader(config, fll)
    interface = _PredecodedReplayMemory(memory, dictionary,
                                        reader.decode_all())
    header = fll.header
    regs = [value & MASK for value in header.regs]
    regs[0] = 0
    badpc = [0]
    load = interface.load
    store = memory.poke
    if trace is not None:
        pcs = trace.pcs
        accesses = trace.accesses
        inner_load = load
        inner_store = store

        def load(addr):
            value = inner_load(addr)
            # The driver appends the current PC *before* dispatching, so
            # len(pcs) - 1 is this instruction's chain-global index.
            accesses.append((len(pcs) - 1, addr, value & MASK, True))
            return value

        def store(addr, value):
            inner_store(addr, value)
            accesses.append((len(pcs) - 1, addr, value & MASK, False))

        fns = [
            maker(rd, rs, rt, imm, pc, nxt, off_end, taken, taken_bad,
                  regs, load, store, badpc)
            for (maker, rd, rs, rt, imm, pc, nxt, off_end, taken, taken_bad)
            in plan
        ]
    else:
        # Block-compiled path: per-instruction closures are created
        # lazily — only tails, interval-boundary remainders, and
        # dynamic-jump landings outside a leader ever need one.
        fns = [None] * count
        slim = access_trace is not None
        acc = access_trace.accesses.append if slim else None
        fset = access_trace.filter_addrs if slim else None
        base = access_trace.instructions if slim else 0
        cur = [base]  # chain-global index for slim single-step wrappers
        runs: "list" = [None] * (count + 1)
        lens = [0] * (count + 1)
        loops: "list" = [None] * (count + 1)
        for leader, length, run, loop in compiled_blocks(
                program, slim, fset is not None)(
                regs, load, store, badpc, acc, fset):
            runs[leader] = run
            lens[leader] = length
            loops[leader] = loop

        def make_single(i):
            (maker, rd, rs, rt, imm, pc, nxt, off_end, taken,
             taken_bad) = plan[i]
            ld, st = load, store
            if slim and maker in _LW_MAKERS:
                def ld(addr, _pc=pc):
                    value = load(addr)
                    if fset is None or addr in fset:
                        acc((cur[0], addr, value & MASK, True, _pc))
                    return value
            elif slim and maker in _SW_MAKERS:
                def st(addr, value, _pc=pc):
                    store(addr, value)
                    if fset is None or addr in fset:
                        acc((cur[0], addr, value & MASK, False, _pc))
            fn = fns[i] = maker(rd, rs, rt, imm, pc, nxt, off_end,
                                taken, taken_bad, regs, ld, st, badpc)
            return fn

    def raiser():
        raise InstructionFault(
            f"instruction fetch from invalid address {badpc[0]:#010x}",
            pc=badpc[0],
        )
    fns.append(raiser)

    start_pc = header.pc
    index = _static_target(start_pc, count)
    if index is None:
        badpc[0] = start_pc
        index = count
    end = fll.end_ic
    steps = 0
    fast_end = end if tail is None else max(end - tail_depth, 0)
    try:
        if trace is not None:
            pcs_append = trace.pcs.append
            while steps < end:
                pcs_append(badpc[0] if index == count else
                           CODE_BASE + (index << 2))
                index = fns[index]()
                steps += 1
            if tail is not None:
                # A caller combining tracing with signature-tail
                # extraction still gets the interval's last PCs (the
                # traced loop already captured every one).
                tail.extend(trace.pcs[len(trace.pcs) - end:])
        elif slim:
            while steps < fast_end:
                run = runs[index]
                if run is not None:
                    length = lens[index]
                    loop = loops[index]
                    if loop is not None:
                        iters = (fast_end - steps) // length
                        if iters > 0:
                            index, done = loop(base + steps, iters)
                            steps += done * length
                            continue
                    if steps + length <= fast_end:
                        index = run(base + steps)
                        steps += length
                        continue
                cur[0] = base + steps
                index = (fns[index] or make_single(index))()
                steps += 1
            while steps < end:
                tail.append(badpc[0] if index == count else
                            CODE_BASE + (index << 2))
                cur[0] = base + steps
                index = (fns[index] or make_single(index))()
                steps += 1
            access_trace.instructions = base + end
        else:
            while steps < fast_end:
                run = runs[index]
                if run is not None:
                    length = lens[index]
                    loop = loops[index]
                    if loop is not None:
                        iters = (fast_end - steps) // length
                        if iters > 0:
                            index, done = loop(iters)
                            steps += done * length
                            continue
                    if steps + length <= fast_end:
                        index = run()
                        steps += length
                        continue
                index = (fns[index] or make_single(index))()
                steps += 1
            while steps < end:
                tail.append(badpc[0] if index == count else
                            CODE_BASE + (index << 2))
                index = (fns[index] or make_single(index))()
                steps += 1
    except Fault as fault:
        # Every fault raised on this path carries the faulting
        # instruction's exact PC, which stays correct when the fault
        # fires mid-way through a compiled block (``index`` then still
        # names the block leader).
        pc_before = fault.pc if fault.pc is not None else (
            badpc[0] if index == count else CODE_BASE + (index << 2))
        raise ReplayDivergence(
            f"unexpected {fault.kind} fault at {pc_before:#010x} "
            f"(ic={steps}) during replay: {fault}"
        ) from fault
    if interface.pending is not None:
        unconsumed = len(interface.records) - interface.cursor
        raise ReplayDivergence(
            f"{unconsumed} unconsumed FLL records after "
            f"replaying {fll.end_ic} instructions"
        )
    _REPLAYED_INSTRUCTIONS.inc(steps)
    end_pc = badpc[0] if index == count else CODE_BASE + (index << 2)
    return FastIntervalResult(
        fll=fll,
        end_pc=end_pc,
        end_regs=tuple(regs),
        records_consumed=interface.consumed,
    )
