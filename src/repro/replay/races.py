"""Multithreaded replay: ordering and race inference (paper Section 5.2).

Each thread replays independently from its FLLs — the per-thread logs
are self-contained.  The MRLs then impose cross-thread ordering: an
entry ``(local.IC, remote.TID, remote.CID, remote.IC)`` in thread T's
interval C says *remote thread remote.TID had committed remote.IC
instructions of its interval remote.CID before T's instruction
local.IC+1 executed*.

We (1) map every (tid, cid, ic) position to a global per-thread
instruction index, (2) run a constraint-respecting merge to produce a
valid sequentially-consistent interleaving, and (3) infer data races:
conflicting accesses from different threads with no happens-before path
between them, computed with segment vector clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.config import BugNetConfig
from repro.common.errors import ReplayDivergence, ReproError
from repro.replay.replayer import IntervalReplay, Replayer
from repro.tracing.backing import LogStore
from repro.tracing.mrl import MRLReader

if TYPE_CHECKING:
    from repro.analysis.static.lockset import RaceCandidates


@dataclass(frozen=True)
class Constraint:
    """remote thread must reach *remote_index* before *local_index* runs.

    Indices are 0-based global instruction ordinals per thread;
    ``local_index`` is the instruction that observed the reply.
    """

    local_tid: int
    local_index: int
    remote_tid: int
    remote_index: int


@dataclass(frozen=True)
class RaceReport:
    """One inferred data race between two unordered conflicting accesses."""

    addr: int
    first: tuple[int, int, int]   # (tid, global instruction index, pc)
    second: tuple[int, int, int]
    kinds: tuple[str, str]        # "load"/"store" for each side

    def __str__(self) -> str:
        a, b = self.first, self.second
        return (
            f"race on {self.addr:#010x}: "
            f"t{a[0]}@{a[1]} ({self.kinds[0]} at pc={a[2]:#x}) vs "
            f"t{b[0]}@{b[1]} ({self.kinds[1]} at pc={b[2]:#x})"
        )


@dataclass
class TracedThreadReplay:
    """One thread's compiled-path replay summary (the fast MT mode).

    Carries what the fleet validation and race inference consume — the
    access stream and the final machine state — without per-instruction
    event objects.  Produced by :func:`replay_all_threads` with
    ``fast=True`` from :class:`~repro.replay.fastreplay.ChainTrace`
    captures (full PC stream, 4-tuple accesses), or with
    ``slim=True`` from :class:`~repro.replay.fastreplay.AccessTrace`
    captures (``pcs`` is ``None``; accesses are 5-tuples carrying their
    own PC; ``tail_pcs`` holds the signature tail and
    ``instruction_count`` the exact replayed length).
    """

    pcs: "list[int] | None"
    accesses: list  # (index, addr, value, load?[, pc])
    end_pc: int
    end_regs: tuple[int, ...]
    intervals: int
    memory: object = None
    instruction_count: int = -1
    tail_pcs: "tuple[int, ...] | None" = None

    @property
    def instructions(self) -> int:
        if self.pcs is not None:
            return len(self.pcs)
        return self.instruction_count


@dataclass
class MultiThreadReplay:
    """The stitched result of replaying every thread in a LogStore.

    Exactly one of two storages is populated: *per_thread* (reference
    interpreter, per-instruction :class:`ReplayEvent` lists — what the
    debugger front-ends consume) or *traced* (compiled fast path,
    :class:`TracedThreadReplay` summaries — what fleet validation
    consumes).  Constraints, schedule and race inference are computed
    identically over either (``tests/test_fastreplay.py`` pins it).
    """

    per_thread: dict[int, list[IntervalReplay]]
    constraints: list[Constraint]
    traced: "dict[int, TracedThreadReplay] | None" = None
    _schedule: "list[tuple[int, int]] | None" = field(
        default=None, repr=False, compare=False,
    )

    @property
    def schedule(self) -> list[tuple[int, int]]:
        """A valid interleaving as (tid, index) steps, merged lazily.

        Stitching the full schedule is the most expensive step of MT
        replay and race inference never needs it (it works from vector
        clocks), so it is computed on first access — the debugger
        front-ends that walk the interleaving still see exactly what
        the eager merge produced.
        """
        if self._schedule is None:
            self._schedule = _merge_schedule(self)
        return self._schedule

    @schedule.setter
    def schedule(self, value: list[tuple[int, int]]) -> None:
        self._schedule = value

    @property
    def thread_ids(self) -> list[int]:
        source = self.traced if self.traced is not None else self.per_thread
        return sorted(source)

    def thread_length(self, tid: int) -> int:
        """Total replayed instructions for a thread."""
        if self.traced is not None:
            return self.traced[tid].instructions
        return sum(r.instructions for r in self.per_thread[tid])

    def event_at(self, tid: int, index: int):
        """The ReplayEvent for a thread's global instruction *index*
        (reference mode only — the fast mode keeps no event objects)."""
        for replay in self.per_thread[tid]:
            if index < replay.instructions:
                return replay.events[index]
            index -= replay.instructions
        raise IndexError(f"thread {tid} has no instruction {index}")

    def access_map(
        self, addrs: "set[int] | None" = None,
    ) -> "dict[int, list[tuple[int, int, int, str]]]":
        """addr -> [(tid, index, pc, "load"|"store")] in replay order.

        The shape race inference consumes; *addrs* restricts the map to
        the given addresses (the validation-time relevance filter,
        which also skips building entries nobody will look at).
        """
        accesses: dict[int, list[tuple[int, int, int, str]]] = {}
        if self.traced is not None:
            for tid in sorted(self.traced):
                thread = self.traced[tid]
                pcs = thread.pcs
                if pcs is not None:
                    for index, addr, _value, is_load in thread.accesses:
                        if addrs is not None and addr not in addrs:
                            continue
                        accesses.setdefault(addr, []).append(
                            (tid, index, pcs[index],
                             "load" if is_load else "store")
                        )
                else:  # slim capture: the PC rides in the access tuple
                    for index, addr, _value, is_load, pc in thread.accesses:
                        if addrs is not None and addr not in addrs:
                            continue
                        accesses.setdefault(addr, []).append(
                            (tid, index, pc, "load" if is_load else "store")
                        )
            return accesses
        for tid in sorted(self.per_thread):
            index = 0
            for interval in self.per_thread[tid]:
                for event in interval.events:
                    if event.store is not None:
                        if addrs is None or event.store[0] in addrs:
                            accesses.setdefault(event.store[0], []).append(
                                (tid, index, event.pc, "store")
                            )
                    elif event.load is not None:
                        if addrs is None or event.load[0] in addrs:
                            accesses.setdefault(event.load[0], []).append(
                                (tid, index, event.pc, "load")
                            )
                    index += 1
        return accesses


def _index_intervals(
    store: LogStore,
) -> "tuple[dict[int, list], dict[tuple[int, int], int]]":
    """Map every resident interval to its thread-global start index.

    Returns ``(flls_by_tid, base_index)`` where ``base_index[(tid,
    cid)]`` is the thread-global ordinal of that interval's first
    instruction.  Rejects duplicate resident C-IDs — an MRL entry could
    not name which incarnation it meant.
    """
    flls_by_tid: dict[int, list] = {}
    base_index: dict[tuple[int, int], int] = {}
    for tid in store.threads():
        flls = [cp.fll for cp in store.checkpoints(tid)]
        start = 0
        for fll in flls:
            key = (tid, fll.header.cid)
            if key in base_index:
                raise ReplayDivergence(
                    f"thread {tid} has two resident intervals with C-ID "
                    f"{fll.header.cid}; raise max_resident_checkpoints"
                )
            base_index[key] = start
            start += fll.end_ic
        flls_by_tid[tid] = flls
    return flls_by_tid, base_index


def _mrl_constraints(
    store: LogStore,
    config: BugNetConfig,
    base_index: "dict[tuple[int, int], int]",
    lengths: "dict[int, int]",
) -> list[Constraint]:
    """Decode every MRL in *store* into replay-index constraints.

    Entries whose remote interval was evicted are skipped (they cannot
    bind anything we replay); entries whose indices land outside the
    replayed streams are rejected — real recorders cannot produce them,
    so they are corruption, and silently ignoring them would let a
    tampered MRL pass fleet validation.
    """
    constraints: list[Constraint] = []
    for tid in store.threads():
        for checkpoint in store.checkpoints(tid):
            mrl = checkpoint.mrl
            local_base = base_index[(tid, mrl.header.cid)]
            for entry in MRLReader(config, mrl).decode_all():
                # The observing instruction is a 0-based index inside
                # its own interval, so anything at or past end_ic is
                # corruption — checked per interval, not against the
                # thread total, or a tampered entry would silently
                # re-attribute to a later interval's instruction (or
                # become a dead constraint _merge_schedule never
                # consults).
                if entry.local_ic >= checkpoint.fll.end_ic:
                    raise ReplayDivergence(
                        f"thread {tid} MRL entry at local ic "
                        f"{entry.local_ic} lies beyond interval "
                        f"C-ID {mrl.header.cid} "
                        f"({checkpoint.fll.end_ic} instructions)"
                    )
                local_index = local_base + entry.local_ic
                remote_key = (entry.remote_tid, entry.remote_cid)
                if remote_key not in base_index:
                    # The remote interval was evicted from the bounded log
                    # region; the constraint cannot bind anything we replay.
                    continue
                remote_index = base_index[remote_key] + entry.remote_ic
                if remote_index > lengths.get(entry.remote_tid, 0):
                    raise ReplayDivergence(
                        f"thread {tid} MRL entry points at remote ic "
                        f"{entry.remote_ic} beyond thread "
                        f"{entry.remote_tid}'s replayed stream"
                    )
                constraints.append(Constraint(
                    local_tid=tid,
                    local_index=local_index,
                    remote_tid=entry.remote_tid,
                    remote_index=remote_index,
                ))
    return constraints


def replay_all_threads(
    store: LogStore,
    programs: "dict[int, object]",
    config: BugNetConfig,
    fast: bool = False,
    spans=None,
    slim: bool = False,
    tail_depth: int = 0,
    faulting_tid: "int | None" = None,
    evidence_window: int = 0,
) -> MultiThreadReplay:
    """Replay every thread in *store* and derive the ordering constraints.

    *programs* maps tid → the Program each thread ran (threads of one
    process share a binary; we allow distinct ones for generality).

    *fast* selects the compiled-dispatch traced replay
    (:mod:`repro.replay.fastreplay`): no per-instruction event objects,
    same end states, same constraints, same schedule, same inferred
    races — the mode fleet validation runs at scale, equivalence-pinned
    against the reference interpreter by ``tests/test_fastreplay.py``.

    *slim* (implies *fast*) runs every thread on the block-compiled
    :class:`~repro.replay.fastreplay.AccessTrace` path: no PC stream is
    kept — each thread records its memory accesses (with PCs), its
    exact instruction count, and the last *tail_depth* PCs
    (``tail_pcs``, the signature tail).  When *faulting_tid* is given,
    that thread replays first and in full, the addresses its last
    *evidence_window* instructions loaded become the relevance set, and
    every other thread records only accesses at those addresses —
    identical race evidence (``infer_races`` with ``addrs`` = that
    same set) at a fraction of the tracing cost.

    *spans* (a :class:`repro.obs.SpanRecorder`) times the named stages
    — one ``chain-replay`` span per thread, one ``mrl-merge`` span for
    constraint decoding + the feasibility check — without changing the
    replay itself.
    """
    if spans is None:
        from repro.obs import NULL_RECORDER as spans  # noqa: N811
    flls_by_tid, base_index = _index_intervals(store)
    per_thread: dict[int, list[IntervalReplay]] = {}
    traced: "dict[int, TracedThreadReplay] | None" = None
    if slim:
        from collections import deque

        from repro.arch.memory import Memory
        from repro.replay.fastreplay import AccessTrace, fast_replay_interval

        traced = {}
        order = sorted(flls_by_tid)
        if faulting_tid is not None and faulting_tid in flls_by_tid:
            order.remove(faulting_tid)
            order.insert(0, faulting_tid)
        filter_addrs: "frozenset[int] | None" = None
        for tid in order:
            flls = flls_by_tid[tid]
            use_filter = faulting_tid is not None and tid != faulting_tid
            trace = AccessTrace(filter_addrs if use_filter else None)
            tail: "deque[int]" = deque(maxlen=max(tail_depth, 1))
            memory = Memory(fault_checks=False)
            last = None
            try:
                with spans.span("chain-replay", detail=f"t{tid}"):
                    for fll in flls:
                        last = fast_replay_interval(
                            programs[tid], config, fll,
                            memory=memory, access_trace=trace,
                            tail=tail, tail_depth=tail.maxlen,
                        )
            except (ReproError, LookupError) as error:
                raise ReplayDivergence(
                    f"thread {tid} chain replay failed: {error}"
                ) from error
            traced[tid] = TracedThreadReplay(
                pcs=None,
                accesses=trace.accesses,
                end_pc=last.end_pc if last is not None else 0,
                end_regs=last.end_regs if last is not None else (),
                intervals=len(flls),
                memory=memory,
                instruction_count=trace.instructions,
                tail_pcs=tuple(tail),
            )
            if tid == faulting_tid:
                cutoff = trace.instructions - evidence_window
                relevant: "set[int]" = set()
                for entry in reversed(trace.accesses):
                    if entry[0] < cutoff:
                        break
                    if entry[3]:
                        relevant.add(entry[1])
                filter_addrs = frozenset(relevant)
    elif fast:
        from repro.arch.memory import Memory
        from repro.replay.fastreplay import ChainTrace, fast_replay_interval

        traced = {}
        for tid, flls in flls_by_tid.items():
            trace = ChainTrace()
            memory = Memory(fault_checks=False)
            last = None
            try:
                with spans.span("chain-replay", detail=f"t{tid}"):
                    for fll in flls:
                        last = fast_replay_interval(
                            programs[tid], config, fll,
                            memory=memory, trace=trace,
                        )
            except (ReproError, LookupError) as error:
                # Name the thread: fleet validation surfaces this as the
                # rejection reason, and "thread 1's logs are corrupt"
                # beats a bare dictionary-index failure.
                raise ReplayDivergence(
                    f"thread {tid} chain replay failed: {error}"
                ) from error
            traced[tid] = TracedThreadReplay(
                pcs=trace.pcs,
                accesses=trace.accesses,
                end_pc=last.end_pc if last is not None else 0,
                end_regs=last.end_regs if last is not None else (),
                intervals=len(flls),
                memory=memory,
            )
    else:
        for tid, flls in flls_by_tid.items():
            with spans.span("chain-replay", detail=f"t{tid}"):
                per_thread[tid] = Replayer(programs[tid], config).replay(flls)

    result = MultiThreadReplay(
        per_thread=per_thread, constraints=[], traced=traced,
    )
    with spans.span("mrl-merge"):
        lengths = {
            tid: result.thread_length(tid) for tid in result.thread_ids
        }
        result.constraints = _mrl_constraints(
            store, config, base_index, lengths)
        _check_constraints(result)
    return result


#: Memoized feasibility verdicts keyed by the exact constraint tuple —
#: the (program, interleave-class) identity.  Duplicate-heavy fleet
#: traffic re-validates reports whose MRLs decode to identical
#: constraint sets; feasibility is a pure function of the set, so the
#: verdict (or the exact rejection message) is replayed from cache.
_FEASIBLE_CACHE: "dict[tuple, str | None]" = {}
_FEASIBLE_CACHE_LIMIT = 512


def _check_constraints(replay: MultiThreadReplay) -> None:
    """Reject constraint sets no interleaving can satisfy.

    Equivalent to (and much cheaper than) eagerly merging the full
    schedule just to see whether it gets stuck: only constraint
    *endpoints* become graph nodes — the instructions between two
    endpoints of one thread always run as an uninterrupted block — so
    the check costs O(C log C) in the number of constraints rather
    than O(total instructions).  A cycle means the MRLs demand thread
    A wait on a part of thread B that itself waits on a later part of
    A: corruption or tampering, never a real recording.
    """
    if not replay.constraints:
        return
    memo_key = tuple(replay.constraints)
    if memo_key in _FEASIBLE_CACHE:
        message = _FEASIBLE_CACHE[memo_key]
        if message is not None:
            raise ReplayDivergence(message)
        return
    if len(_FEASIBLE_CACHE) >= _FEASIBLE_CACHE_LIMIT:
        _FEASIBLE_CACHE.clear()
    try:
        _check_constraints_uncached(replay)
    except ReplayDivergence as error:
        _FEASIBLE_CACHE[memo_key] = str(error)
        raise
    _FEASIBLE_CACHE[memo_key] = None


def _check_constraints_uncached(replay: MultiThreadReplay) -> None:
    indices: dict[int, set[int]] = {}
    cross: list[tuple[tuple[int, int], tuple[int, int]]] = []
    for constraint in replay.constraints:
        if constraint.remote_index <= 0:
            continue  # waits for nothing; trivially satisfied
        indices.setdefault(constraint.local_tid, set()).add(constraint.local_index)
        indices.setdefault(constraint.remote_tid, set()).add(
            constraint.remote_index - 1
        )
        cross.append((
            (constraint.remote_tid, constraint.remote_index - 1),
            (constraint.local_tid, constraint.local_index),
        ))
    successors: dict[tuple[int, int], list[tuple[int, int]]] = {}
    indegree: dict[tuple[int, int], int] = {}
    for tid, points in indices.items():
        chain = sorted(points)
        for point in chain:
            successors[(tid, point)] = []
            indegree[(tid, point)] = 0
        for earlier, later in zip(chain, chain[1:]):
            successors[(tid, earlier)].append((tid, later))
            indegree[(tid, later)] += 1
    for release, waiter in cross:
        successors[release].append(waiter)
        indegree[waiter] += 1
    ready = [node for node, degree in indegree.items() if degree == 0]
    processed = 0
    while ready:
        node = ready.pop()
        processed += 1
        for successor in successors[node]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)
    if processed != len(indegree):
        stuck: dict[int, int] = {}
        for (tid, index), degree in indegree.items():
            if degree > 0:
                stuck[tid] = min(stuck.get(tid, index), index)
        raise ReplayDivergence(
            f"MRL constraints form a cycle; threads stuck at {stuck}"
        )


def _merge_schedule(
    replay: MultiThreadReplay,
    extra_constraints: list[Constraint] = (),
) -> list[tuple[int, int]]:
    """A valid interleaving: round-robin merge honoring all constraints."""
    tids = replay.thread_ids
    lengths = {tid: replay.thread_length(tid) for tid in tids}
    progress = {tid: 0 for tid in tids}
    # waiting[tid][index] -> list of (remote_tid, remote_index) prerequisites
    waiting: dict[int, dict[int, list[tuple[int, int]]]] = {
        tid: {} for tid in tids
    }
    for constraint in list(replay.constraints) + list(extra_constraints):
        waiting[constraint.local_tid].setdefault(constraint.local_index, []).append(
            (constraint.remote_tid, constraint.remote_index)
        )
    schedule: list[tuple[int, int]] = []
    total = sum(lengths.values())
    while len(schedule) < total:
        advanced = False
        for tid in tids:
            while progress[tid] < lengths[tid]:
                index = progress[tid]
                prerequisites = waiting[tid].get(index, ())
                if any(progress[remote] < need for remote, need in prerequisites):
                    break
                schedule.append((tid, index))
                progress[tid] = index + 1
                advanced = True
        if not advanced:
            stuck = {tid: progress[tid] for tid in tids if progress[tid] < lengths[tid]}
            raise ReplayDivergence(
                f"MRL constraints form a cycle; threads stuck at {stuck}"
            )
    return schedule


class ReportLogs:
    """Adapter: a CrashReport's checkpoint map viewed as a LogStore.

    *grounded* restricts each thread to its replayable chain (earliest
    resident major checkpoint onward) — what fleet validation replays;
    the default exposes every resident checkpoint, matching what
    :class:`~repro.tracing.backing.LogStore` holds at record time.
    """

    def __init__(self, report, grounded: bool = False) -> None:
        if grounded:
            self._checkpoints = {
                tid: chain
                for tid in report.thread_ids
                if (chain := report.grounded_checkpoints(tid))
            }
        else:
            self._checkpoints = report.checkpoints

    def threads(self) -> list[int]:
        return sorted(self._checkpoints)

    def checkpoints(self, tid: int):
        return self._checkpoints[tid]


def sync_constraints(
    replay: MultiThreadReplay,
    sync_edges: list[tuple[int, int, int, int]],
    total_instructions: dict[int, int] | None = None,
) -> list[Constraint]:
    """Convert kernel lock-handoff edges into replay-index constraints.

    *sync_edges* entries are ``(releaser_tid, instructions the releaser
    had committed, acquirer_tid, acquirer's first post-lock index)`` in
    whole-run thread-local indices.  When log eviction trimmed the
    replayable window, *total_instructions* (per tid, from the crash
    report) rebases them onto replay indices; edges touching the evicted
    prefix clamp to the window start, which only ever weakens ordering
    (sound for race detection).
    """
    offsets = {tid: 0 for tid in replay.thread_ids}
    if total_instructions:
        for tid in offsets:
            total = total_instructions.get(tid)
            if total is not None:
                offsets[tid] = total - replay.thread_length(tid)
    constraints = []
    for releaser_tid, released_after, acquirer_tid, acquire_index in sync_edges:
        if releaser_tid not in offsets or acquirer_tid not in offsets:
            continue
        remote_index = released_after - offsets[releaser_tid]
        local_index = acquire_index - offsets[acquirer_tid]
        if remote_index <= 0 or local_index < 0:
            continue  # touches the evicted prefix; no ordering inside window
        constraints.append(Constraint(
            local_tid=acquirer_tid,
            local_index=local_index,
            remote_tid=releaser_tid,
            remote_index=remote_index,
        ))
    return constraints


def _segment_clocks(
    replay: MultiThreadReplay,
    constraints: list[Constraint],
) -> dict[int, list[tuple[int, dict[int, int]]]]:
    """Vector clocks per thread segment under the given edge set.

    Threads are cut into segments at constraint endpoints; each segment
    gets the vector clock of everything that happens-before its start.
    Returns tid -> list of (segment_start_index, clock) sorted by start.
    """
    tids = replay.thread_ids
    if not constraints:
        # No edges: each thread is one segment that has seen nothing
        # of the others.  Skip the full-schedule sweep — this is the
        # fleet-validation common case (no kernel sync edges ship in
        # the crash report) and the sweep dominated its profile.
        return {tid: [(0, {tid: 0})] for tid in tids}
    cut_points: dict[int, set[int]] = {tid: {0} for tid in tids}
    for constraint in constraints:
        # The local instruction waits: a new segment begins at it.
        cut_points[constraint.local_tid].add(constraint.local_index)
        # The remote side releases after remote_index: segment boundary there.
        cut_points[constraint.remote_tid].add(constraint.remote_index)

    # Process instructions in a valid global order, maintaining running
    # vector clocks; record the clock at each segment start.  The sweep
    # order must respect the sync edges themselves (they carry no
    # coherence traffic, so the MRL-only schedule may reorder around
    # them), so merge a schedule over the union.
    sweep = _merge_schedule(replay, extra_constraints=constraints)
    clocks: dict[int, dict[int, int]] = {
        tid: {tid: 0} for tid in tids
    }
    segment_clocks: dict[int, list[tuple[int, dict[int, int]]]] = {
        tid: [] for tid in tids
    }
    releases: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for constraint in constraints:
        releases.setdefault(
            (constraint.local_tid, constraint.local_index), []
        ).append((constraint.remote_tid, constraint.remote_index))
    start_sets = {tid: set(points) for tid, points in cut_points.items()}
    # Snapshot clocks at release points as we sweep the schedule.
    release_snapshots: dict[tuple[int, int], dict[int, int]] = {}
    for tid, index in sweep:
        if index in start_sets[tid]:
            for remote_tid, remote_index in releases.get((tid, index), ()):
                # remote_index instructions are committed, so the newest
                # knowledge is the snapshot taken after instruction
                # remote_index - 1 executed.
                snapshot = release_snapshots.get((remote_tid, remote_index - 1))
                if snapshot:
                    clock = clocks[tid]
                    for k, v in snapshot.items():
                        if clock.get(k, -1) < v:
                            clock[k] = v
            segment_clocks[tid].append((index, dict(clocks[tid])))
        clocks[tid][tid] = index + 1
        key = (tid, index)
        release_snapshots[key] = dict(clocks[tid])
    return segment_clocks


def _clock_at(segments: list[tuple[int, dict[int, int]]], index: int) -> dict[int, int]:
    """The vector clock governing instruction *index* (binary search)."""
    low, high = 0, len(segments) - 1
    best = segments[0][1]
    while low <= high:
        mid = (low + high) // 2
        if segments[mid][0] <= index:
            best = segments[mid][1]
            low = mid + 1
        else:
            high = mid - 1
    return best


def infer_races(
    replay: MultiThreadReplay,
    sync: list[Constraint] | None = None,
    max_reports: int = 100,
    addrs: "set[int] | None" = None,
    candidates: "RaceCandidates | None" = None,
) -> list[RaceReport]:
    """Find conflicting access pairs unordered by *synchronization*.

    Happens-before is computed from lock handoffs (*sync*, built with
    :func:`sync_constraints`) — NOT from the MRL coherence edges, which
    by construction order every conflicting pair and only tell us how
    the race resolved this time.  A conflicting pair (same address,
    different threads, at least one write) with no sync path between its
    sides is a data race; the MRL schedule shows the interleaving that
    actually happened.

    Reports at most *max_reports* races, one per (address, thread-pair,
    kind), to keep output readable.  *addrs* restricts inference to the
    given addresses — how fleet validation asks only about the words
    feeding the crash, so the report cap cannot starve the relevant
    race behind benign shared traffic.

    *candidates* is the static pruning hook
    (:func:`repro.analysis.static.lockset.race_candidates`): pairs of
    PCs the lockset analysis proved non-aliasing or common-lock-guarded
    are skipped without consulting the clocks.  Because proven pairs
    cannot be reported by the unpruned path either (non-aliasing pairs
    never share an address; lock-guarded pairs are ordered by the sync
    edges), pruning never changes the reports — pinned across the bug
    suite by ``tests/test_race_pruning.py``.
    """
    sync_edges = list(sync) if sync else []
    # With no lock handoffs there is no happens-before at all, so every
    # conflicting cross-thread pair races — skip the clocks entirely.
    segments = _segment_clocks(replay, sync_edges) if sync_edges else None
    accesses = replay.access_map(addrs)

    def ordered(a: tuple[int, int, int, str], b: tuple[int, int, int, str]) -> bool:
        """True if a happens-before b or b happens-before a."""
        tid_a, idx_a = a[0], a[1]
        tid_b, idx_b = b[0], b[1]
        clock_b = _clock_at(segments[tid_b], idx_b)
        if clock_b.get(tid_a, 0) > idx_a:
            return True
        clock_a = _clock_at(segments[tid_a], idx_a)
        return clock_a.get(tid_b, 0) > idx_b

    reports: list[RaceReport] = []
    seen: set[tuple[int, int, int, str, str]] = set()
    for addr, entries in accesses.items():
        if len(entries) < 2:
            continue
        writers = [e for e in entries if e[3] == "store"]
        if not writers:
            continue
        for write in writers:
            for other in entries:
                if other[0] == write[0]:
                    continue
                if candidates is not None and not candidates.may_race(
                    write[2], other[2]
                ):
                    continue
                key = (addr, min(write[0], other[0]), max(write[0], other[0]),
                       write[3], other[3])
                if key in seen:
                    continue
                if segments is None or not ordered(write, other):
                    seen.add(key)
                    first, second = sorted((write, other), key=lambda e: (e[0], e[1]))
                    reports.append(RaceReport(
                        addr=addr,
                        first=(first[0], first[1], first[2]),
                        second=(second[0], second[1], second[2]),
                        kinds=(first[3], second[3]),
                    ))
                    if len(reports) >= max_reports:
                        return reports
    return reports
