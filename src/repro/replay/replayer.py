"""Single-thread deterministic replay (paper Section 5.1).

To replay one checkpoint interval the replayer:

1. loads the *same binary* at the same addresses (Section 5.3),
2. clears data memory and initializes PC + registers from the FLL
   header,
3. re-executes instructions; on each load it decides — by counting the
   loads skipped since the last consumed record (the L-Count cursor) —
   whether the value comes from the log or from replay-simulated
   memory;
4. decodes dictionary-encoded values against a dictionary simulated with
   exactly the recorder's update rules;
5. stops at the recorded end of the interval.  Synchronous interrupts
   (syscalls) are NOPs during replay; execution continues with the next
   FLL.

Replay memory runs with fault checks off: every address the recorded
execution touched is reconstructed from the log, and the replay stops
before the faulting instruction, so protection state is unnecessary (the
paper's replayer likewise just "clears all of the data memory
locations").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cpu import CPU
from repro.arch.memory import Memory
from repro.arch.program import Program
from repro.common.config import BugNetConfig
from repro.common.errors import Fault, ReplayDivergence
from repro.tracing.dictionary import DictionaryCompressor
from repro.tracing.fll import FLL, FLLReader


@dataclass(frozen=True)
class ReplayEvent:
    """One replayed instruction, as exposed to debugger front-ends."""

    ic: int                      # 1-based instruction count within the interval
    pc: int
    op: str
    load: tuple[int, int] | None = None    # (address, value)
    store: tuple[int, int] | None = None   # (address, value)
    from_log: bool = False                 # load value consumed from the FLL


@dataclass
class IntervalReplay:
    """The outcome of replaying one checkpoint interval."""

    fll: FLL
    events: list[ReplayEvent] = field(default_factory=list)
    end_pc: int = 0
    end_regs: tuple[int, ...] = ()
    records_consumed: int = 0
    fault: Fault | None = None

    @property
    def instructions(self) -> int:
        """Committed instructions replayed."""
        return self.fll.end_ic


class _ReplayMemory:
    """Memory interface that interposes the FLL's first-load values."""

    __slots__ = ("memory", "dictionary", "reader", "pending", "skipped",
                 "consumed", "last_load", "last_from_log", "last_store")

    def __init__(self, memory: Memory, dictionary: DictionaryCompressor,
                 reader: FLLReader) -> None:
        self.memory = memory
        self.dictionary = dictionary
        self.reader = reader
        self.pending = reader.next_record() if reader.remaining else None
        self.skipped = 0
        self.consumed = 0
        self.last_load: tuple[int, int] | None = None
        self.last_from_log = False
        self.last_store: tuple[int, int] | None = None

    def load(self, addr: int) -> int:
        pending = self.pending
        if pending is not None and self.skipped == pending[0]:
            _, encoded, raw = pending
            value = self.dictionary.value_at(raw) if encoded else raw
            self.memory.poke(addr, value)
            self.pending = (
                self.reader.next_record() if self.reader.remaining else None
            )
            self.skipped = 0
            self.consumed += 1
            self.last_from_log = True
        else:
            value = self.memory.peek(addr)
            self.skipped += 1
            self.last_from_log = False
        self.dictionary.update(value)
        self.last_load = (addr, value)
        return value

    def store(self, addr: int, value: int) -> None:
        self.memory.poke(addr, value)
        self.last_store = (addr, value & 0xFFFFFFFF)


class Replayer:
    """Replays a thread's execution from its sequence of FLLs."""

    def __init__(self, program: Program, config: BugNetConfig) -> None:
        self.program = program
        self.config = config

    def replay_interval(
        self,
        fll: FLL,
        memory: Memory | None = None,
        collect_events: bool = True,
        event_sink=None,
    ) -> IntervalReplay:
        """Replay one interval; returns events and final state.

        *memory* carries reconstructed state across consecutive intervals
        of the same thread (pass the previous interval's memory to keep
        unlogged values warm); a fresh empty memory is also always
        correct, exactly because every first access is logged.
        """
        if memory is None:
            memory = Memory(fault_checks=False)
        else:
            memory.fault_checks = False
        dictionary = DictionaryCompressor(self.config.dictionary)
        reader = FLLReader(self.config, fll)
        interface = _ReplayMemory(memory, dictionary, reader)
        cpu = CPU(self.program, interface)
        cpu.pc = fll.header.pc
        cpu.regs.restore(fll.header.regs)
        cpu.syscall_handler = lambda _cpu: None  # syscalls replay as NOPs
        result = IntervalReplay(fll=fll)
        events = result.events
        while cpu.inst_count < fll.end_ic:
            interface.last_load = None
            interface.last_store = None
            # Reset per instruction: without this, from_log leaks onto
            # every non-load instruction after a logged load (which,
            # among other things, made the debugger's truncated-interval
            # replay overcount consumed records and fail mid-interval).
            interface.last_from_log = False
            pc_before = cpu.pc
            try:
                ins = cpu.step()
            except Fault as fault:
                # A fault strictly inside the interval means the log and
                # the binary disagree — recorded intervals only fault at
                # their very end, past end_ic.
                raise ReplayDivergence(
                    f"unexpected {fault.kind} fault at {pc_before:#010x} "
                    f"(ic={cpu.inst_count}) during replay: {fault}"
                ) from fault
            if collect_events or event_sink is not None:
                event = ReplayEvent(
                    ic=cpu.inst_count,
                    pc=pc_before,
                    op=ins.op,
                    load=interface.last_load,
                    store=interface.last_store,
                    from_log=interface.last_from_log,
                )
                if collect_events:
                    events.append(event)
                if event_sink is not None:
                    event_sink(event)
        if interface.pending is not None:
            raise ReplayDivergence(
                f"{reader.remaining + 1} unconsumed FLL records after "
                f"replaying {fll.end_ic} instructions"
            )
        result.end_pc = cpu.pc
        result.end_regs = cpu.regs.snapshot()
        result.records_consumed = interface.consumed
        return result

    def replay(
        self,
        flls: list[FLL],
        collect_events: bool = True,
        event_sink=None,
    ) -> list[IntervalReplay]:
        """Replay consecutive intervals, carrying memory state across them."""
        memory = Memory(fault_checks=False)
        return [
            self.replay_interval(
                fll, memory=memory,
                collect_events=collect_events, event_sink=event_sink,
            )
            for fll in flls
        ]

    def probe_fault(
        self,
        fll: FLL,
        memory: Memory,
        end_pc: int,
        end_regs: tuple[int, ...],
        mapped_pages: "frozenset[int] | None" = None,
    ) -> Fault | None:
        """Re-execute the faulting instruction recorded at the interval end.

        The OS recorded the faulting PC in the final FLL (Section 4.8);
        this confirms the replayed state actually faults there.  Memory
        protection faults need the page map the OS captured in the crash
        report (the same OS driver the paper uses to record library load
        addresses); pass it as *mapped_pages*.
        """
        if fll.fault_pc is None:
            return None
        probe = _ProbeMemory(memory, mapped_pages)
        cpu = CPU(self.program, probe)
        cpu.pc = end_pc
        cpu.regs.restore(end_regs)
        cpu.syscall_handler = lambda _cpu: None
        try:
            cpu.step()
        except Fault as fault:
            return fault
        return None


class _ProbeMemory:
    """Checked view used only for fault probing."""

    __slots__ = ("memory", "pages")

    def __init__(self, memory: Memory, mapped_pages: "frozenset[int] | None") -> None:
        self.memory = memory
        self.pages = mapped_pages

    def _check(self, addr: int) -> None:
        from repro.common.errors import AlignmentFault, MemoryFault

        if addr & 3:
            raise AlignmentFault(f"unaligned word access at {addr:#010x}")
        if self.pages is not None and (addr >> 12) not in self.pages:
            raise MemoryFault(f"access to unmapped address {addr:#010x}")

    def load(self, addr: int) -> int:
        self._check(addr)
        return self.memory.peek(addr)

    def store(self, addr: int, value: int) -> None:
        self._check(addr)
        self.memory.poke(addr, value)
