"""Trace-equivalence validation: the determinism contract, made testable.

The recording machine can attach a :class:`TraceCollector` that captures
the committed-instruction stream — (pc, op, load, store) per instruction
— and the replayer produces :class:`~repro.replay.replayer.ReplayEvent`
streams.  :func:`assert_traces_equal` compares them and raises
:class:`~repro.common.errors.ReplayDivergence` with a precise diagnosis
on the first mismatch.

For long runs, :class:`TraceCollector` can run in *digest* mode: it
folds every event into a 64-bit rolling hash instead of storing it, so
million-instruction recordings validate in O(1) memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReplayDivergence
from repro.replay.replayer import ReplayEvent

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _fold(digest: int, *values: int) -> int:
    for value in values:
        digest ^= value & _MASK64
        digest = (digest * _FNV_PRIME) & _MASK64
    return digest


@dataclass(frozen=True)
class TraceRecord:
    """One committed instruction on the recording side."""

    pc: int
    op: str
    load: tuple[int, int] | None
    store: tuple[int, int] | None


class TraceCollector:
    """Collects (or digests) the architectural event stream while recording."""

    def __init__(self, digest_only: bool = False) -> None:
        self.digest_only = digest_only
        self.records: list[TraceRecord] = []
        self.digest = _FNV_OFFSET
        self.count = 0

    def commit(self, pc: int, op: str,
               load: tuple[int, int] | None,
               store: tuple[int, int] | None) -> None:
        """Account one committed instruction."""
        self.count += 1
        self.digest = _fold(
            self.digest,
            pc,
            hash(op),
            -1 if load is None else _fold(0, load[0], load[1]),
            -1 if store is None else _fold(0, store[0], store[1]),
        )
        if not self.digest_only:
            self.records.append(TraceRecord(pc, op, load, store))

    def digest_of_replay(self, events: "list[ReplayEvent]") -> int:
        """Digest a replayed event stream with the same folding."""
        digest = _FNV_OFFSET
        for event in events:
            digest = _fold(
                digest,
                event.pc,
                hash(event.op),
                -1 if event.load is None else _fold(0, *event.load),
                -1 if event.store is None else _fold(0, *event.store),
            )
        return digest


def assert_traces_equal(
    recorded: TraceCollector,
    replayed_events: list[ReplayEvent],
    context: str = "",
) -> None:
    """Raise ReplayDivergence unless the replay reproduces the recording."""
    prefix = f"{context}: " if context else ""
    if recorded.digest_only:
        if recorded.count != len(replayed_events):
            raise ReplayDivergence(
                f"{prefix}instruction counts differ: recorded "
                f"{recorded.count}, replayed {len(replayed_events)}"
            )
        if recorded.digest != recorded.digest_of_replay(replayed_events):
            raise ReplayDivergence(f"{prefix}trace digests differ")
        return
    if len(recorded.records) != len(replayed_events):
        raise ReplayDivergence(
            f"{prefix}instruction counts differ: recorded "
            f"{len(recorded.records)}, replayed {len(replayed_events)}"
        )
    for position, (want, got) in enumerate(zip(recorded.records, replayed_events)):
        if want.pc != got.pc:
            raise ReplayDivergence(
                f"{prefix}pc diverges at instruction {position}: "
                f"recorded {want.pc:#010x}, replayed {got.pc:#010x}"
            )
        if want.op != got.op:
            raise ReplayDivergence(
                f"{prefix}op diverges at instruction {position} "
                f"(pc={want.pc:#010x}): recorded {want.op}, replayed {got.op}"
            )
        if want.load != got.load:
            raise ReplayDivergence(
                f"{prefix}load diverges at instruction {position} "
                f"(pc={want.pc:#010x}): recorded {want.load}, replayed {got.load}"
            )
        if want.store != got.store:
            raise ReplayDivergence(
                f"{prefix}store diverges at instruction {position} "
                f"(pc={want.pc:#010x}): recorded {want.store}, replayed {got.store}"
            )
