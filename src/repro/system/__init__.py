"""OS substrate: kernel, scheduler, syscalls, interrupts, DMA, devices.

BugNet records *only* user code: interrupts and system calls terminate
the current checkpoint interval and a new one opens when control returns
to the application (paper Section 4.4).  The kernel here is a host-level
Python object — its own execution is deliberately invisible to the
recorder, exactly like the real OS routines BugNet refuses to log — but
its *effects* on the application (register returns, DMA writes into user
buffers, context switches) flow through the architected paths the paper
models: interval termination plus cache-block invalidation.
"""

from repro.system.devices import ConsoleDevice, InputDevice
from repro.system.dma import DMAEngine
from repro.system.fault import CrashReport, collect_crash_report
from repro.system.kernel import Kernel, Thread, ThreadState

__all__ = [
    "ConsoleDevice",
    "InputDevice",
    "DMAEngine",
    "CrashReport",
    "collect_crash_report",
    "Kernel",
    "Thread",
    "ThreadState",
]
