"""Simple devices: a console sink and an input source.

The input device is the stand-in for files, sockets and pipes: the bug
studies feed "long filenames" and other attacker-controlled payloads
through it, and the kernel delivers reads via DMA so the data lands in
user memory the way Section 4.5 describes (invalidating cached blocks so
first-load bits reset).
"""

from __future__ import annotations

from collections import deque


class ConsoleDevice:
    """Collects program output (PRINT_INT / PRINT_CHAR / WRITE_OUT)."""

    def __init__(self) -> None:
        self.values: list[int] = []
        self.text_parts: list[str] = []

    def write_int(self, value: int) -> None:
        """Record an integer print."""
        self.values.append(value)
        self.text_parts.append(str(value))

    def write_char(self, code: int) -> None:
        """Record a character print."""
        self.values.append(code)
        self.text_parts.append(chr(code & 0x10FFFF))

    @property
    def text(self) -> str:
        """Everything printed, concatenated."""
        return "".join(self.text_parts)


class InputDevice:
    """A FIFO of input words the program consumes via READ_INPUT.

    Strings are exposed one character per word (BN32's wide-character
    convention), NUL-terminated, matching ``.asciiz``.
    """

    def __init__(self, words: list[int] | None = None) -> None:
        self._queue: deque[int] = deque(words or [])

    def push_words(self, words: list[int]) -> None:
        """Queue raw words."""
        self._queue.extend(w & 0xFFFFFFFF for w in words)

    def push_string(self, text: str, terminate: bool = True) -> None:
        """Queue a wide string (one char per word) with a NUL terminator."""
        self._queue.extend(ord(ch) for ch in text)
        if terminate:
            self._queue.append(0)

    def read(self, max_words: int) -> list[int]:
        """Dequeue up to *max_words* words."""
        count = min(max_words, len(self._queue))
        return [self._queue.popleft() for _ in range(count)]

    @property
    def available(self) -> int:
        """Words waiting to be read."""
        return len(self._queue)
