"""The DMA engine (paper Section 4.5).

DMA writes go straight to main memory and *invalidate* every cached
copy of the touched blocks through the directory — which clears their
first-load bits, guaranteeing that DMA-delivered data is logged when
(and only when) the application actually loads it.  That asymmetry is
one of BugNet's core savings over FDR, which must log the whole DMA
payload whether or not it is ever consumed.

Transfers can complete after a configurable delay (in globally executed
instructions), modeling "the control returns to the application code but
the DMA transfer proceeds in parallel".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.memory import Memory


@dataclass
class PendingTransfer:
    """An in-flight DMA transfer."""

    dest: int
    words: list[int]
    complete_at: int
    on_complete: object = None  # optional callable() fired at completion


@dataclass
class DMAEngine:
    """Writes device data into user memory with coherence invalidations."""

    memory: Memory
    directory: object = None            # Directory or None (single core, uncached path)
    hierarchies: list = field(default_factory=list)
    block_shift: int = 6
    transfers_completed: int = 0
    words_transferred: int = 0
    _pending: list[PendingTransfer] = field(default_factory=list)

    def start(self, dest: int, words: list[int], now: int, delay: int = 0,
              on_complete=None) -> None:
        """Begin a transfer of *words* to *dest*, completing at now+delay."""
        self._pending.append(PendingTransfer(
            dest=dest,
            words=list(words),
            complete_at=now + max(delay, 0),
            on_complete=on_complete,
        ))
        if delay <= 0:
            self.advance(now)

    def advance(self, now: int) -> int:
        """Complete every transfer due at or before *now*; returns count."""
        completed = 0
        still_pending = []
        for transfer in self._pending:
            if transfer.complete_at <= now:
                self._commit(transfer)
                completed += 1
            else:
                still_pending.append(transfer)
        self._pending = still_pending
        return completed

    def flush(self) -> None:
        """Force-complete everything in flight (process teardown)."""
        for transfer in self._pending:
            self._commit(transfer)
        self._pending = []

    @property
    def pending_count(self) -> int:
        """Transfers still in flight."""
        return len(self._pending)

    @property
    def next_completion(self) -> int | None:
        """Global time of the earliest pending completion."""
        if not self._pending:
            return None
        return min(t.complete_at for t in self._pending)

    def _commit(self, transfer: PendingTransfer) -> None:
        blocks = set()
        addr = transfer.dest
        for word in transfer.words:
            self.memory.poke(addr, word)
            blocks.add(addr >> self.block_shift)
            addr += 4
        if self.directory is not None:
            self.directory.dma_write(blocks)
        else:
            for hierarchy in self.hierarchies:
                for block in blocks:
                    hierarchy.invalidate_block(block)
        self.transfers_completed += 1
        self.words_transferred += len(transfer.words)
        if transfer.on_complete is not None:
            transfer.on_complete()
