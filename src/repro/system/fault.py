"""Crash detection and log collection (paper Section 4.8).

When the OS sees a thread fault, it records the faulting PC and the
instruction count into the current FLL, then gathers every FLL and MRL
belonging to the process from memory and "ships them to the developer".
:class:`CrashReport` is that shipment: everything the replayer needs —
and pointedly *not* a core dump, which is BugNet's headline saving over
FDR (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.program import Program
from repro.common.config import BugNetConfig
from repro.common.errors import Fault
from repro.tracing.backing import LogStore, StoredCheckpoint


@dataclass
class CrashReport:
    """What gets sent back to the developer after a crash."""

    pid: int
    faulting_tid: int
    fault_kind: str
    fault_message: str
    fault_pc: int
    fault_source_line: int
    program_name: str
    checkpoints: dict[int, list[StoredCheckpoint]] = field(default_factory=dict)
    mapped_pages: frozenset[int] = frozenset()
    total_instructions: dict[int, int] = field(default_factory=dict)

    @property
    def thread_ids(self) -> list[int]:
        """Threads with logs in the report."""
        return sorted(self.checkpoints)

    def flls_for(self, tid: int):
        """The FLL sequence for one thread, oldest first."""
        return [cp.fll for cp in self.checkpoints.get(tid, [])]

    def replay_chain(self, tid: int):
        """The longest replayable FLL suffix for *tid*.

        Replay must begin at a major checkpoint (one that started with
        every first-load bit cleared — see ``bit_clear_period``), so the
        chain runs from the *earliest* resident major checkpoint to the
        end; under the paper's basic scheme every checkpoint is major
        and this is the whole resident sequence.  Returns ``[]`` when no
        major checkpoint survived eviction: such a report has no chain
        that can be grounded.
        """
        flls = self.flls_for(tid)
        for index, fll in enumerate(flls):
            if fll.header.major:
                return flls[index:]
        return []

    def grounded_checkpoints(self, tid: int) -> list[StoredCheckpoint]:
        """The (FLL, MRL) checkpoint suffix matching :meth:`replay_chain`.

        Multi-thread validation needs the MRLs alongside the grounded
        FLL chain; returns ``[]`` when no major checkpoint survived
        eviction (the thread has no chain replay can ground).
        """
        checkpoints = self.checkpoints.get(tid, [])
        for index, checkpoint in enumerate(checkpoints):
            if checkpoint.fll.header.major:
                return checkpoints[index:]
        return []

    def replay_window(self, tid: int) -> int:
        """Instructions replayable for *tid* from the shipped logs."""
        return sum(cp.fll.interval_length for cp in self.checkpoints.get(tid, []))

    def fll_bytes(self, config: BugNetConfig, tid: int | None = None) -> int:
        """FLL payload size in the report."""
        pools = (
            [self.checkpoints.get(tid, [])] if tid is not None
            else list(self.checkpoints.values())
        )
        return sum(cp.fll.byte_size(config) for pool in pools for cp in pool)

    def mrl_bytes(self, config: BugNetConfig, tid: int | None = None) -> int:
        """MRL payload size in the report."""
        pools = (
            [self.checkpoints.get(tid, [])] if tid is not None
            else list(self.checkpoints.values())
        )
        return sum(cp.mrl.byte_size(config) for pool in pools for cp in pool)

    def total_bytes(self, config: BugNetConfig) -> int:
        """Everything shipped to the developer, in bytes."""
        return self.fll_bytes(config) + self.mrl_bytes(config)

    def summary(self) -> str:
        """Human-readable crash banner."""
        lines = [
            f"*** {self.program_name}: {self.fault_kind} fault in thread "
            f"{self.faulting_tid} at pc={self.fault_pc:#010x} "
            f"(source line {self.fault_source_line})",
            f"    {self.fault_message}",
        ]
        for tid in self.thread_ids:
            lines.append(
                f"    thread {tid}: {len(self.checkpoints[tid])} checkpoint(s), "
                f"replay window {self.replay_window(tid)} instructions"
            )
        return "\n".join(lines)


def collect_crash_report(
    pid: int,
    program: Program,
    store: LogStore,
    faulting_tid: int,
    fault: Fault,
    mapped_pages: frozenset[int],
    total_instructions: dict[int, int] | None = None,
) -> CrashReport:
    """Assemble the developer shipment from the in-memory logs."""
    fault_pc = fault.pc if fault.pc is not None else 0
    return CrashReport(
        pid=pid,
        faulting_tid=faulting_tid,
        fault_kind=fault.kind,
        fault_message=str(fault),
        fault_pc=fault_pc,
        fault_source_line=program.source_line_of(fault_pc),
        program_name=program.name,
        checkpoints={tid: store.checkpoints(tid) for tid in store.threads()},
        mapped_pages=mapped_pages,
        total_instructions=dict(total_instructions or {}),
    )
