"""The kernel: threads, scheduling, syscalls, locks.

Every syscall and every preemption terminates the running thread's
checkpoint interval (the paper's basic scheme, Section 4.4) — the
machine loop performs the termination after the trapping instruction
commits, and a fresh interval opens when the thread next runs user code.
The kernel's own work happens at host level, mirroring the paper's
refusal to record interrupt handlers and OS routines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from repro.arch.cpu import CPU
from repro.arch.isa import HEAP_BASE, Syscall
from repro.arch.memory import PAGE_SIZE, Memory
from repro.common.errors import Fault


class ThreadState(Enum):
    """Scheduler states."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    EXITED = "exited"
    CRASHED = "crashed"


@dataclass
class Thread:
    """A thread control block: one CPU context plus scheduler state."""

    tid: int
    cpu: CPU
    core: int = 0
    state: ThreadState = ThreadState.READY
    exit_code: int = 0
    fault: Fault | None = None
    fault_ic: int = 0
    blocked_on: int | None = None
    wake_value: tuple[int, int] | None = None  # (register number, value) on wake


@dataclass
class _Mutex:
    owner: int | None = None
    waiters: deque = field(default_factory=deque)
    # Release position of the most recent unlock: (tid, committed count).
    last_release: tuple[int, int] | None = None


class Kernel:
    """Syscall service and scheduling policy for one simulated machine."""

    def __init__(
        self,
        memory: Memory,
        console,
        input_device,
        dma,
        dma_delay: int = 0,
        pid: int = 1,
    ) -> None:
        self.memory = memory
        self.console = console
        self.input = input_device
        self.dma = dma
        self.dma_delay = dma_delay
        self.pid = pid
        self.threads: list[Thread] = []
        self._mutexes: dict[int, _Mutex] = {}
        self._brk = HEAP_BASE
        self._heap_mapped_to = HEAP_BASE
        self.syscalls_serviced = 0
        self.interval_break_requested = False
        self.now = lambda: 0  # machine installs its global clock
        # Synchronization happens-before edges, recorded by the OS (the
        # paper's driver-level metadata): (releaser_tid, instructions the
        # releaser had committed including the unlock, acquirer_tid,
        # 0-based index of the acquirer's first post-lock instruction).
        # Race inference uses these; lock traffic is kernel-level and so
        # never appears in the MRLs.
        self.sync_edges: list[tuple[int, int, int, int]] = []

    # -- thread management ------------------------------------------------

    def add_thread(self, thread: Thread) -> None:
        """Register a thread created by the machine."""
        self.threads.append(thread)
        thread.cpu.syscall_handler = self._make_handler(thread)

    def thread(self, tid: int) -> Thread:
        """Lookup by tid."""
        return self.threads[tid]

    def runnable(self) -> list[Thread]:
        """Threads that can be scheduled."""
        return [t for t in self.threads
                if t.state in (ThreadState.READY, ThreadState.RUNNING)]

    def live(self) -> list[Thread]:
        """Threads not yet exited/crashed (blocked ones count)."""
        return [t for t in self.threads
                if t.state not in (ThreadState.EXITED, ThreadState.CRASHED)]

    def init_heap(self, initial_bytes: int) -> None:
        """Record the initially mapped heap extent (loader maps it)."""
        self._heap_mapped_to = HEAP_BASE + initial_bytes
        self._brk = HEAP_BASE

    # -- syscall dispatch ---------------------------------------------------

    def _make_handler(self, thread: Thread):
        def handler(cpu: CPU) -> None:
            self._syscall(thread, cpu)
        return handler

    def _syscall(self, thread: Thread, cpu: CPU) -> None:
        self.syscalls_serviced += 1
        self.interval_break_requested = True
        number = cpu.regs["v0"]
        a0 = cpu.regs["a0"]
        a1 = cpu.regs["a1"]
        if number == Syscall.EXIT:
            thread.state = ThreadState.EXITED
            thread.exit_code = a0
            cpu.halted = True
            cpu.exit_code = a0
        elif number == Syscall.PRINT_INT:
            self.console.write_int(a0)
        elif number == Syscall.PRINT_CHAR:
            self.console.write_char(a0)
        elif number == Syscall.READ_INPUT:
            self._read_input(thread, cpu, buffer=a0, max_words=a1)
        elif number == Syscall.YIELD:
            thread.state = ThreadState.READY  # machine reschedules
        elif number == Syscall.SBRK:
            cpu.regs["v0"] = self._sbrk(a0)
        elif number == Syscall.WRITE_OUT:
            addr = a0
            for _ in range(a1):
                self.console.write_int(self.memory.peek(addr))
                addr += 4
        elif number == Syscall.LOCK:
            self._lock(thread, cpu, a0)
        elif number == Syscall.UNLOCK:
            self._unlock(thread, a0)
        elif number == Syscall.CURRENT_TID:
            cpu.regs["v0"] = thread.tid
        else:
            raise Fault(f"unknown syscall {number}", pc=cpu.pc)

    # -- services ----------------------------------------------------------

    def _read_input(self, thread: Thread, cpu: CPU, buffer: int,
                    max_words: int) -> None:
        """Blocking read: data lands in the buffer via DMA.

        The thread blocks until the transfer completes; the word count
        is delivered in v0 at wake-up, so the value is architecturally
        visible only in the post-syscall interval (whose FLL header
        captures it).
        """
        words = self.input.read(max_words)
        if self.dma_delay <= 0 or not words:
            self._deliver(buffer, words)
            cpu.regs["v0"] = len(words)
            return
        thread.state = ThreadState.BLOCKED
        thread.blocked_on = buffer
        count = len(words)

        def complete() -> None:
            thread.state = ThreadState.READY
            thread.blocked_on = None
            thread.cpu.regs["v0"] = count

        self.dma.start(buffer, words, now=self.now(), delay=self.dma_delay,
                       on_complete=complete)

    def _deliver(self, buffer: int, words: list[int]) -> None:
        """Synchronous delivery path (dma_delay == 0)."""
        self.dma.start(buffer, words, now=self.now(), delay=0)

    def _sbrk(self, increment: int) -> int:
        """Grow the heap; returns the previous break."""
        old = self._brk
        self._brk += max(increment, 0)
        while self._brk > self._heap_mapped_to:
            self.memory.map_range(self._heap_mapped_to, PAGE_SIZE)
            self._heap_mapped_to += PAGE_SIZE
        return old

    def _record_acquire(self, mutex: _Mutex, acquirer_tid: int,
                        first_post_lock_index: int) -> None:
        """Happens-before edge from the previous release to this acquire."""
        if mutex.last_release is None:
            return
        releaser_tid, released_after = mutex.last_release
        self.sync_edges.append((
            releaser_tid, released_after,
            acquirer_tid, first_post_lock_index,
        ))

    def _lock(self, thread: Thread, cpu: CPU, lock_id: int) -> None:
        mutex = self._mutexes.setdefault(lock_id, _Mutex())
        if mutex.owner is None:
            mutex.owner = thread.tid
            # Mid-syscall, inst_count counts instructions committed before
            # the lock; the first post-lock instruction is inst_count + 1.
            self._record_acquire(mutex, thread.tid, cpu.inst_count + 1)
        elif mutex.owner == thread.tid:
            raise Fault(f"thread {thread.tid} relocked lock {lock_id:#x}",
                        pc=cpu.pc)
        else:
            thread.state = ThreadState.BLOCKED
            thread.blocked_on = lock_id
            mutex.waiters.append(thread.tid)

    def _unlock(self, thread: Thread, lock_id: int) -> None:
        mutex = self._mutexes.get(lock_id)
        if mutex is None or mutex.owner != thread.tid:
            raise Fault(
                f"thread {thread.tid} unlocked lock {lock_id:#x} it does not hold",
                pc=thread.cpu.pc,
            )
        # The unlock syscall commits as instruction inst_count (0-based),
        # so the releaser has completed inst_count + 1 instructions.
        mutex.last_release = (thread.tid, thread.cpu.inst_count + 1)
        if mutex.waiters:
            next_tid = mutex.waiters.popleft()
            mutex.owner = next_tid
            waiter = self.threads[next_tid]
            waiter.state = ThreadState.READY
            waiter.blocked_on = None
            # The waiter's lock syscall has already committed, so its
            # inst_count is the index of its first post-lock instruction.
            self._record_acquire(mutex, next_tid, waiter.cpu.inst_count)
        else:
            mutex.owner = None

    # -- fault path -----------------------------------------------------------

    def handle_fault(self, thread: Thread, fault: Fault) -> None:
        """Mark the thread crashed (the machine finalizes the logs)."""
        thread.state = ThreadState.CRASHED
        thread.fault = fault
        thread.fault_ic = thread.cpu.inst_count
        thread.cpu.halted = True
