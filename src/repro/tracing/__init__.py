"""BugNet's core contribution: continuous first-load recording.

* :mod:`repro.tracing.dictionary` — the 64-entry frequent-value
  dictionary compressor (Section 4.3.1),
* :mod:`repro.tracing.fll` — the First-Load Log bit format (Section 4.3),
* :mod:`repro.tracing.mrl` — the Memory Race Log format (Section 4.6.3),
* :mod:`repro.tracing.netzer` — transitive reduction of race edges,
* :mod:`repro.tracing.recorder` — checkpoint-interval lifecycle and the
  per-thread recorder,
* :mod:`repro.tracing.backing` — Checkpoint Buffer / Memory Race Buffer
  FIFOs, memory backing, replay-window accounting, bus model,
* :mod:`repro.tracing.hardware` — the on-chip area model (Table 3).
"""

from repro.tracing.backing import BusModel, LogStore
from repro.tracing.dictionary import DictionaryCompressor
from repro.tracing.fll import FLL, FLLHeader, FLLReader, FLLWriter
from repro.tracing.hardware import bugnet_hardware, fdr_hardware
from repro.tracing.mrl import MRL, MRLEntry, MRLHeader, MRLReader, MRLWriter
from repro.tracing.netzer import PairwiseReducer, VectorClockReducer
from repro.tracing.recorder import BugNetRecorder, TracedMemoryInterface

__all__ = [
    "DictionaryCompressor",
    "FLL",
    "FLLHeader",
    "FLLReader",
    "FLLWriter",
    "MRL",
    "MRLEntry",
    "MRLHeader",
    "MRLReader",
    "MRLWriter",
    "PairwiseReducer",
    "VectorClockReducer",
    "BugNetRecorder",
    "TracedMemoryInterface",
    "LogStore",
    "BusModel",
    "bugnet_hardware",
    "fdr_hardware",
]
