"""Memory backing for the logs (paper Sections 4.1 and 4.7).

The Checkpoint Buffer (CB) and Memory Race Buffer (MRB) are small
on-chip FIFOs; finalized log bytes drain lazily to a bounded region of
main memory whenever the bus is idle.  When the region fills, the logs
of the oldest checkpoint are discarded — which is what bounds the
*replay window*.

:class:`LogStore` models the main-memory region (and is also the
developer-facing container the replayer reads).  :class:`BusModel` is
the bandwidth accounting behind the paper's <0.01 % overhead claim.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.common.config import BugNetConfig
from repro.tracing.fll import FLL
from repro.tracing.mrl import MRL


@dataclass
class StoredCheckpoint:
    """One (FLL, MRL) pair resident in the log region."""

    tid: int
    fll: FLL
    mrl: MRL
    byte_size: int
    reason: str


class LogStore:
    """Bounded main-memory log region with oldest-checkpoint eviction."""

    def __init__(self, config: BugNetConfig) -> None:
        self.config = config
        self._per_thread: dict[int, deque[StoredCheckpoint]] = {}
        self.total_bytes = 0
        self.evicted_checkpoints = 0
        self.evicted_bytes = 0

    def add(self, tid: int, fll: FLL, mrl: MRL, reason: str = "length") -> None:
        """Store a finalized checkpoint, evicting the oldest if over budget."""
        size = fll.byte_size(self.config) + mrl.byte_size(self.config)
        queue = self._per_thread.setdefault(tid, deque())
        queue.append(StoredCheckpoint(tid, fll, mrl, size, reason))
        self.total_bytes += size
        budget = self.config.log_memory_budget
        if budget is not None:
            while self.total_bytes > budget and self._evict_oldest(protect=(tid, fll)):
                pass

    def _evict_oldest(self, protect: tuple[int, FLL]) -> bool:
        """Drop the globally oldest checkpoint (never the one just added).

        Ties on the timestamp break on the thread id, so eviction order
        — and therefore the surviving replay window — is deterministic
        regardless of dict iteration order.
        """
        oldest_tid = None
        oldest_key = None
        for tid, queue in self._per_thread.items():
            if not queue:
                continue
            head = queue[0]
            if head.fll is protect[1]:
                continue
            key = (head.fll.header.timestamp, tid)
            if oldest_key is None or key < oldest_key:
                oldest_key = key
                oldest_tid = tid
        if oldest_tid is None:
            return False
        victim = self._per_thread[oldest_tid].popleft()
        self.total_bytes -= victim.byte_size
        self.evicted_checkpoints += 1
        self.evicted_bytes += victim.byte_size
        return True

    # -- queries ----------------------------------------------------------

    def checkpoints(self, tid: int) -> list[StoredCheckpoint]:
        """Resident checkpoints for a thread, oldest first."""
        return list(self._per_thread.get(tid, ()))

    def threads(self) -> list[int]:
        """Thread ids with resident logs."""
        return sorted(self._per_thread)

    def replay_window(self, tid: int) -> int:
        """Instructions replayable for *tid* from the resident logs."""
        return sum(cp.fll.interval_length for cp in self._per_thread.get(tid, ()))

    def fll_bytes(self, tid: int | None = None) -> int:
        """Bytes of FLL data resident (one thread or all)."""
        return self._sum(tid, lambda cp: cp.fll.byte_size(self.config))

    def mrl_bytes(self, tid: int | None = None) -> int:
        """Bytes of MRL data resident (one thread or all)."""
        return self._sum(tid, lambda cp: cp.mrl.byte_size(self.config))

    def _sum(self, tid, measure) -> int:
        if tid is not None:
            return sum(measure(cp) for cp in self._per_thread.get(tid, ()))
        return sum(
            measure(cp) for queue in self._per_thread.values() for cp in queue
        )


@dataclass
class BusModel:
    """Memory-bus occupancy accounting for the overhead claim (§6.3).

    The paper argues BugNet's run-time overhead is negligible because
    compressed log entries are written back only on idle bus cycles; the
    CB need only absorb bursts.  We model a single-issue core (one cycle
    per instruction), a bus moving ``bytes_per_cycle``, demand traffic
    from cache fills/writebacks, and log traffic that may use idle
    cycles; the processor stalls only if the CB overflows.
    """

    block_size: int = 64
    bytes_per_cycle: int = 8
    cb_bytes: int = 16 * 1024
    instructions: int = 0
    fills: int = 0
    writebacks: int = 0
    log_bytes: int = 0
    peak_cb_occupancy: int = 0
    _cb_occupancy: float = field(default=0.0, repr=False)
    stall_cycles: float = 0.0

    def account_window(self, instructions: int, fills: int, writebacks: int,
                       log_bytes: int) -> None:
        """Account one execution window (e.g. a checkpoint interval)."""
        self.instructions += instructions
        self.fills += fills
        self.writebacks += writebacks
        self.log_bytes += log_bytes
        cycles = max(instructions, 1)
        demand = (fills + writebacks) * self.block_size / self.bytes_per_cycle
        idle_capacity = max(0.0, cycles - demand) * self.bytes_per_cycle
        backlog = self._cb_occupancy + log_bytes
        drained = min(backlog, idle_capacity)
        backlog -= drained
        if backlog > self.cb_bytes:
            # CB overflow: the core stalls while the bus forcibly drains.
            overflow = backlog - self.cb_bytes
            self.stall_cycles += overflow / self.bytes_per_cycle
            backlog = float(self.cb_bytes)
        self._cb_occupancy = backlog
        self.peak_cb_occupancy = max(self.peak_cb_occupancy, int(backlog))

    @property
    def total_cycles(self) -> float:
        """Base cycles plus logging-induced stalls."""
        return self.instructions + self.stall_cycles

    @property
    def overhead(self) -> float:
        """Fractional slowdown attributable to logging."""
        if not self.instructions:
            return 0.0
        return self.stall_cycles / self.instructions
