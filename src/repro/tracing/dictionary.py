"""The dictionary-based load-value compressor (paper Section 4.3.1).

A small fully-associative table captures frequently occurring load
values.  When a value about to be logged is present, a short index (6
bits for the 64-entry table) is written instead of the 32-bit value.

The table is *deterministically* simulated by the replayer, so the exact
update rules below are the contract between recording and replay:

* the table is emptied at the start of every checkpoint interval;
* **every** executed load updates the table (logged or not);
* on a hit, the entry's 3-bit saturating counter is incremented; if the
  updated counter is >= the counter of the entry ranked immediately
  above, the two entries swap positions (frequent values percolate up);
* on a miss, the value replaces the entry with the smallest counter,
  breaking ties toward the lowest position (largest index); the fresh
  entry starts with counter 1 (empty slots count 0, so they fill first).

Encoding/decoding reads the table state *before* the update for that
load, on both sides.
"""

from __future__ import annotations

import heapq

from repro.common.config import DictionaryConfig


class DictionaryCompressor:
    """Frequent-value table shared (by construction) by recorder and replayer."""

    __slots__ = ("config", "size", "counter_max", "_values", "_counters",
                 "_pos_of", "_heap", "hits", "misses")

    def __init__(self, config: DictionaryConfig | None = None) -> None:
        self.config = config or DictionaryConfig()
        self.size = self.config.entries
        self.counter_max = self.config.counter_max
        self.hits = 0
        self.misses = 0
        self._values: list[int | None] = []
        self._counters: list[int] = []
        self._pos_of: dict[int, int] = {}
        # Min-heap of (counter, -position) candidates for replacement;
        # entries are validated lazily against the live arrays.
        self._heap: list[tuple[int, int]] = []
        self.reset()

    def reset(self) -> None:
        """Empty the table (start of a checkpoint interval)."""
        self._values = [None] * self.size
        self._counters = [0] * self.size
        self._pos_of = {}
        self._heap = [(0, -pos) for pos in range(self.size)]
        heapq.heapify(self._heap)

    # -- queries ----------------------------------------------------------

    def lookup(self, value: int) -> int | None:
        """Current index of *value*, or None — without mutating the table."""
        return self._pos_of.get(value)

    def value_at(self, index: int) -> int:
        """Value currently stored at *index* (decoder side)."""
        value = self._values[index]
        if value is None:
            raise LookupError(f"dictionary entry {index} is empty")
        return value

    @property
    def hit_rate(self) -> float:
        """Fraction of updates that hit (Figure 5's metric)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- the per-load update ------------------------------------------------

    def update(self, value: int) -> None:
        """Account one executed load of *value* (recorder and replayer)."""
        pos = self._pos_of.get(value)
        if pos is not None:
            self.hits += 1
            counters = self._counters
            if counters[pos] < self.counter_max:
                counters[pos] += 1
                heapq.heappush(self._heap, (counters[pos], -pos))
            if pos > 0 and counters[pos] >= counters[pos - 1]:
                self._swap(pos, pos - 1)
        else:
            self.misses += 1
            victim = self._pop_victim()
            old_value = self._values[victim]
            if old_value is not None:
                del self._pos_of[old_value]
            self._values[victim] = value
            self._counters[victim] = 1
            self._pos_of[value] = victim
            heapq.heappush(self._heap, (1, -victim))

    def _swap(self, a: int, b: int) -> None:
        values, counters = self._values, self._counters
        values[a], values[b] = values[b], values[a]
        counters[a], counters[b] = counters[b], counters[a]
        if values[a] is not None:
            self._pos_of[values[a]] = a
        if values[b] is not None:
            self._pos_of[values[b]] = b
        heapq.heappush(self._heap, (counters[a], -a))
        heapq.heappush(self._heap, (counters[b], -b))

    def _pop_victim(self) -> int:
        """Position with the smallest counter (ties: largest index)."""
        heap = self._heap
        counters = self._counters
        while heap:
            counter, neg_pos = heap[0]
            pos = -neg_pos
            if counters[pos] == counter:
                return pos
            heapq.heappop(heap)  # stale
        # The heap is refreshed on every counter change, so it can only
        # drain if many stale entries accumulate; rebuild from live state.
        self._heap = [(c, -p) for p, c in enumerate(counters)]
        heapq.heapify(self._heap)
        return self._pop_victim()

    # -- introspection for tests ------------------------------------------

    def table(self) -> list[tuple[int | None, int]]:
        """(value, counter) pairs in rank order (top first)."""
        return list(zip(self._values, self._counters))
