"""The dictionary-based load-value compressor (paper Section 4.3.1).

A small fully-associative table captures frequently occurring load
values.  When a value about to be logged is present, a short index (6
bits for the 64-entry table) is written instead of the 32-bit value.

The table is *deterministically* simulated by the replayer, so the exact
update rules below are the contract between recording and replay:

* the table is emptied at the start of every checkpoint interval;
* **every** executed load updates the table (logged or not);
* on a hit, the entry's 3-bit saturating counter is incremented; if the
  updated counter is >= the counter of the entry ranked immediately
  above, the two entries swap positions (frequent values percolate up);
* on a miss, the value replaces the entry with the smallest counter,
  breaking ties toward the lowest position (largest index); the fresh
  entry starts with counter 1 (empty slots count 0, so they fill first).

Encoding/decoding reads the table state *before* the update for that
load, on both sides.

Victim selection is O(1): one bitmask per counter value tracks which
positions hold that counter, so the smallest-counter / largest-index
rule is a scan over the (2^counter_bits) masks plus a ``bit_length``.
Auxiliary state is O(counter_max) machine words regardless of how many
loads an interval sees — the hardware analogue is a small priority
matrix next to the table, not a growing queue.
"""

from __future__ import annotations

from repro.common.config import DictionaryConfig


class DictionaryCompressor:
    """Frequent-value table shared (by construction) by recorder and replayer."""

    __slots__ = ("config", "size", "counter_max", "_values", "_counters",
                 "_pos_of", "_masks", "hits", "misses")

    def __init__(self, config: DictionaryConfig | None = None) -> None:
        self.config = config or DictionaryConfig()
        self.size = self.config.entries
        self.counter_max = self.config.counter_max
        self.hits = 0
        self.misses = 0
        self._values: list[int | None] = []
        self._counters: list[int] = []
        self._pos_of: dict[int, int] = {}
        # _masks[c] has bit p set iff position p currently holds counter
        # value c; victim = largest set bit of the lowest non-empty mask.
        self._masks: list[int] = []
        self.reset()

    def reset(self) -> None:
        """Empty the table (start of a checkpoint interval)."""
        self._values = [None] * self.size
        self._counters = [0] * self.size
        self._pos_of = {}
        self._masks = [0] * (self.counter_max + 1)
        self._masks[0] = (1 << self.size) - 1

    # -- queries ----------------------------------------------------------

    def lookup(self, value: int) -> int | None:
        """Current index of *value*, or None — without mutating the table."""
        return self._pos_of.get(value)

    def value_at(self, index: int) -> int:
        """Value currently stored at *index* (decoder side)."""
        value = self._values[index]
        if value is None:
            raise LookupError(f"dictionary entry {index} is empty")
        return value

    @property
    def hit_rate(self) -> float:
        """Fraction of updates that hit (Figure 5's metric)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- the per-load update ------------------------------------------------

    def update(self, value: int) -> None:
        """Account one executed load of *value* (recorder and replayer)."""
        self.lookup_update(value)

    def lookup_update(self, value: int) -> int | None:
        """One-call encode step: pre-update index of *value*, then update.

        Returns what :meth:`lookup` would have before the update — the
        index the FLL encodes — saving a second dict probe on the
        recording fast path.
        """
        pos = self._pos_of.get(value)
        masks = self._masks
        counters = self._counters
        if pos is not None:
            self.hits += 1
            counter = counters[pos]
            if counter < self.counter_max:
                bit = 1 << pos
                masks[counter] ^= bit
                counter += 1
                masks[counter] |= bit
                counters[pos] = counter
            if pos > 0 and counter >= counters[pos - 1]:
                self._swap(pos, pos - 1)
            return pos
        self.misses += 1
        for counter, mask in enumerate(masks):
            if mask:
                victim = mask.bit_length() - 1
                break
        else:  # pragma: no cover - masks always cover all positions
            raise AssertionError("dictionary masks lost a position")
        old_value = self._values[victim]
        if old_value is not None:
            del self._pos_of[old_value]
        bit = 1 << victim
        masks[counters[victim]] ^= bit
        masks[1] |= bit
        self._values[victim] = value
        counters[victim] = 1
        self._pos_of[value] = victim
        return None

    def _swap(self, a: int, b: int) -> None:
        values, counters, masks = self._values, self._counters, self._masks
        counter_a, counter_b = counters[a], counters[b]
        if counter_a != counter_b:
            bit_a, bit_b = 1 << a, 1 << b
            masks[counter_a] ^= bit_a | bit_b
            masks[counter_b] ^= bit_a | bit_b
        values[a], values[b] = values[b], values[a]
        counters[a], counters[b] = counter_b, counter_a
        if values[a] is not None:
            self._pos_of[values[a]] = a
        if values[b] is not None:
            self._pos_of[values[b]] = b

    # -- introspection for tests ------------------------------------------

    def table(self) -> list[tuple[int | None, int]]:
        """(value, counter) pairs in rank order (top first)."""
        return list(zip(self._values, self._counters))
